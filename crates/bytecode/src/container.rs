//! Checksummed on-disk containers for the lifelong store.
//!
//! Everything the framework persists across runs (serialized profiles,
//! reoptimized bytecode) is wrapped in one framing so a crash, a torn
//! write, or bit rot is *detected on read* and classified, never silently
//! consumed. The layout:
//!
//! ```text
//! "LPCF"                      container magic (4 bytes)
//! u32 LE                      container format version
//! [u8; 4]                     payload kind tag ("PROF", "ROPT", ...)
//! u32 LE                      section count
//! per section:
//!   varint                    name length, then name bytes (UTF-8)
//!   varint                    payload length
//!   u32 LE                    CRC32 of the payload
//!   payload bytes
//! "LPCE"                      trailer magic
//! u32 LE                      CRC32 of every byte before the trailer
//! ```
//!
//! The trailing whole-file CRC means truncation at *any* byte offset is
//! caught: either a section read runs off the end ([`ContainerError::Truncated`])
//! or the trailer is missing/mismatched. Like [`crate::read_module`], the
//! reader is an ingestion boundary: arbitrary hostile bytes must produce
//! an `Err`, never a panic or an oversized allocation.

use lpat_core::hash::crc32;

use crate::format::{write_varint, Reader};

/// Magic bytes opening every container file.
pub const CONTAINER_MAGIC: [u8; 4] = *b"LPCF";
/// Magic bytes of the trailer.
pub const TRAILER_MAGIC: [u8; 4] = *b"LPCE";
/// Container format version. Version 2 added the guard exec/misspec
/// tables to the profile payload (speculative PGO); version-1 files are
/// quarantined and regenerated rather than misread under the new schema.
pub const CONTAINER_VERSION: u32 = 2;

/// Payload kind: a serialized profile.
pub const KIND_PROFILE: [u8; 4] = *b"PROF";
/// Payload kind: a reoptimized bytecode module.
pub const KIND_REOPT: [u8; 4] = *b"ROPT";

/// One named, individually checksummed section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"meta"`, `"counts"`, `"module"`).
    pub name: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// A decoded container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Container {
    /// Payload kind tag.
    pub kind: [u8; 4],
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Container {
    /// Build an empty container of the given kind.
    pub fn new(kind: [u8; 4]) -> Container {
        Container {
            kind,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push(Section {
            name: name.to_string(),
            payload,
        });
    }

    /// Find a section by name.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.payload.as_slice())
    }
}

/// Why a container failed to decode. The classes mirror the store's
/// recovery matrix: each one maps to "quarantine and regenerate".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// The file does not begin with [`CONTAINER_MAGIC`].
    BadMagic,
    /// The format version is not [`CONTAINER_VERSION`].
    Version(u32),
    /// The file ends before its declared structure does (torn write).
    Truncated,
    /// A CRC mismatch: the named section, or the whole-file trailer.
    Checksum(String),
    /// Structurally malformed (bad counts, non-UTF-8 names, ...).
    Malformed(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not a container (bad magic)"),
            ContainerError::Version(v) => write!(
                f,
                "container version {v} unsupported (expected {CONTAINER_VERSION})"
            ),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::Checksum(what) => write!(f, "checksum mismatch in {what}"),
            ContainerError::Malformed(m) => write!(f, "malformed container: {m}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Serialize a container to bytes.
pub fn write_container(c: &Container) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    out.extend_from_slice(&c.kind);
    out.extend_from_slice(&(c.sections.len() as u32).to_le_bytes());
    for s in &c.sections {
        write_varint(&mut out, s.name.len() as u64);
        out.extend_from_slice(s.name.as_bytes());
        write_varint(&mut out, s.payload.len() as u64);
        out.extend_from_slice(&crc32(&s.payload).to_le_bytes());
        out.extend_from_slice(&s.payload);
    }
    let body_crc = crc32(&out);
    out.extend_from_slice(&TRAILER_MAGIC);
    out.extend_from_slice(&body_crc.to_le_bytes());
    out
}

/// Decode and fully validate a container: magic, version, every section
/// CRC, and the whole-file trailer CRC.
///
/// # Errors
///
/// A classified [`ContainerError`] for any malformed input; never panics.
pub fn read_container(buf: &[u8]) -> Result<Container, ContainerError> {
    // The trailer is validated first: it covers everything, so a torn
    // write is caught even when the damage lands inside section payloads
    // whose length fields still parse.
    if buf.len() < 16 + 8 {
        // Shorter than header + trailer: distinguish "not ours" from torn.
        if buf.len() >= 4 && buf[..4] != CONTAINER_MAGIC {
            return Err(ContainerError::BadMagic);
        }
        return Err(ContainerError::Truncated);
    }
    let (body, trailer) = buf.split_at(buf.len() - 8);
    if body[..4] != CONTAINER_MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
    if version != CONTAINER_VERSION {
        return Err(ContainerError::Version(version));
    }
    if trailer[..4] != TRAILER_MAGIC {
        // No trailer where one must be: the tail of the file is gone.
        return Err(ContainerError::Truncated);
    }
    let stored = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc32(body) != stored {
        return Err(ContainerError::Checksum("file trailer".into()));
    }
    // Structure is now trustworthy; parse it.
    let mut r = Reader::new(body);
    let _ = r.bytes(8).map_err(|_| ContainerError::Truncated)?; // magic + version
    let kind: [u8; 4] = r
        .bytes(4)
        .map_err(|_| ContainerError::Truncated)?
        .try_into()
        .expect("4 bytes");
    let n = r.u32().map_err(|_| ContainerError::Truncated)? as usize;
    let mut sections = Vec::new();
    for _ in 0..n {
        let name = r
            .string()
            .map_err(|e| ContainerError::Malformed(format!("section name: {e}")))?;
        let len = r.vusize().map_err(|_| ContainerError::Truncated)?;
        let stored = r.u32().map_err(|_| ContainerError::Truncated)?;
        let payload = r.bytes(len).map_err(|_| ContainerError::Truncated)?;
        if crc32(payload) != stored {
            return Err(ContainerError::Checksum(format!("section '{name}'")));
        }
        sections.push(Section {
            name,
            payload: payload.to_vec(),
        });
    }
    if !r.at_end() {
        return Err(ContainerError::Malformed(
            "trailing bytes after sections".into(),
        ));
    }
    Ok(Container { kind, sections })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new(KIND_PROFILE);
        c.push("meta", vec![1, 2, 3, 4, 5, 6, 7, 8]);
        c.push("counts", (0u8..200).collect());
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = write_container(&c);
        let d = read_container(&bytes).unwrap();
        assert_eq!(c, d);
        assert_eq!(d.section("meta"), Some(&[1, 2, 3, 4, 5, 6, 7, 8][..]));
        assert_eq!(d.section("absent"), None);
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let bytes = write_container(&sample());
        for cut in 0..bytes.len() {
            let err = read_container(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ContainerError::Truncated | ContainerError::Checksum(_)),
                "cut at {cut}: unexpected class {err:?}"
            );
        }
    }

    #[test]
    fn single_bit_flip_anywhere_is_detected() {
        let bytes = write_container(&sample());
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x10;
            assert!(read_container(&b).is_err(), "flip at {i} went undetected");
        }
    }

    #[test]
    fn classifies_bad_magic_and_version() {
        assert_eq!(
            read_container(b"NOPEnopeNOPEnopeNOPEnopeNOPE"),
            Err(ContainerError::BadMagic)
        );
        let mut bytes = write_container(&sample());
        bytes[4] = 99; // version field
                       // Version is checked before the trailer CRC so an old reader
                       // reports the version, not a checksum failure.
        assert_eq!(read_container(&bytes), Err(ContainerError::Version(99)));
    }

    #[test]
    fn hostile_bytes_never_panic() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [0usize, 1, 7, 16, 64, 300] {
            let mut buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = read_container(&buf);
            // And with a valid magic prefix so parsing goes deeper.
            if buf.len() >= 4 {
                buf[..4].copy_from_slice(&CONTAINER_MAGIC);
                let _ = read_container(&buf);
            }
        }
    }
}
