//! # lpat-bytecode — the binary form
//!
//! Compact binary serialization of the representation (paper §2.5, §4.1.3):
//! the third of the three equivalent forms (in-memory / textual / binary).
//! The flat, three-address layout lets most instructions occupy a single
//! 32-bit word, with larger encodings only when operands do not fit; this
//! is what makes the on-disk representation comparable in size to native
//! CISC code despite carrying types, an explicit CFG, and SSA structure
//! (reproduced in the Figure 5 experiment).
//!
//! # Examples
//!
//! ```
//! let src = "
//! define int @inc(int %x) {
//! bb0:
//!   %y = add int %x, 1
//!   ret int %y
//! }";
//! let m = lpat_asm::parse_module("t", src).unwrap();
//! let bytes = lpat_bytecode::write_module(&m);
//! let m2 = lpat_bytecode::read_module("t", &bytes).unwrap();
//! assert_eq!(m.display(), m2.display());
//! ```

#![warn(missing_docs)]

pub mod container;
pub mod format;
pub mod reader;
pub mod writer;

pub use container::{read_container, write_container, Container, ContainerError};
pub use format::DecodeError;
pub use reader::read_module;
pub use writer::{write_module, write_module_with, WriteOptions};

/// Magic separating the module payload from the attached-summaries section.
const SUMM_MAGIC: &[u8; 4] = b"SUMM";

/// Serialize a module together with its compile-time interprocedural
/// summaries (paper §3.3): the link-time optimizer can consume the
/// summaries instead of recomputing its analyses from scratch.
pub fn write_module_with_summaries(m: &lpat_core::Module) -> Vec<u8> {
    let mut bytes = write_module(m);
    let sums = lpat_analysis::compute_summaries(m);
    bytes.extend_from_slice(SUMM_MAGIC);
    bytes.extend_from_slice(&sums.to_bytes());
    bytes
}

/// Deserialize a module and, when present, its attached summaries.
///
/// Plain [`write_module`] output yields `(module, None)`; readers that do
/// not care about summaries can keep using [`read_module`], which ignores
/// the trailing section.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed module payloads or summary
/// sections.
pub fn read_module_and_summaries(
    name: &str,
    buf: &[u8],
) -> Result<(lpat_core::Module, Option<lpat_analysis::ModuleSummaries>), DecodeError> {
    let (m, consumed) = reader::read_module_counting(name, buf)?;
    let rest = &buf[consumed..];
    if rest.len() >= 4 && &rest[..4] == SUMM_MAGIC {
        let sums = lpat_analysis::ModuleSummaries::from_bytes(&rest[4..]).map_err(DecodeError)?;
        Ok((m, Some(sums)))
    } else {
        Ok((m, None))
    }
}

/// Size statistics for a serialized module, used by the Figure 5 harness.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SizeStats {
    /// Total file size in bytes.
    pub total: usize,
    /// Number of instructions encoded.
    pub insts: usize,
}

/// Serialize and measure in one step.
pub fn measure(m: &lpat_core::Module) -> SizeStats {
    let bytes = write_module(m);
    SizeStats {
        total: bytes.len(),
        insts: m.total_insts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let m = lpat_asm::parse_module("t", src).unwrap_or_else(|e| panic!("parse: {e}"));
        m.verify().unwrap();
        let bytes = write_module(&m);
        let m2 = read_module("t", &bytes).unwrap_or_else(|e| panic!("decode: {e}"));
        m2.verify()
            .unwrap_or_else(|e| panic!("reverify: {e:?}\n{}", m2.display()));
        assert_eq!(m.display(), m2.display());
    }

    #[test]
    fn roundtrips_arithmetic() {
        roundtrip(
            "
define int @f(int %a, int %b) {
bb0:
  %s = add int %a, %b
  %d = sub int %s, 3
  %m = mul int %d, %d
  %q = div int %m, %a
  %r = rem int %q, %b
  %c = setlt int %r, 100
  %x = cast bool %c to int
  ret int %x
}",
        );
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "
define int @f(int %n) {
entry:
  br label %header
header:
  %i = phi int [ 0, %entry ], [ %i2, %body ]
  %c = setlt int %i, %n
  br bool %c, label %body, label %exit
body:
  %i2 = add int %i, 1
  br label %header
exit:
  switch int %i, label %d [ int 0, label %z int 1, label %z ]
z:
  ret int 0
d:
  ret int %i
}",
        );
    }

    #[test]
    fn roundtrips_memory_types_and_globals() {
        roundtrip(
            "
%node = type { int, %node* }
@head = global %node* null
@tab = internal constant [2 x int] [ int 1, int 2 ]
declare int @ext(sbyte*, ...)
define void @push(int %v) {
bb0:
  %n = malloc %node
  %pv = getelementptr %node* %n, long 0, ubyte 0
  store int %v, int* %pv
  %pn = getelementptr %node* %n, long 0, ubyte 1
  %h = load %node** @head
  store %node* %h, %node** %pn
  store %node* %n, %node** @head
  ret void
}
define void @pop() {
bb0:
  %h = load %node** @head
  %pn = getelementptr %node* %h, long 0, ubyte 1
  %nx = load %node** %pn
  store %node* %nx, %node** @head
  free %node* %h
  ret void
}",
        );
    }

    #[test]
    fn roundtrips_eh_and_calls() {
        roundtrip(
            "
declare void @may_throw(int)
define int @f(int %x) {
entry:
  invoke void @may_throw(int %x) to label %ok unwind label %h
ok:
  %r = call int @f(int 0)
  ret int %r
h:
  unwind
}",
        );
    }

    #[test]
    fn roundtrips_floats_alloca_vararg() {
        roundtrip(
            "
define double @f(int %n, ...) {
bb0:
  %buf = alloca double, uint 8
  %v = vaarg double
  store double %v, double* %buf
  %w = load double* %buf
  %s = add double %w, 0x4000000000000000
  ret double %s
}",
        );
    }

    #[test]
    fn compact_instructions_are_four_bytes() {
        // A straight-line run of small binops must encode at ~4 bytes per
        // instruction (the paper's "single 32-bit word" claim).
        let mut src = String::from("define int @f(int %a) {\nbb0:\n  %v0 = add int %a, %a\n");
        for i in 1..100 {
            src.push_str(&format!("  %v{i} = add int %v{}, %a\n", i - 1));
        }
        src.push_str("  ret int %v99\n}\n");
        let m = lpat_asm::parse_module("t", &src).unwrap();
        let empty = {
            let e = lpat_asm::parse_module("t", "define int @f(int %a) {\nbb0:\n  ret int %a\n}")
                .unwrap();
            write_module(&e).len()
        };
        let full = write_module(&m).len();
        // 100 extra adds ≈ 400 extra bytes (plus one byte of block-length
        // varint growth).
        let per_inst = (full - empty) as f64 / 100.0;
        assert!(per_inst <= 4.2, "per-instruction size {per_inst}");
    }

    #[test]
    fn wide_encoding_roundtrips_and_costs_more() {
        let src = "
define int @f(int %a, int %b) {
bb0:
  %s = add int %a, %b
  %t = mul int %s, %s
  %u = sub int %t, %a
  ret int %u
}";
        let m = lpat_asm::parse_module("t", src).unwrap();
        let compact = write_module(&m);
        let wide = write_module_with(
            &m,
            WriteOptions {
                compact_heads: false,
            },
        );
        assert!(
            wide.len() > compact.len(),
            "{} > {}",
            wide.len(),
            compact.len()
        );
        let m2 = read_module("t", &wide).unwrap();
        assert_eq!(m.display(), m2.display(), "wide form decodes identically");
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(read_module("t", b"NOPE").is_err());
        let m = lpat_asm::parse_module("t", "@g = global int 1").unwrap();
        let mut bytes = write_module(&m);
        bytes.truncate(bytes.len() - 1);
        assert!(read_module("t", &bytes).is_err());
    }

    #[test]
    fn forward_layout_reference_types_resolve() {
        // bb1 uses a value defined in bb2; bb2 dominates bb1 despite later
        // layout position.
        roundtrip(
            "
define int @f(int %a) {
bb0:
  br label %bb2
bb1:
  %u = add int %d, 1
  ret int %u
bb2:
  %d = mul int %a, 2
  br label %bb1
}",
        );
    }
}
