//! Shared constants and primitives of the binary encoding.
//!
//! The design follows the paper's description (§4.1.3): the flat,
//! three-address form gets a simple linear layout in which **most
//! instructions require only a single 32-bit word**, falling back on a
//! 64-bit or larger encoding when operands do not fit.
//!
//! Each instruction is one `u32` *head word*:
//!
//! ```text
//!  bits  0..6   opcode        (35 opcodes)
//!  bits  6..8   format        0 = compact (A and B are inline operands)
//!                             1 = extended (operands follow as varints)
//!  bits  8..20  field A       12 bits
//!  bits 20..32  field B       12 bits
//! ```
//!
//! Variable-length operand lists (call arguments, φ incomings, switch
//! cases, `getelementptr` indices) always follow the head word as LEB128
//! varints; this mirrors the original bytecode, where such instructions
//! also exceeded one word.
//!
//! Operand references use a tagged *valnum*: `inst` references are
//! zigzag-encoded **relative** indices (distance from the using
//! instruction), which keeps them small — the property that lets most
//! instructions fit the compact format.

use lpat_core::{BinOp, CmpPred};

/// Magic bytes at the start of every bytecode file.
pub const MAGIC: [u8; 4] = *b"LPAT";
/// Format version.
pub const VERSION: u32 = 1;

/// Binary opcodes. Kept dense and ≤ 64 so they fit 6 bits.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    RetVoid = 0,
    RetVal = 1,
    Br = 2,
    CondBr = 3,
    Switch = 4,
    Invoke = 5,
    Unwind = 6,
    Unreachable = 7,
    Add = 8,
    Sub = 9,
    Mul = 10,
    Div = 11,
    Rem = 12,
    And = 13,
    Or = 14,
    Xor = 15,
    Shl = 16,
    Shr = 17,
    SetEq = 18,
    SetNe = 19,
    SetLt = 20,
    SetGt = 21,
    SetLe = 22,
    SetGe = 23,
    Malloc = 24,
    MallocN = 25,
    Free = 26,
    Alloca = 27,
    AllocaN = 28,
    Load = 29,
    Store = 30,
    Gep = 31,
    Phi = 32,
    Call = 33,
    Cast = 34,
    VaArg = 35,
}

impl Op {
    /// Decode a 6-bit opcode.
    pub fn from_u8(v: u8) -> Option<Op> {
        if v <= 35 {
            // SAFETY-free: exhaustive match keeps this honest.
            Some(match v {
                0 => Op::RetVoid,
                1 => Op::RetVal,
                2 => Op::Br,
                3 => Op::CondBr,
                4 => Op::Switch,
                5 => Op::Invoke,
                6 => Op::Unwind,
                7 => Op::Unreachable,
                8 => Op::Add,
                9 => Op::Sub,
                10 => Op::Mul,
                11 => Op::Div,
                12 => Op::Rem,
                13 => Op::And,
                14 => Op::Or,
                15 => Op::Xor,
                16 => Op::Shl,
                17 => Op::Shr,
                18 => Op::SetEq,
                19 => Op::SetNe,
                20 => Op::SetLt,
                21 => Op::SetGt,
                22 => Op::SetLe,
                23 => Op::SetGe,
                24 => Op::Malloc,
                25 => Op::MallocN,
                26 => Op::Free,
                27 => Op::Alloca,
                28 => Op::AllocaN,
                29 => Op::Load,
                30 => Op::Store,
                31 => Op::Gep,
                32 => Op::Phi,
                33 => Op::Call,
                34 => Op::Cast,
                _ => Op::VaArg,
            })
        } else {
            None
        }
    }

    /// The binary opcode for a binary operator.
    pub fn from_bin(op: BinOp) -> Op {
        match op {
            BinOp::Add => Op::Add,
            BinOp::Sub => Op::Sub,
            BinOp::Mul => Op::Mul,
            BinOp::Div => Op::Div,
            BinOp::Rem => Op::Rem,
            BinOp::And => Op::And,
            BinOp::Or => Op::Or,
            BinOp::Xor => Op::Xor,
            BinOp::Shl => Op::Shl,
            BinOp::Shr => Op::Shr,
        }
    }

    /// The binary operator for an opcode in the binop range.
    pub fn to_bin(self) -> Option<BinOp> {
        Some(match self {
            Op::Add => BinOp::Add,
            Op::Sub => BinOp::Sub,
            Op::Mul => BinOp::Mul,
            Op::Div => BinOp::Div,
            Op::Rem => BinOp::Rem,
            Op::And => BinOp::And,
            Op::Or => BinOp::Or,
            Op::Xor => BinOp::Xor,
            Op::Shl => BinOp::Shl,
            Op::Shr => BinOp::Shr,
            _ => return None,
        })
    }

    /// The binary opcode for a comparison predicate.
    pub fn from_pred(p: CmpPred) -> Op {
        match p {
            CmpPred::Eq => Op::SetEq,
            CmpPred::Ne => Op::SetNe,
            CmpPred::Lt => Op::SetLt,
            CmpPred::Gt => Op::SetGt,
            CmpPred::Le => Op::SetLe,
            CmpPred::Ge => Op::SetGe,
        }
    }

    /// The comparison predicate for an opcode in the setcc range.
    pub fn to_pred(self) -> Option<CmpPred> {
        Some(match self {
            Op::SetEq => CmpPred::Eq,
            Op::SetNe => CmpPred::Ne,
            Op::SetLt => CmpPred::Lt,
            Op::SetGt => CmpPred::Gt,
            Op::SetLe => CmpPred::Le,
            Op::SetGe => CmpPred::Ge,
            _ => return None,
        })
    }
}

/// Maximum value an inline 12-bit field can carry (one value is reserved).
pub const FIELD_MAX: u32 = 0xFFE;

/// Pack a head word.
pub fn pack_head(op: Op, fmt: u8, a: u32, b: u32) -> u32 {
    debug_assert!(a <= 0xFFF && b <= 0xFFF && fmt < 4);
    (op as u32) | ((fmt as u32) << 6) | (a << 8) | (b << 20)
}

/// Unpack a head word into `(op, fmt, a, b)`.
pub fn unpack_head(w: u32) -> (u8, u8, u32, u32) {
    (
        (w & 0x3F) as u8,
        ((w >> 6) & 0x3) as u8,
        (w >> 8) & 0xFFF,
        (w >> 20) & 0xFFF,
    )
}

/// Append a LEB128-encoded `u64`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encode a signed value for varint storage.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A read cursor over the byte stream.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the stream is exhausted.
    pub fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| DecodeError("unexpected end of stream".into()))?;
        self.pos += 1;
        Ok(b)
    }

    /// Bytes left in the stream. The upper bound for any declared element
    /// count — see [`Reader::bounded_count`].
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        // checked_add: `pos + n` must not wrap on a hostile 64-bit length.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError("unexpected end of stream".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a LEB128 `u64`.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError("varint too long".into()));
            }
        }
    }

    /// Read a varint and narrow to `usize`.
    pub fn vusize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.varint()?)
            .map_err(|_| DecodeError("length field exceeds usize".into()))
    }

    /// Read a declared element count and bound it against the remaining
    /// input, given a minimum encoded size per element. A hostile header
    /// can then never drive a preallocation past the input's own length —
    /// `Vec::with_capacity(count)` stays proportional to real data.
    pub fn bounded_count(
        &mut self,
        what: &str,
        min_elem_bytes: usize,
    ) -> Result<usize, DecodeError> {
        let n = self.vusize()?;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(DecodeError(format!(
                "declared {what} count {n} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.vusize()?;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError("invalid UTF-8 in name".into()))
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.at_end());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1i64, 0, 1, -64, 63, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn head_word_roundtrip() {
        let w = pack_head(Op::Add, 0, 0xABC, 0x123);
        let (op, fmt, a, b) = unpack_head(w);
        assert_eq!(Op::from_u8(op), Some(Op::Add));
        assert_eq!(fmt, 0);
        assert_eq!(a, 0xABC);
        assert_eq!(b, 0x123);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for v in 0..=35u8 {
            let op = Op::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert_eq!(Op::from_u8(36), None);
    }
}
