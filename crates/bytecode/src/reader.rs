//! Bytecode reader: reconstructs a [`Module`] from the binary form.
//!
//! Most instruction result types are not stored — they are re-inferred from
//! operand types, exactly as the in-memory builder infers them. Because a
//! definition may appear later in block-layout order than a use (layout
//! order is not dominance order), inference runs as a memoized depth-first
//! resolution over the instruction operand graph.

use lpat_core::{
    fault::FaultAction, BlockId, Const, ConstId, FuncId, GlobalId, Inst, InstId, IntKind, Linkage,
    Module, Type, TypeId, Value,
};

use crate::format::{unpack_head, unzigzag, DecodeError, Op, Reader, MAGIC, VERSION};

/// Deserialize a module from `buf`.
///
/// This is an ingestion boundary: `buf` may be arbitrary hostile bytes
/// (the lifelong-compilation model ships bytecode between machines), so
/// the reader must return `Err` — never panic, never let a declared
/// length field drive allocation past the input's own size — for *any*
/// input.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input. The result is not
/// verified; run [`Module::verify`] for semantic checks.
pub fn read_module(name: &str, buf: &[u8]) -> Result<Module, DecodeError> {
    read_module_counting(name, buf).map(|(m, _)| m)
}

/// Like [`read_module`], additionally returning how many bytes the module
/// payload consumed (trailing sections, e.g. attached summaries, follow).
///
/// # Errors
///
/// Same as [`read_module`].
pub fn read_module_counting(name: &str, buf: &[u8]) -> Result<(Module, usize), DecodeError> {
    // Fault site on a no-panic path: panic/corrupt manifest as a decode
    // error, exercising the caller's degraded-ingestion handling.
    match lpat_core::faultpoint!("bytecode.read") {
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(_) => return Err(DecodeError("injected fault at site 'bytecode.read'".into())),
        None => {}
    }
    let mut r = Reader::new(buf);
    if r.bytes(4)? != MAGIC {
        return Err(DecodeError("bad magic".into()));
    }
    if r.u32()? != VERSION {
        return Err(DecodeError("unsupported version".into()));
    }
    let mut m = Module::new(name);
    read_types(&mut m, &mut r)?;
    let bodies = read_func_sigs(&mut m, &mut r)?;
    let inits = read_global_heads(&mut m, &mut r)?;
    read_consts(&mut m, &mut r)?;
    for g in inits {
        let c = r.vusize()?;
        if c >= m.consts.len() {
            return Err(DecodeError("initializer constant out of range".into()));
        }
        m.global_mut(g).init = Some(ConstId::from_index(c));
    }
    for f in bodies {
        read_body(&mut m, f, &mut r)?;
    }
    Ok((m, r.pos()))
}

const N_PRIMS: usize = 12;

fn tyid(m: &Module, idx: usize) -> Result<TypeId, DecodeError> {
    m.types
        .iter()
        .nth(idx)
        .map(|(id, _)| id)
        .ok_or_else(|| DecodeError(format!("type index {idx} out of range")))
}

/// Resolve a type index that must already exist (cheap path: indices are
/// dense, so bounds-check then construct).
fn ty_at(m: &Module, idx: usize) -> Result<TypeId, DecodeError> {
    if idx >= m.types.len() {
        return Err(DecodeError(format!("type index {idx} out of range")));
    }
    tyid(m, idx)
}

fn read_types(m: &mut Module, r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let n = r.vusize()?;
    // Named struct bodies may reference later ids; defer them.
    let mut deferred: Vec<(TypeId, Vec<usize>)> = Vec::new();
    for i in 0..n {
        let expected_id = N_PRIMS + i;
        let tag = r.byte()?;
        let made = match tag {
            0 => {
                let p = r.vusize()?;
                let p = ty_at(m, p)?;
                m.types.ptr(p)
            }
            1 => {
                let e = r.vusize()?;
                let len = r.varint()?;
                let e = ty_at(m, e)?;
                m.types.array(e, len)
            }
            2 => {
                let k = r.bounded_count("struct field", 1)?;
                let mut fields = Vec::with_capacity(k);
                for _ in 0..k {
                    let f = r.vusize()?;
                    fields.push(ty_at(m, f)?);
                }
                m.types.struct_lit(fields)
            }
            3 => {
                let name = r.string()?;
                let k = r.bounded_count("struct field", 1)?;
                let mut fields = Vec::with_capacity(k);
                for _ in 0..k {
                    fields.push(r.vusize()?);
                }
                let id = m.types.named_struct(&name);
                deferred.push((id, fields));
                id
            }
            4 => {
                let ret = r.vusize()?;
                let k = r.bounded_count("function parameter", 1)?;
                let mut params = Vec::with_capacity(k);
                for _ in 0..k {
                    let p = r.vusize()?;
                    params.push(ty_at(m, p)?);
                }
                let varargs = r.byte()? != 0;
                let ret = ty_at(m, ret)?;
                m.types.func(ret, params, varargs)
            }
            5 => {
                let name = r.string()?;
                m.types.named_struct(&name)
            }
            t => return Err(DecodeError(format!("bad type tag {t}"))),
        };
        if made.index() != expected_id {
            return Err(DecodeError(format!(
                "type table misalignment: entry {i} interned as {} (duplicate or reordered table)",
                made.index()
            )));
        }
    }
    for (id, fields) in deferred {
        let mut fs = Vec::with_capacity(fields.len());
        for f in fields {
            fs.push(ty_at(m, f)?);
        }
        m.types.set_struct_body(id, fs);
    }
    Ok(())
}

fn read_func_sigs(m: &mut Module, r: &mut Reader<'_>) -> Result<Vec<FuncId>, DecodeError> {
    let n = r.vusize()?;
    let mut bodies = Vec::new();
    for _ in 0..n {
        let name = r.string()?;
        let t = r.vusize()?;
        let t = ty_at(m, t)?;
        let flags = r.byte()?;
        let (ret, params, varargs) = match m.types.ty(t).clone() {
            Type::Func {
                ret,
                params,
                varargs,
            } => (ret, params, varargs),
            _ => {
                return Err(DecodeError(format!(
                    "function @{name} has non-function type"
                )))
            }
        };
        let linkage = if flags & 1 != 0 {
            Linkage::Internal
        } else {
            Linkage::External
        };
        let id = m.add_function(&name, &params, ret, varargs, linkage);
        if flags & 2 != 0 {
            bodies.push(id);
        }
    }
    Ok(bodies)
}

fn read_global_heads(m: &mut Module, r: &mut Reader<'_>) -> Result<Vec<GlobalId>, DecodeError> {
    let n = r.vusize()?;
    let mut inits = Vec::new();
    for _ in 0..n {
        let name = r.string()?;
        let t = r.vusize()?;
        let t = ty_at(m, t)?;
        let flags = r.byte()?;
        let linkage = if flags & 2 != 0 {
            Linkage::Internal
        } else {
            Linkage::External
        };
        let id = m.add_global(&name, t, None, flags & 1 != 0, linkage);
        if flags & 4 != 0 {
            inits.push(id);
        }
    }
    Ok(inits)
}

fn read_consts(m: &mut Module, r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let n = r.vusize()?;
    for i in 0..n {
        let tag = r.byte()?;
        let c = match tag {
            0 => Const::Bool(r.byte()? != 0),
            1 => {
                let kind = r.byte()?;
                let kind = *IntKind::ALL
                    .get(kind as usize)
                    .ok_or_else(|| DecodeError("bad int kind".into()))?;
                Const::Int {
                    kind,
                    value: kind.canonicalize(unzigzag(r.varint()?)),
                }
            }
            2 => {
                let b = r.bytes(4)?;
                Const::F32(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            3 => {
                let b = r.bytes(8)?;
                Const::F64(u64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]))
            }
            4 => Const::Null(ty_at(m, r.vusize()?)?),
            5 => Const::Undef(ty_at(m, r.vusize()?)?),
            6 => Const::Zero(ty_at(m, r.vusize()?)?),
            7 => {
                let ty = ty_at(m, r.vusize()?)?;
                let k = r.bounded_count("array element", 1)?;
                let mut elems = Vec::with_capacity(k);
                for _ in 0..k {
                    let e = r.vusize()?;
                    if e >= i {
                        return Err(DecodeError("forward constant reference".into()));
                    }
                    elems.push(ConstId::from_index(e));
                }
                Const::Array { ty, elems }
            }
            8 => {
                let ty = ty_at(m, r.vusize()?)?;
                let k = r.bounded_count("struct field", 1)?;
                let mut fields = Vec::with_capacity(k);
                for _ in 0..k {
                    let e = r.vusize()?;
                    if e >= i {
                        return Err(DecodeError("forward constant reference".into()));
                    }
                    fields.push(ConstId::from_index(e));
                }
                Const::Struct { ty, fields }
            }
            9 => {
                let g = r.vusize()?;
                if g >= m.num_globals() {
                    return Err(DecodeError("global index out of range".into()));
                }
                Const::GlobalAddr(GlobalId::from_index(g))
            }
            10 => {
                let f = r.vusize()?;
                if f >= m.num_funcs() {
                    return Err(DecodeError("function index out of range".into()));
                }
                Const::FuncAddr(FuncId::from_index(f))
            }
            t => return Err(DecodeError(format!("bad constant tag {t}"))),
        };
        let id = m.consts.intern(c);
        if id.index() != i {
            return Err(DecodeError(
                "constant table misalignment (duplicate entry)".into(),
            ));
        }
    }
    Ok(())
}

/// Decode a tagged valnum relative to instruction index `cur`.
fn decode_value(
    m: &Module,
    cur: usize,
    n_insts: usize,
    n_params: usize,
    v: u64,
) -> Result<Value, DecodeError> {
    match v & 3 {
        0 => {
            let rel = unzigzag(v >> 2);
            // checked_sub: `rel` may be i64::MIN on hostile input.
            let def = (cur as i64)
                .checked_sub(rel)
                .filter(|&d| d >= 0 && (d as usize) < n_insts)
                .ok_or_else(|| DecodeError(format!("instruction reference {rel} out of range")))?;
            Ok(Value::Inst(InstId::from_index(def as usize)))
        }
        1 => {
            let a = v >> 2;
            if a >= n_params as u64 {
                return Err(DecodeError(format!(
                    "argument reference {a} out of range ({n_params} parameters)"
                )));
            }
            Ok(Value::Arg(a as u32))
        }
        2 => {
            let c = (v >> 2) as usize;
            if c >= m.consts.len() {
                return Err(DecodeError("constant reference out of range".into()));
            }
            Ok(Value::Const(ConstId::from_index(c)))
        }
        t => Err(DecodeError(format!("bad value tag {t}"))),
    }
}

fn read_body(m: &mut Module, fid: FuncId, r: &mut Reader<'_>) -> Result<(), DecodeError> {
    let n_params = m.func(fid).params().len();
    // Every block costs at least its length varint, every instruction at
    // least its 4-byte head word — so both counts are bounded by the
    // remaining input and a hostile header cannot force huge allocation.
    let n_blocks = r.bounded_count("block", 1)?;
    // First read the raw block structure so the total instruction count is
    // known before decoding operands (relative references need it).
    let mut block_lens = Vec::with_capacity(n_blocks);
    // We must interleave: instruction extended data follows each head word,
    // so decode in one pass but defer range checks on forward refs by using
    // a provisional (large) count and re-checking after.
    let mut insts: Vec<Inst> = Vec::new();
    let mut declared: Vec<Option<TypeId>> = Vec::new();
    for _ in 0..n_blocks {
        let len = r.bounded_count("instruction", 4)?;
        block_lens.push(len);
        for _ in 0..len {
            let cur = insts.len();
            let (inst, dec) = read_inst(m, r, cur, n_blocks, n_params)?;
            insts.push(inst);
            declared.push(dec);
        }
    }
    let n_insts = insts.len();
    // Validate instruction references now that the total is known (block
    // targets were already checked against `n_blocks` during decoding).
    for (i, inst) in insts.iter().enumerate() {
        let mut bad = None;
        inst.for_each_operand(|v| {
            if let Value::Inst(d) = v {
                if d.index() >= n_insts {
                    bad = Some(d.index());
                }
            }
        });
        if let Some(b) = bad {
            return Err(DecodeError(format!(
                "instruction {i} references out-of-range %t{b}"
            )));
        }
    }
    resolve_types(m, fid, &insts, &mut declared)?;
    // Materialize.
    let f = m.func_mut(fid);
    let mut it = insts.into_iter().zip(declared);
    for &len in &block_lens {
        let b = f.add_block();
        for _ in 0..len {
            let (inst, ty) = it
                .next()
                .ok_or_else(|| DecodeError("instruction count mismatch".into()))?;
            let ty = ty.ok_or_else(|| DecodeError("unresolved instruction type".into()))?;
            f.append_inst(b, inst, ty);
        }
    }
    Ok(())
}

/// Decode one instruction; returns it plus its declared type when the
/// encoding stores one (`phi`, `cast`, allocations, `vaarg`).
fn read_inst(
    m: &mut Module,
    r: &mut Reader<'_>,
    cur: usize,
    n_blocks: usize,
    n_params: usize,
) -> Result<(Inst, Option<TypeId>), DecodeError> {
    let (opb, fmt, a, b) = unpack_head(r.u32()?);
    let op = Op::from_u8(opb).ok_or_else(|| DecodeError(format!("bad opcode {opb}")))?;
    // Block targets are validated against the block count *before* the
    // index narrows to the id's u32 (a huge varint must not wrap into a
    // valid-looking target).
    let blk = |i: usize| -> Result<BlockId, DecodeError> {
        if i >= n_blocks {
            return Err(DecodeError(format!("branch to missing block {i}")));
        }
        Ok(BlockId::from_index(i))
    };
    // Operand fetch: inline from fields when fmt == 0, else trailing
    // varints in field order.
    let mut inline = [a as u64, b as u64];
    let mut idx = 0usize;
    let mut operand = |r: &mut Reader<'_>| -> Result<u64, DecodeError> {
        if fmt == 0 {
            let v = inline[idx];
            idx += 1;
            debug_assert!(idx <= 2);
            Ok(v)
        } else {
            let _ = &mut inline;
            r.varint()
        }
    };
    // `decode_value` can't range-check forward refs yet, so pass a large
    // provisional instruction count; `read_body` re-validates.
    let val = |m: &Module, v: u64| decode_value(m, cur, usize::MAX / 2, n_params, v);
    let ty_field = |m: &Module, v: u64| ty_at(m, v as usize);
    Ok(match op {
        Op::RetVoid => (Inst::Ret(None), None),
        Op::RetVal => {
            let v = operand(r)?;
            (Inst::Ret(Some(val(m, v)?)), None)
        }
        Op::Br => {
            let t = operand(r)?;
            (Inst::Br(blk(t as usize)?), None)
        }
        Op::CondBr => {
            let cond = operand(r)?;
            let cond = val(m, cond)?;
            let t = r.vusize()?;
            let e = r.vusize()?;
            (
                Inst::CondBr {
                    cond,
                    then_bb: blk(t)?,
                    else_bb: blk(e)?,
                },
                None,
            )
        }
        Op::Switch => {
            let v = r.varint()?;
            let v = val(m, v)?;
            let default = blk(r.vusize()?)?;
            let k = r.bounded_count("switch case", 2)?;
            let mut cases = Vec::with_capacity(k);
            for _ in 0..k {
                let c = r.vusize()?;
                if c >= m.consts.len() {
                    return Err(DecodeError("switch case constant out of range".into()));
                }
                let b = blk(r.vusize()?)?;
                cases.push((ConstId::from_index(c), b));
            }
            (
                Inst::Switch {
                    val: v,
                    default,
                    cases,
                },
                None,
            )
        }
        Op::Invoke => {
            let callee = r.varint()?;
            let callee = val(m, callee)?;
            let k = r.bounded_count("invoke argument", 1)?;
            let mut args = Vec::with_capacity(k);
            for _ in 0..k {
                let a = r.varint()?;
                args.push(val(m, a)?);
            }
            let normal = blk(r.vusize()?)?;
            let unwind = blk(r.vusize()?)?;
            (
                Inst::Invoke {
                    callee,
                    args,
                    normal,
                    unwind,
                },
                None,
            )
        }
        Op::Unwind => (Inst::Unwind, None),
        Op::Unreachable => (Inst::Unreachable, None),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Shl
        | Op::Shr => {
            let l = operand(r)?;
            let rr = operand(r)?;
            (
                Inst::Bin {
                    op: op
                        .to_bin()
                        .ok_or_else(|| DecodeError(format!("opcode {opb} is not a binop")))?,
                    lhs: val(m, l)?,
                    rhs: val(m, rr)?,
                },
                None,
            )
        }
        Op::SetEq | Op::SetNe | Op::SetLt | Op::SetGt | Op::SetLe | Op::SetGe => {
            let l = operand(r)?;
            let rr = operand(r)?;
            (
                Inst::Cmp {
                    pred: op
                        .to_pred()
                        .ok_or_else(|| DecodeError(format!("opcode {opb} is not a setcc")))?,
                    lhs: val(m, l)?,
                    rhs: val(m, rr)?,
                },
                Some(m.types.bool_()),
            )
        }
        Op::Malloc | Op::Alloca => {
            let t = operand(r)?;
            let elem_ty = ty_field(m, t)?;
            let pty = m.types.ptr(elem_ty);
            let inst = if op == Op::Malloc {
                Inst::Malloc {
                    elem_ty,
                    count: None,
                }
            } else {
                Inst::Alloca {
                    elem_ty,
                    count: None,
                }
            };
            (inst, Some(pty))
        }
        Op::MallocN | Op::AllocaN => {
            let t = operand(r)?;
            let c = operand(r)?;
            let elem_ty = ty_field(m, t)?;
            let count = Some(val(m, c)?);
            let pty = m.types.ptr(elem_ty);
            let inst = if op == Op::MallocN {
                Inst::Malloc { elem_ty, count }
            } else {
                Inst::Alloca { elem_ty, count }
            };
            (inst, Some(pty))
        }
        Op::Free => {
            let p = operand(r)?;
            (Inst::Free(val(m, p)?), None)
        }
        Op::Load => {
            let p = operand(r)?;
            (Inst::Load { ptr: val(m, p)? }, None)
        }
        Op::Store => {
            let v = operand(r)?;
            let p = operand(r)?;
            (
                Inst::Store {
                    val: val(m, v)?,
                    ptr: val(m, p)?,
                },
                None,
            )
        }
        Op::Gep => {
            let p = operand(r)?;
            let ptr = val(m, p)?;
            let k = r.bounded_count("gep index", 1)?;
            let mut indices = Vec::with_capacity(k);
            for _ in 0..k {
                let i = r.varint()?;
                indices.push(val(m, i)?);
            }
            (Inst::Gep { ptr, indices }, None)
        }
        Op::Phi => {
            let t = operand(r)?;
            let ty = ty_field(m, t)?;
            let k = r.bounded_count("phi incoming", 2)?;
            let mut incoming = Vec::with_capacity(k);
            for _ in 0..k {
                let v = r.varint()?;
                let v = val(m, v)?;
                let b = blk(r.vusize()?)?;
                incoming.push((v, b));
            }
            (Inst::Phi { incoming }, Some(ty))
        }
        Op::Call => {
            let c = operand(r)?;
            let callee = val(m, c)?;
            let k = r.bounded_count("call argument", 1)?;
            let mut args = Vec::with_capacity(k);
            for _ in 0..k {
                let a = r.varint()?;
                args.push(val(m, a)?);
            }
            (Inst::Call { callee, args }, None)
        }
        Op::Cast => {
            let v = operand(r)?;
            let t = operand(r)?;
            let to = ty_field(m, t)?;
            (
                Inst::Cast {
                    val: val(m, v)?,
                    to,
                },
                Some(to),
            )
        }
        Op::VaArg => {
            let t = operand(r)?;
            let ty = ty_field(m, t)?;
            (Inst::VaArg { ty }, Some(ty))
        }
    })
}

/// Infer the result types not stored in the encoding, resolving operand
/// dependencies depth-first with an explicit stack (layout order is not
/// dominance order, so a plain forward scan does not suffice).
fn resolve_types(
    m: &mut Module,
    fid: FuncId,
    insts: &[Inst],
    declared: &mut [Option<TypeId>],
) -> Result<(), DecodeError> {
    let params: Vec<TypeId> = m.func(fid).params().to_vec();
    let n = insts.len();
    let mut visiting = vec![false; n];
    for start in 0..n {
        if declared[start].is_some() {
            continue;
        }
        let mut stack = vec![start];
        while let Some(&i) = stack.last() {
            if declared[i].is_some() {
                stack.pop();
                continue;
            }
            // Find unresolved operand dependencies.
            let mut pending = None;
            let mut cycle = None;
            deps_of(&insts[i], |d| {
                if pending.is_none() && declared[d.index()].is_none() {
                    if visiting[d.index()] {
                        cycle = Some(d.index());
                    } else {
                        pending = Some(d.index());
                    }
                }
            });
            if let Some(c) = cycle {
                return Err(DecodeError(format!(
                    "type dependency cycle through instruction {c}"
                )));
            }
            if let Some(p) = pending {
                visiting[i] = true;
                stack.push(p);
                continue;
            }
            let ty = compute_type(m, &params, insts, declared, i)?;
            declared[i] = Some(ty);
            visiting[i] = false;
            stack.pop();
        }
    }
    Ok(())
}

/// Instruction-result dependencies needed to compute `inst`'s type.
fn deps_of(inst: &Inst, mut f: impl FnMut(InstId)) {
    let mut dep = |v: &Value| {
        if let Value::Inst(d) = v {
            f(*d)
        }
    };
    match inst {
        Inst::Bin { lhs, .. } => dep(lhs),
        Inst::Load { ptr } | Inst::Gep { ptr, .. } => dep(ptr),
        Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => dep(callee),
        _ => {}
    }
}

fn compute_type(
    m: &mut Module,
    params: &[TypeId],
    insts: &[Inst],
    declared: &[Option<TypeId>],
    i: usize,
) -> Result<TypeId, DecodeError> {
    let vt = |m: &Module, v: &Value| -> Result<TypeId, DecodeError> {
        Ok(match v {
            Value::Inst(d) => declared
                .get(d.index())
                .copied()
                .flatten()
                .ok_or_else(|| DecodeError("operand type dependency unresolved".into()))?,
            Value::Arg(n) => *params
                .get(*n as usize)
                .ok_or_else(|| DecodeError("argument index out of range".into()))?,
            Value::Const(c) => m.const_type(*c),
        })
    };
    Ok(match &insts[i] {
        Inst::Bin { lhs, .. } => vt(m, lhs)?,
        Inst::Load { ptr } => {
            let p = vt(m, ptr)?;
            m.types
                .pointee(p)
                .ok_or_else(|| DecodeError("load through non-pointer".into()))?
        }
        Inst::Gep { ptr, indices } => {
            let base = vt(m, ptr)?;
            let mut cur = m
                .types
                .pointee(base)
                .ok_or_else(|| DecodeError("gep base is not a pointer".into()))?;
            for (k, idx) in indices.iter().enumerate() {
                if k == 0 {
                    continue;
                }
                match m.types.ty(cur).clone() {
                    Type::Struct { fields, .. } => {
                        let c = match idx {
                            Value::Const(c) => *c,
                            _ => return Err(DecodeError("struct index not constant".into())),
                        };
                        let (_, v) = m
                            .consts
                            .as_int(c)
                            .ok_or_else(|| DecodeError("struct index not integer".into()))?;
                        cur = *fields
                            .get(v as usize)
                            .ok_or_else(|| DecodeError("struct index out of range".into()))?;
                    }
                    Type::Array { elem, .. } => cur = elem,
                    _ => return Err(DecodeError("gep into non-aggregate".into())),
                }
            }
            m.types.ptr(cur)
        }
        Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => {
            let ct = vt(m, callee)?;
            let fnty = m
                .types
                .pointee(ct)
                .ok_or_else(|| DecodeError("call through non-pointer".into()))?;
            m.types
                .func_ret(fnty)
                .ok_or_else(|| DecodeError("call through non-function".into()))?
        }
        // Everything else is void or had a declared type.
        _ => m.types.void(),
    })
}
