//! Bytecode writer: serializes a [`Module`] to the compact binary form.

use std::collections::HashMap;

use lpat_core::{Const, Function, Inst, InstId, Module, Type, Value};

use crate::format::{pack_head, write_string, write_varint, zigzag, Op, FIELD_MAX, MAGIC, VERSION};

/// Encoding options.
#[derive(Copy, Clone, Debug)]
pub struct WriteOptions {
    /// Use the compact single-word instruction heads when operands fit
    /// (the paper's "most instructions in a single 32-bit word" design).
    /// Disabled, every instruction writes its operands as varints after
    /// the head word — the DESIGN.md ablation for Figure 5.
    pub compact_heads: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            compact_heads: true,
        }
    }
}

/// Serialize `m` to bytes.
///
/// The inverse is [`crate::read_module`]; `read_module(&write_module(m))`
/// reproduces a module whose printed form equals `m`'s.
pub fn write_module(m: &Module) -> Vec<u8> {
    write_module_with(m, WriteOptions::default())
}

/// Serialize with explicit [`WriteOptions`].
pub fn write_module_with(m: &Module, opts: WriteOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    // The in-memory constant pool accumulates garbage over a module's
    // lifetime (transforms retire constants; symbol removal leaves
    // dangling address entries). Serialization garbage-collects: only
    // constants reachable from instructions and initializers are written,
    // under a dense renumbering.
    let cmap = reachable_consts(m);

    write_types(m, &mut out);
    write_func_sigs(m, &mut out);
    write_global_heads(m, &mut out);
    write_consts(m, &cmap, &mut out);
    write_global_inits(m, &cmap, &mut out);
    for (_, f) in m.funcs() {
        if !f.is_declaration() {
            write_body(m, f, &cmap, opts, &mut out);
        }
    }
    out
}

/// Dense remap of reachable constants, in an order where aggregate
/// elements precede the aggregates that contain them (original interning
/// order has that property, so keeping old-id order suffices).
fn reachable_consts(m: &Module) -> HashMap<lpat_core::ConstId, usize> {
    let mut seen: Vec<bool> = vec![false; m.consts.len()];
    let mut work: Vec<lpat_core::ConstId> = Vec::new();
    fn mark(c: lpat_core::ConstId, seen: &mut [bool], work: &mut Vec<lpat_core::ConstId>) {
        if !seen[c.index()] {
            seen[c.index()] = true;
            work.push(c);
        }
    }
    for (_, g) in m.globals() {
        if let Some(init) = g.init {
            mark(init, &mut seen, &mut work);
        }
    }
    for (_, f) in m.funcs() {
        for iid in f.inst_ids_in_order() {
            let inst = f.inst(iid);
            inst.for_each_operand(|v| {
                if let Value::Const(c) = v {
                    mark(c, &mut seen, &mut work);
                }
            });
            if let Inst::Switch { cases, .. } = inst {
                for (c, _) in cases {
                    mark(*c, &mut seen, &mut work);
                }
            }
        }
    }
    while let Some(c) = work.pop() {
        match m.consts.get(c) {
            Const::Array { elems, .. } => {
                for &e in elems {
                    mark(e, &mut seen, &mut work);
                }
            }
            Const::Struct { fields, .. } => {
                for &e in fields {
                    mark(e, &mut seen, &mut work);
                }
            }
            _ => {}
        }
    }
    let mut cmap = HashMap::new();
    let mut next = 0usize;
    for (i, &sn) in seen.iter().enumerate() {
        if sn {
            cmap.insert(lpat_core::ConstId::from_index(i), next);
            next += 1;
        }
    }
    cmap
}

/// Number of pre-interned primitive types that are never serialized.
const N_PRIMS: usize = 12;

fn write_types(m: &Module, out: &mut Vec<u8>) {
    let total = m.types.len();
    write_varint(out, (total - N_PRIMS) as u64);
    for (id, ty) in m.types.iter().skip(N_PRIMS) {
        let _ = id;
        match ty {
            Type::Ptr(p) => {
                out.push(0);
                write_varint(out, p.index() as u64);
            }
            Type::Array { elem, len } => {
                out.push(1);
                write_varint(out, elem.index() as u64);
                write_varint(out, *len);
            }
            Type::Struct { name: None, fields } => {
                out.push(2);
                write_varint(out, fields.len() as u64);
                for f in fields {
                    write_varint(out, f.index() as u64);
                }
            }
            Type::Struct {
                name: Some(n),
                fields,
            } => {
                out.push(3);
                write_string(out, n);
                write_varint(out, fields.len() as u64);
                for f in fields {
                    write_varint(out, f.index() as u64);
                }
            }
            Type::Func {
                ret,
                params,
                varargs,
            } => {
                out.push(4);
                write_varint(out, ret.index() as u64);
                write_varint(out, params.len() as u64);
                for p in params {
                    write_varint(out, p.index() as u64);
                }
                out.push(*varargs as u8);
            }
            Type::Opaque(n) => {
                out.push(5);
                write_string(out, n);
            }
            prim => unreachable!("primitive type {prim:?} after the preamble"),
        }
    }
}

fn write_func_sigs(m: &Module, out: &mut Vec<u8>) {
    write_varint(out, m.num_funcs() as u64);
    for (_, f) in m.funcs() {
        write_string(out, &f.name);
        write_varint(out, f.fn_type().index() as u64);
        let flags = (matches!(f.linkage, lpat_core::Linkage::Internal) as u8)
            | ((!f.is_declaration() as u8) << 1);
        out.push(flags);
    }
}

fn write_global_heads(m: &Module, out: &mut Vec<u8>) {
    write_varint(out, m.num_globals() as u64);
    for (_, g) in m.globals() {
        write_string(out, &g.name);
        write_varint(out, g.value_ty.index() as u64);
        let flags = (g.is_const as u8)
            | ((matches!(g.linkage, lpat_core::Linkage::Internal) as u8) << 1)
            | ((g.init.is_some() as u8) << 2);
        out.push(flags);
    }
}

fn write_consts(m: &Module, cmap: &HashMap<lpat_core::ConstId, usize>, out: &mut Vec<u8>) {
    write_varint(out, cmap.len() as u64);
    for (id, c) in m.consts.iter() {
        if !cmap.contains_key(&id) {
            continue;
        }
        match c {
            Const::Bool(b) => {
                out.push(0);
                out.push(*b as u8);
            }
            Const::Int { kind, value } => {
                out.push(1);
                out.push(*kind as u8);
                write_varint(out, zigzag(*value));
            }
            Const::F32(bits) => {
                out.push(2);
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Const::F64(bits) => {
                out.push(3);
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Const::Null(t) => {
                out.push(4);
                write_varint(out, t.index() as u64);
            }
            Const::Undef(t) => {
                out.push(5);
                write_varint(out, t.index() as u64);
            }
            Const::Zero(t) => {
                out.push(6);
                write_varint(out, t.index() as u64);
            }
            Const::Array { ty, elems } => {
                out.push(7);
                write_varint(out, ty.index() as u64);
                write_varint(out, elems.len() as u64);
                for e in elems {
                    write_varint(out, cmap[e] as u64);
                }
            }
            Const::Struct { ty, fields } => {
                out.push(8);
                write_varint(out, ty.index() as u64);
                write_varint(out, fields.len() as u64);
                for e in fields {
                    write_varint(out, cmap[e] as u64);
                }
            }
            Const::GlobalAddr(g) => {
                out.push(9);
                write_varint(out, g.index() as u64);
            }
            Const::FuncAddr(f) => {
                out.push(10);
                write_varint(out, f.index() as u64);
            }
        }
    }
}

fn write_global_inits(m: &Module, cmap: &HashMap<lpat_core::ConstId, usize>, out: &mut Vec<u8>) {
    for (_, g) in m.globals() {
        if let Some(init) = g.init {
            write_varint(out, cmap[&init] as u64);
        }
    }
}

/// Encode a [`Value`] as a tagged valnum relative to instruction `cur`.
fn valnum(
    idmap: &HashMap<InstId, usize>,
    cmap: &HashMap<lpat_core::ConstId, usize>,
    cur: usize,
    v: Value,
) -> u64 {
    match v {
        Value::Inst(d) => {
            let def = idmap[&d];
            zigzag(cur as i64 - def as i64) << 2
        }
        Value::Arg(n) => ((n as u64) << 2) | 1,
        Value::Const(c) => ((cmap[&c] as u64) << 2) | 2,
    }
}

fn write_body(
    m: &Module,
    f: &Function,
    cmap: &HashMap<lpat_core::ConstId, usize>,
    opts: WriteOptions,
    out: &mut Vec<u8>,
) {
    let _ = m;
    // Function-wide instruction numbering in block layout order.
    let mut idmap = HashMap::new();
    for (i, id) in f.inst_ids_in_order().enumerate() {
        idmap.insert(id, i);
    }
    write_varint(out, f.num_blocks() as u64);
    let mut cur = 0usize;
    for b in f.block_ids() {
        write_varint(out, f.block_insts(b).len() as u64);
        for &iid in f.block_insts(b) {
            write_inst(f, &idmap, cmap, opts, cur, iid, out);
            cur += 1;
        }
    }
}

/// `true` if every inline candidate fits a 12-bit field.
fn fits(vals: &[u64]) -> bool {
    vals.iter().all(|&v| v <= FIELD_MAX as u64)
}

fn write_inst(
    f: &Function,
    idmap: &HashMap<InstId, usize>,
    cmap: &HashMap<lpat_core::ConstId, usize>,
    opts: WriteOptions,
    cur: usize,
    iid: InstId,
    out: &mut Vec<u8>,
) {
    let vn = |v: Value| valnum(idmap, cmap, cur, v);
    // Emit head word + optional extended operands + fixed trailing lists.
    let head = |out: &mut Vec<u8>, op: Op, inline: &[u64]| {
        debug_assert!(inline.len() <= 2);
        if opts.compact_heads && fits(inline) {
            let a = inline.first().copied().unwrap_or(0) as u32;
            let b = inline.get(1).copied().unwrap_or(0) as u32;
            out.extend_from_slice(&pack_head(op, 0, a, b).to_le_bytes());
        } else {
            out.extend_from_slice(&pack_head(op, 1, 0, 0).to_le_bytes());
            for &v in inline {
                write_varint(out, v);
            }
        }
    };
    match f.inst(iid) {
        Inst::Ret(None) => head(out, Op::RetVoid, &[]),
        Inst::Ret(Some(v)) => head(out, Op::RetVal, &[vn(*v)]),
        Inst::Br(b) => head(out, Op::Br, &[b.index() as u64]),
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            head(out, Op::CondBr, &[vn(*cond)]);
            write_varint(out, then_bb.index() as u64);
            write_varint(out, else_bb.index() as u64);
        }
        Inst::Switch {
            val,
            default,
            cases,
        } => {
            head(out, Op::Switch, &[]);
            write_varint(out, vn(*val));
            write_varint(out, default.index() as u64);
            write_varint(out, cases.len() as u64);
            for (c, b) in cases {
                write_varint(out, cmap[c] as u64);
                write_varint(out, b.index() as u64);
            }
        }
        Inst::Invoke {
            callee,
            args,
            normal,
            unwind,
        } => {
            head(out, Op::Invoke, &[]);
            write_varint(out, vn(*callee));
            write_varint(out, args.len() as u64);
            for a in args {
                write_varint(out, vn(*a));
            }
            write_varint(out, normal.index() as u64);
            write_varint(out, unwind.index() as u64);
        }
        Inst::Unwind => head(out, Op::Unwind, &[]),
        Inst::Unreachable => head(out, Op::Unreachable, &[]),
        Inst::Bin { op, lhs, rhs } => head(out, Op::from_bin(*op), &[vn(*lhs), vn(*rhs)]),
        Inst::Cmp { pred, lhs, rhs } => head(out, Op::from_pred(*pred), &[vn(*lhs), vn(*rhs)]),
        Inst::Malloc { elem_ty, count } => match count {
            None => head(out, Op::Malloc, &[elem_ty.index() as u64]),
            Some(c) => head(out, Op::MallocN, &[elem_ty.index() as u64, vn(*c)]),
        },
        Inst::Alloca { elem_ty, count } => match count {
            None => head(out, Op::Alloca, &[elem_ty.index() as u64]),
            Some(c) => head(out, Op::AllocaN, &[elem_ty.index() as u64, vn(*c)]),
        },
        Inst::Free(p) => head(out, Op::Free, &[vn(*p)]),
        Inst::Load { ptr } => head(out, Op::Load, &[vn(*ptr)]),
        Inst::Store { val, ptr } => head(out, Op::Store, &[vn(*val), vn(*ptr)]),
        Inst::Gep { ptr, indices } => {
            head(out, Op::Gep, &[vn(*ptr)]);
            write_varint(out, indices.len() as u64);
            for i in indices {
                write_varint(out, vn(*i));
            }
        }
        Inst::Phi { incoming } => {
            head(out, Op::Phi, &[f.inst_ty(iid).index() as u64]);
            write_varint(out, incoming.len() as u64);
            for (v, b) in incoming {
                write_varint(out, vn(*v));
                write_varint(out, b.index() as u64);
            }
        }
        Inst::Call { callee, args } => {
            head(out, Op::Call, &[vn(*callee)]);
            write_varint(out, args.len() as u64);
            for a in args {
                write_varint(out, vn(*a));
            }
        }
        Inst::Cast { val, to } => head(out, Op::Cast, &[vn(*val), to.index() as u64]),
        Inst::VaArg { ty } => head(out, Op::VaArg, &[ty.index() as u64]),
    }
}
