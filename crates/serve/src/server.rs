//! The `lpatd` server core: accept loop, per-connection framing, bounded
//! worker pool, and the fault-isolated request pipeline.
//!
//! # Isolation model
//!
//! Every layer that executes on behalf of one client is wrapped so its
//! failure is *that client's* failure and nobody else's:
//!
//! - **accept** (`serve.accept`): a fault while setting up a freshly
//!   accepted connection drops that connection; the accept loop continues.
//! - **decode** (`serve.decode`): request decoding is total (no panics on
//!   hostile bytes, lengths validated before allocation) *and* wrapped in
//!   `catch_unwind` anyway — defense in depth; a decode failure answers
//!   that frame with a structured error and keeps the connection.
//! - **worker** (`serve.worker`): the whole compile/run pipeline for one
//!   request runs under `catch_unwind`; a panic becomes an
//!   [`ErrClass::Panic`] response to that one client while the worker
//!   thread survives to take the next job.
//! - **deadline** (`serve.deadline`): cooperative deadline checks at stage
//!   boundaries turn a runaway request into [`ErrClass::Deadline`];
//!   execution itself is always fuel-bounded so overrun is bounded by one
//!   stage, never unbounded.
//!
//! # Overload model
//!
//! Admission is two-tiered (see [`crate::admission`]): deterministic
//! quota violations answer [`ErrClass::Quota`]; load-dependent pressure —
//! tenant in-flight caps and a full bounded queue — answers
//! [`Response::Busy`] with a retry hint. Memory use is bounded by
//! `max_frame` × (connections + queue depth); nothing queues unboundedly.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use lpat_core::fault::FaultAction;
use lpat_core::{faultpoint, trace, Module};
use lpat_vm::store::{FlushGuard, FlushOutcome};
use lpat_vm::{module_hash, reoptimize, ExecError, PgoOptions, ProfileData, Vm, VmOptions};

use lpat_core::hash::fnv1a64;

use crate::admission::{Admission, BoundedQueue, InflightGuard, TenantQuota};
use crate::net::{Conn, Listener};
use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, Addr, ErrClass, Op, ProtoError,
    Request, Response, DEFAULT_MAX_FRAME, FLAG_MINIC, FLAG_OPT, FLAG_TIERED,
};
use crate::shard::ShardedStore;
use crate::signal;
use crate::worker::{respawn_backoff, CrashBreaker, Dispatch, Isolation, ProcWorker};

/// Server configuration; every knob has a safe default.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`tcp:host:port` or `unix:/path`). Port 0 binds an
    /// ephemeral port; read it back from [`Server::local_addr`].
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded work-queue depth; a full queue sheds with `Busy`.
    pub queue_depth: usize,
    /// Maximum accepted frame length (request payload bound).
    pub max_frame: u32,
    /// Fuel granted to a request that asks for none. Always finite: the
    /// daemon never runs an unbounded guest.
    pub default_fuel: u64,
    /// Deadline applied to requests that specify none.
    pub default_deadline: Duration,
    /// Per-tenant quotas enforced at admission.
    pub quota: TenantQuota,
    /// Lifelong store root; `None` serves uncached.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Store shard count (content-hash-prefix sharding; clamped 1..=256).
    pub shards: u32,
    /// Stop after completing this many requests (tests, benchmarks).
    pub max_requests: Option<u64>,
    /// How long an idle connection read blocks before re-checking
    /// shutdown. Small values make shutdown prompt; this is *not* a
    /// client-visible timeout.
    pub idle_poll: Duration,
    /// Worker isolation: in-process threads (default) or pooled
    /// re-exec'd `lpatd --worker` subprocesses under a supervisor.
    pub isolate: Isolation,
    /// Binary to re-exec for process workers. `None` uses
    /// `std::env::current_exe()` — correct when the server *is* `lpatd`.
    pub worker_cmd: Option<std::path::PathBuf>,
    /// Extra argv appended to worker subprocesses (e.g. a fault plan
    /// that must arm inside workers rather than in the daemon).
    pub worker_args: Vec<String>,
    /// Base delay of the supervisor's exponential respawn backoff
    /// (doubles per consecutive crash, capped internally).
    pub restart_backoff: Duration,
    /// Watchdog slack past a request's deadline before a silent worker
    /// is declared wedged and hard-killed.
    pub watchdog_grace: Duration,
    /// Crash-loop breaker: worker crashes charged to one payload hash
    /// within [`ServerConfig::crash_window`] before it is quarantined.
    pub crash_k: u32,
    /// Crash-loop breaker window.
    pub crash_window: Duration,
    /// When set, process-isolated workers trace each request under this
    /// clock and ship the serialized buffer back as a sidecar frame; the
    /// daemon absorbs it as a per-process lane of its own trace
    /// ([`trace::absorb_foreign`]). `None` disables worker-side tracing.
    pub worker_trace: Option<trace::ClockMode>,
    /// Directory for per-slot flight-recorder spill files. When set, each
    /// worker keeps a bounded ring of its recent trace events spilled to
    /// `slot<N>.spill`; after a crash or watchdog kill the supervisor
    /// salvages the checksum-valid prefix into a `*.flight` dump that the
    /// `Crashed` diagnostic references. `None` disables the recorder.
    pub flight_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "tcp:127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 16,
            max_frame: DEFAULT_MAX_FRAME,
            default_fuel: 100_000_000,
            default_deadline: Duration::from_secs(10),
            quota: TenantQuota::default(),
            cache_dir: None,
            shards: 16,
            max_requests: None,
            idle_poll: Duration::from_millis(50),
            isolate: Isolation::Thread,
            worker_cmd: None,
            worker_args: Vec::new(),
            restart_backoff: Duration::from_millis(50),
            watchdog_grace: Duration::from_millis(500),
            crash_k: 3,
            crash_window: Duration::from_secs(300),
            worker_trace: None,
            flight_dir: None,
        }
    }
}

/// Distinct `op:*` / `tenant:*` keys admitted per histogram family before
/// further keys fold into `"other"` (a tenant-name flood must not grow
/// daemon memory without bound).
const MAX_TELEMETRY_KEYS: usize = 32;

/// Always-on quantile telemetry over the request stream: zero-dep
/// log-linear histograms (see [`trace::Histogram`] for the bucket scheme
/// and error bound), summarized as p50/p90/p99 in the `Stats` op's
/// `lpat-serve-stats/v2` response.
pub struct Telemetry {
    /// End-to-end request latency in microseconds (decode to response),
    /// keyed `op:<op>` and `tenant:<tenant>`.
    pub latency_us: trace::HistogramSet,
    /// Queue wait in microseconds: admission to worker pop.
    pub queue_wait_us: trace::Histogram,
    /// Fuel granted per request, after defaulting.
    pub fuel: trace::Histogram,
    /// Module payload sizes in bytes.
    pub payload_bytes: trace::Histogram,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry {
            latency_us: trace::HistogramSet::new(MAX_TELEMETRY_KEYS),
            queue_wait_us: trace::Histogram::new(),
            fuel: trace::Histogram::new(),
            payload_bytes: trace::Histogram::new(),
        }
    }
}

/// Monotonic counters exposed by the `Stats` op and mirrored into the
/// trace layer as `serve.*` counters.
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub conns: AtomicU64,
    /// Connections dropped by an injected/real accept-path fault.
    pub accept_faults: AtomicU64,
    /// Requests decoded and admitted to the pipeline.
    pub requests: AtomicU64,
    /// Requests answered `Ok`.
    pub ok: AtomicU64,
    /// Requests answered with a structured error (any class).
    pub errors: AtomicU64,
    /// Requests answered `Busy` (tenant cap or queue shed).
    pub busy: AtomicU64,
    /// `Busy` responses specifically from a full work queue (shedding).
    pub shed_queue: AtomicU64,
    /// `Busy` responses from a tenant's in-flight cap.
    pub busy_tenant: AtomicU64,
    /// Deterministic quota rejections (bytes / fuel).
    pub quota_rejected: AtomicU64,
    /// Frames that failed to decode.
    pub decode_errors: AtomicU64,
    /// Panics caught and converted to error responses.
    pub panics_isolated: AtomicU64,
    /// Requests that hit their deadline.
    pub deadline_expired: AtomicU64,
    /// Guest traps (the guest's fault, not ours).
    pub traps: AtomicU64,
    /// Run requests served from a cached reoptimized module.
    pub cache_hits: AtomicU64,
    /// Run requests that missed the reopt cache (store configured).
    pub cache_misses: AtomicU64,
    /// Worker subprocesses that died mid-request or between requests
    /// (process isolation only).
    pub worker_crashes: AtomicU64,
    /// Worker subprocesses respawned by the supervisor after a crash or
    /// watchdog kill.
    pub worker_restarts: AtomicU64,
    /// Wedged workers hard-killed by the per-request watchdog.
    pub watchdog_kills: AtomicU64,
    /// Requests refused because their payload hash is crash-loop
    /// quarantined.
    pub quarantined: AtomicU64,
    /// Flight records salvaged from dead workers' spill files.
    pub flight_salvaged: AtomicU64,
    /// Live worker-subprocess pids by slot (0 = slot currently empty /
    /// thread isolation). Chaos tests read these to aim `kill -9`.
    pub worker_pids: std::sync::Mutex<Vec<u64>>,
    /// Quantile telemetry (latency, queue wait, fuel, payload bytes).
    pub telemetry: std::sync::Mutex<Telemetry>,
}

impl ServerStats {
    fn bump(&self, c: &AtomicU64, trace_name: &'static str) {
        c.fetch_add(1, Ordering::Relaxed);
        trace::counter(trace_name, 1);
    }

    /// Lock the telemetry histograms (poison-proof: counters must stay
    /// readable even after a panicked recorder).
    pub fn telemetry(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        self.telemetry.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Render the counters and quantile telemetry as a stable
    /// `lpat-serve-stats/v2` JSON object (the `Stats` op's response body;
    /// `servebench` and `lpatc remote top` consume it).
    pub fn render_json(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut w = trace::JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "lpat-serve-stats/v2");
        w.field_u64("conns", g(&self.conns));
        w.field_u64("accept_faults", g(&self.accept_faults));
        w.field_u64("requests", g(&self.requests));
        w.field_u64("ok", g(&self.ok));
        w.field_u64("errors", g(&self.errors));
        w.field_u64("busy", g(&self.busy));
        w.field_u64("shed_queue", g(&self.shed_queue));
        w.field_u64("busy_tenant", g(&self.busy_tenant));
        w.field_u64("quota_rejected", g(&self.quota_rejected));
        w.field_u64("decode_errors", g(&self.decode_errors));
        w.field_u64("panics_isolated", g(&self.panics_isolated));
        w.field_u64("deadline_expired", g(&self.deadline_expired));
        w.field_u64("traps", g(&self.traps));
        w.field_u64("cache_hits", g(&self.cache_hits));
        w.field_u64("cache_misses", g(&self.cache_misses));
        w.field_u64("worker_crashes", g(&self.worker_crashes));
        w.field_u64("worker_restarts", g(&self.worker_restarts));
        w.field_u64("watchdog_kills", g(&self.watchdog_kills));
        w.field_u64("quarantined", g(&self.quarantined));
        w.field_u64("flight_salvaged", g(&self.flight_salvaged));
        w.begin_array_field("worker_pids");
        {
            let pids = self.worker_pids.lock().unwrap_or_else(|e| e.into_inner());
            for p in pids.iter() {
                w.value_u64(*p);
            }
        }
        w.end_array();
        w.begin_object_field("quantiles");
        {
            let t = self.telemetry();
            w.begin_object_field("latency_us");
            t.latency_us.write_fields(&mut w);
            w.end_object();
            w.begin_object_field("queue_wait_us");
            t.queue_wait_us.write_fields(&mut w);
            w.end_object();
            w.begin_object_field("fuel");
            t.fuel.write_fields(&mut w);
            w.end_object();
            w.begin_object_field("payload_bytes");
            t.payload_bytes.write_fields(&mut w);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Everything needed to execute one request, independent of transport or
/// supervision: the counters, the lifelong store, and the fuel policy.
/// The daemon owns one inside its shared state; an `lpatd --worker`
/// subprocess builds its own around stdio
/// ([`crate::worker::run_worker_stdio`]).
pub struct Engine {
    pub(crate) stats: ServerStats,
    pub(crate) store: Option<ShardedStore>,
    pub(crate) default_fuel: u64,
}

impl Engine {
    /// Build an engine around an (optionally) opened store.
    pub fn new(store: Option<ShardedStore>, default_fuel: u64) -> Engine {
        Engine {
            stats: ServerStats::default(),
            store,
            default_fuel,
        }
    }
}

/// One admitted request queued for a worker. Dropping a `Job` without
/// processing it (queue shutdown) releases its in-flight slot via the
/// guard and leaves the client to its deadline.
struct Job {
    req: Request,
    /// FNV-1a of the raw module payload — the crash breaker's key (0 for
    /// payload-less ops, which are never charged).
    payload_hash: u64,
    deadline: Instant,
    /// When the job entered the queue (queue-wait telemetry).
    enqueued: Instant,
    /// The `serve.queued` span, opened at enqueue and recorded when the
    /// popping worker drops it — one stopwatch for the queue wait.
    queued: trace::Span,
    tx: mpsc::Sender<Response>,
    _inflight: InflightGuard,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cfg: ServerConfig,
    engine: Engine,
    admission: Arc<Admission>,
    queue: BoundedQueue<Job>,
    breaker: Option<CrashBreaker>,
    shutdown: AtomicBool,
    completed: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.shutdown();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Count one finished request; trip shutdown at `max_requests`.
    fn request_completed(&self) {
        let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(max) = self.cfg.max_requests {
            if done >= max {
                self.begin_shutdown();
            }
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Handle to a server running on a background thread.
pub struct Handle {
    addr: Addr,
    shared: Arc<Shared>,
    join: Option<thread::JoinHandle<()>>,
}

impl Handle {
    /// The bound address (ephemeral ports resolved).
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Ask the server to stop and wait for it.
    pub fn stop(mut self) {
        self.shared.begin_shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Whether the server initiated shutdown (e.g. hit `max_requests`).
    pub fn shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Wait for the server to exit on its own (`max_requests`).
    pub fn wait(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Server {
    /// Bind the listen socket, open the sharded store, and spawn the
    /// worker pool. The accept loop does not run until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Bad address, bind failure, or store-open failure (a daemon that
    /// was *asked* to persist refuses to start blind, unlike `lpatc run`
    /// which degrades to uncached).
    pub fn bind(cfg: ServerConfig) -> Result<Server, String> {
        let addr = Addr::parse(&cfg.addr)?;
        let listener = Listener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let store = match &cfg.cache_dir {
            Some(d) => {
                Some(ShardedStore::open(d, cfg.shards).map_err(|e| format!("cache dir {e}"))?)
            }
            None => None,
        };
        if let Some(dir) = &cfg.flight_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("flight dir {}: {e}", dir.display()))?;
        }
        let breaker = match cfg.isolate {
            Isolation::Process => Some(CrashBreaker::new(cfg.crash_k, cfg.crash_window)),
            Isolation::Thread => None,
        };
        let engine = Engine::new(store, cfg.default_fuel);
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.quota.clone()),
            queue: BoundedQueue::new(cfg.queue_depth),
            engine,
            breaker,
            shutdown: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            cfg,
        });
        let nworkers = shared.cfg.workers.max(1);
        if shared.cfg.isolate == Isolation::Process {
            // One pid slot per supervisor; chaos tests scrape these from
            // the Stats op to aim their kills.
            let mut pids = shared
                .engine
                .stats
                .worker_pids
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            pids.resize(nworkers, 0);
        }
        let workers = (0..nworkers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                match shared.cfg.isolate {
                    Isolation::Thread => thread::Builder::new()
                        .name(format!("lpatd-worker-{i}"))
                        .spawn(move || worker_loop(&sh))
                        .expect("spawn worker"),
                    Isolation::Process => thread::Builder::new()
                        .name(format!("lpatd-supervisor-{i}"))
                        .spawn(move || proc_worker_loop(&sh, i))
                        .expect("spawn supervisor"),
                }
            })
            .collect();
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (ephemeral ports resolved).
    pub fn local_addr(&self) -> Addr {
        self.listener.local_addr()
    }

    /// Run the accept loop on this thread until shutdown, then join
    /// workers and connection threads.
    pub fn run(self) {
        let Server {
            listener,
            shared,
            workers,
        } = self;
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        let engine = &shared.engine;
        while !shared.shutting_down() {
            // SIGTERM/SIGINT request the same drain `--max-requests`
            // takes: stop accepting, finish the queue, join everything.
            if signal::drain_requested() {
                shared.begin_shutdown();
                break;
            }
            match listener.accept() {
                Ok(conn) => {
                    engine.stats.bump(&engine.stats.conns, "serve.conns");
                    // The accept-path fault site: a panic or error while
                    // setting up THIS connection drops this connection
                    // only — the loop (and every other client) survives.
                    let setup = catch_unwind(AssertUnwindSafe(|| {
                        match faultpoint!("serve.accept") {
                            Some(FaultAction::Panic) => {
                                panic!("injected fault at site 'serve.accept'")
                            }
                            Some(FaultAction::Delay(d)) => {
                                thread::sleep(d);
                                true
                            }
                            Some(_) => false, // corrupt/io: treat as setup failure
                            None => true,
                        }
                    }));
                    match setup {
                        Ok(true) => {
                            let sh = Arc::clone(&shared);
                            conns.retain(|j| !j.is_finished());
                            match thread::Builder::new()
                                .name("lpatd-conn".into())
                                .spawn(move || connection_loop(&sh, conn))
                            {
                                Ok(j) => conns.push(j),
                                Err(_) => {
                                    engine
                                        .stats
                                        .bump(&engine.stats.accept_faults, "serve.accept_faults");
                                }
                            }
                        }
                        _ => {
                            engine
                                .stats
                                .bump(&engine.stats.accept_faults, "serve.accept_faults");
                            drop(conn);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => thread::sleep(Duration::from_millis(2)),
            }
        }
        shared.queue.shutdown();
        for j in workers {
            let _ = j.join();
        }
        for j in conns {
            let _ = j.join();
        }
    }

    /// Run the server on a background thread; the returned [`Handle`]
    /// stops it on [`Handle::stop`] or drop.
    pub fn start(self) -> Handle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let join = thread::Builder::new()
            .name("lpatd-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        Handle {
            addr,
            shared,
            join: Some(join),
        }
    }
}

/// How long a connection waits for its response beyond the request's own
/// deadline before answering `Deadline` itself (covers queue shutdown and
/// scheduling slop).
const RESPONSE_GRACE: Duration = Duration::from_millis(500);

/// Serve one connection: read frames, admit, queue, relay responses.
/// Every exit path answers or closes cleanly — the protocol has no
/// half-written frames because responses are single `write_frame` calls.
fn connection_loop(shared: &Arc<Shared>, mut conn: Conn) {
    let engine = &shared.engine;
    let _ = conn.set_read_timeout(Some(shared.cfg.idle_poll));
    loop {
        let frame = match read_frame(&mut conn, shared.cfg.max_frame) {
            Ok(f) => f,
            Err(ProtoError::Closed) => return,
            Err(ProtoError::IdleTimeout) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(e @ (ProtoError::FrameLength { .. } | ProtoError::Malformed(_))) => {
                // Hostile framing: answer once, then close — after a bad
                // length the stream offset is unknowable.
                engine
                    .stats
                    .bump(&engine.stats.decode_errors, "serve.decode_errors");
                send(&mut conn, &Response::err(ErrClass::Decode, e.to_string()));
                return;
            }
            Err(_) => return, // I/O mid-frame: nothing sane to answer onto
        };
        // Decode is total, but run it under catch_unwind anyway: a decoder
        // bug must cost one frame, not the daemon. Frame boundaries are
        // intact either way, so the connection can continue.
        let decoded = catch_unwind(AssertUnwindSafe(|| decode_request(&frame)));
        let req = match decoded {
            Ok(Ok(req)) => req,
            Ok(Err(e)) => {
                engine
                    .stats
                    .bump(&engine.stats.decode_errors, "serve.decode_errors");
                if !send(&mut conn, &Response::err(ErrClass::Decode, e.to_string())) {
                    return;
                }
                continue;
            }
            Err(_) => {
                engine
                    .stats
                    .bump(&engine.stats.panics_isolated, "serve.panics");
                engine
                    .stats
                    .bump(&engine.stats.decode_errors, "serve.decode_errors");
                if !send(
                    &mut conn,
                    &Response::err(ErrClass::Panic, "panic while decoding request"),
                ) {
                    return;
                }
                continue;
            }
        };
        let op_key = format!("op:{}", req.op.name());
        let tenant_key = format!("tenant:{}", req.tenant);
        let t0 = Instant::now();
        let resp = handle_request(shared, req);
        let latency_us = t0.elapsed().as_micros() as u64;
        {
            let mut t = engine.stats.telemetry();
            t.latency_us.record(&op_key, latency_us);
            t.latency_us.record(&tenant_key, latency_us);
        }
        let ok = send(&mut conn, &resp);
        count_response(shared, &resp);
        shared.request_completed();
        if !ok {
            return;
        }
    }
}

/// Request ids assigned by the daemon to requests that arrive without a
/// client-originated one (`request_id == 0`). Starts at 1 per daemon
/// process, so serial request sequences get deterministic ids.
static NEXT_RID: AtomicU64 = AtomicU64::new(1);

/// Admit, enqueue, and await one decoded request.
fn handle_request(shared: &Arc<Shared>, mut req: Request) -> Response {
    let engine = &shared.engine;
    engine.stats.bump(&engine.stats.requests, "serve.requests");
    if req.request_id == 0 {
        req.request_id = NEXT_RID.fetch_add(1, Ordering::Relaxed);
    }
    let rid = req.request_id;
    {
        let mut t = engine.stats.telemetry();
        t.payload_bytes.record(req.module.len() as u64);
        t.fuel.record(if req.fuel > 0 {
            req.fuel
        } else {
            shared.cfg.default_fuel
        });
    }
    let mut adm = trace::span("serve", "admission");
    adm.arg("rid", rid.to_string());
    adm.arg("op", req.op.name());
    adm.arg("tenant", req.tenant.clone());
    if req.parent_span != 0 {
        adm.arg("parent", req.parent_span.to_string());
    }
    if shared.shutting_down() {
        return Response::Busy {
            retry_after_ms: 200,
            reason: "shutting down".into(),
        };
    }
    // The breaker key is the raw payload bytes — never the parsed module;
    // the daemon must not parse a payload with a history of killing
    // workers. Payload-less ops hash to 0 and are never charged/denied.
    let payload_hash = if req.module.is_empty() {
        0
    } else {
        fnv1a64(&req.module)
    };
    if let Some(breaker) = &shared.breaker {
        // Ping/Stats answer in-daemon under process isolation: they touch
        // no guest code, and Stats must reflect the daemon's counters —
        // a worker subprocess only knows its own.
        if matches!(req.op, Op::Ping | Op::Stats) {
            return process(engine, &req, Instant::now() + Duration::from_secs(1));
        }
        if payload_hash != 0 && breaker.is_denied(payload_hash, engine.store.as_ref()) {
            engine
                .stats
                .bump(&engine.stats.quarantined, "serve.quarantined");
            return Response::err(
                ErrClass::Quarantined,
                format!("payload {payload_hash:016x} denylisted after repeated worker crashes"),
            );
        }
    }
    let inflight = match shared
        .admission
        .admit(&req.tenant, req.module.len() as u64, req.fuel)
    {
        Ok(g) => g,
        Err(e) if e.retryable() => {
            engine
                .stats
                .bump(&engine.stats.busy_tenant, "serve.busy_tenant");
            return Response::Busy {
                retry_after_ms: 50,
                reason: e.to_string(),
            };
        }
        Err(e) => {
            engine
                .stats
                .bump(&engine.stats.quota_rejected, "serve.quota_rejected");
            return Response::err(ErrClass::Quota, e.to_string());
        }
    };
    let deadline_ms = if req.deadline_ms > 0 {
        Duration::from_millis(u64::from(req.deadline_ms))
    } else {
        shared.cfg.default_deadline
    };
    let deadline = Instant::now() + deadline_ms;
    adm.arg("outcome", "admitted");
    drop(adm);
    let mut queued = trace::span("serve", "queued");
    queued.arg("rid", rid.to_string());
    let (tx, rx) = mpsc::channel();
    let job = Job {
        req,
        payload_hash,
        deadline,
        enqueued: Instant::now(),
        queued,
        tx,
        _inflight: inflight,
    };
    if shared.queue.try_push(job).is_err() {
        // The load-shedding path: the queue is full (or shutting down);
        // the job (and its in-flight slot) is dropped right here.
        engine
            .stats
            .bump(&engine.stats.shed_queue, "serve.shed_queue");
        return Response::Busy {
            retry_after_ms: 100,
            reason: "work queue full".into(),
        };
    }
    let wait = deadline.saturating_duration_since(Instant::now()) + RESPONSE_GRACE;
    match rx.recv_timeout(wait) {
        Ok(resp) => resp,
        Err(_) => Response::err(
            ErrClass::Deadline,
            "request abandoned: no response within deadline",
        ),
    }
}

/// Attribute one outgoing response in the stats.
fn count_response(shared: &Shared, resp: &Response) {
    let engine = &shared.engine;
    match resp {
        Response::Ok { .. } => engine.stats.bump(&engine.stats.ok, "serve.ok"),
        Response::Err { class, .. } => {
            engine.stats.bump(&engine.stats.errors, "serve.errors");
            match class {
                ErrClass::Deadline => engine
                    .stats
                    .bump(&engine.stats.deadline_expired, "serve.deadline_expired"),
                ErrClass::Trap => engine.stats.bump(&engine.stats.traps, "serve.traps"),
                ErrClass::Panic => engine
                    .stats
                    .bump(&engine.stats.panics_isolated, "serve.panics"),
                _ => {}
            }
        }
        Response::Busy { .. } => engine.stats.bump(&engine.stats.busy, "serve.busy"),
    }
}

/// Encode and write one response; `false` means the connection is gone.
fn send(conn: &mut Conn, resp: &Response) -> bool {
    let payload = encode_response(resp);
    write_frame(conn, &payload).is_ok() && conn.flush().is_ok()
}

/// Worker thread: pop jobs until shutdown; isolate each job's pipeline.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let Job {
            req,
            deadline,
            enqueued,
            queued,
            tx,
            ..
        } = job;
        drop(queued); // record the queue-wait span
        shared
            .engine
            .stats
            .telemetry()
            .queue_wait_us
            .record(enqueued.elapsed().as_micros() as u64);
        let mut sp = trace::span("serve", "request");
        sp.arg("rid", req.request_id.to_string());
        sp.arg("op", req.op.name());
        sp.arg("tenant", req.tenant.clone());
        // The whole pipeline for one request is one isolation domain: a
        // panic anywhere inside — parser, optimizer, VM, store — becomes
        // a structured error for THIS client; the worker survives.
        let resp = match catch_unwind(AssertUnwindSafe(|| process(&shared.engine, &req, deadline)))
        {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = panic_message(&payload);
                Response::err(ErrClass::Panic, format!("request pipeline panicked: {msg}"))
            }
        };
        sp.arg("status", resp.status_label());
        drop(sp);
        // A dead receiver means the client gave up (deadline, hangup);
        // the work is discarded and the in-flight slot frees on drop.
        let _ = tx.send(resp);
    }
}

/// Supervisor thread for one process-isolated worker slot: keep an
/// `lpatd --worker` subprocess alive, feed it jobs one at a time, and
/// absorb its deaths. A crash or watchdog kill costs the in-flight
/// client a structured error ([`ErrClass::Crashed`] / deadline), charges
/// the crash breaker, and respawns the slot with exponential backoff;
/// the daemon itself never goes down with a worker.
fn proc_worker_loop(shared: &Arc<Shared>, slot: usize) {
    let engine = &shared.engine;
    let set_pid = |pid: u64| {
        let mut pids = engine
            .stats
            .worker_pids
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(p) = pids.get_mut(slot) {
            *p = pid;
        }
    };
    let mut worker: Option<ProcWorker> = None;
    let mut consecutive: u32 = 0; // crashes since the last clean answer
    let mut ever_spawned = false;
    while let Some(job) = shared.queue.pop() {
        let Job {
            req,
            payload_hash,
            deadline,
            enqueued,
            queued,
            tx,
            ..
        } = job;
        drop(queued); // record the queue-wait span
        engine
            .stats
            .telemetry()
            .queue_wait_us
            .record(enqueued.elapsed().as_micros() as u64);
        if worker.is_none() {
            match ProcWorker::spawn(&shared.cfg, slot) {
                Ok(w) => {
                    if ever_spawned {
                        engine
                            .stats
                            .bump(&engine.stats.worker_restarts, "serve.worker_restarts");
                    }
                    ever_spawned = true;
                    set_pid(u64::from(w.pid));
                    worker = Some(w);
                }
                Err(e) => {
                    // Can't even exec the worker binary: answer this
                    // client, back off, and keep trying on later jobs.
                    let _ = tx.send(Response::err(
                        ErrClass::Internal,
                        format!("cannot spawn worker process: {e}"),
                    ));
                    thread::sleep(respawn_backoff(shared.cfg.restart_backoff, consecutive));
                    consecutive = consecutive.saturating_add(1);
                    continue;
                }
            }
        }
        let w = worker.as_mut().expect("worker spawned above");
        let mut sp = trace::span("serve", "request");
        sp.arg("rid", req.request_id.to_string());
        sp.arg("op", req.op.name());
        sp.arg("tenant", req.tenant.clone());
        if trace::clock_mode() == trace::ClockMode::Real {
            // Real pids vary run to run; the virtual-clock export must
            // stay a pure function of the request sequence.
            sp.arg("worker_pid", w.pid.to_string());
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        // Absorbed worker events are re-timed relative to dispatch start.
        let ts_base = trace::now_us();
        let (resp, died) = match w.dispatch(&req, remaining, shared.cfg.watchdog_grace) {
            Dispatch::Reply(resp, sidecar) => {
                consecutive = 0;
                if let Some(blob) = sidecar {
                    // A garbled sidecar costs the trace lane, never the
                    // response that already arrived intact.
                    let _ = trace::absorb_foreign(&blob, ts_base);
                }
                (resp, false)
            }
            Dispatch::Crashed(detail) => {
                engine
                    .stats
                    .bump(&engine.stats.worker_crashes, "serve.worker_crashes");
                charge_crash(shared, payload_hash);
                let msg = match salvage_flight(shared, slot, req.request_id) {
                    Some(note) => format!("worker died mid-request: {detail}; {note}"),
                    None => format!("worker died mid-request: {detail}"),
                };
                (Response::err(ErrClass::Crashed, msg), true)
            }
            Dispatch::Wedged => {
                // Past deadline + grace with no answer: cooperative
                // checks have failed; SIGKILL is the only deadline an
                // uncooperative pipeline respects.
                engine
                    .stats
                    .bump(&engine.stats.watchdog_kills, "serve.watchdog_kills");
                charge_crash(shared, payload_hash);
                let base = "worker exceeded its deadline and was hard-killed by the watchdog";
                let msg = match salvage_flight(shared, slot, req.request_id) {
                    Some(note) => format!("{base}; {note}"),
                    None => base.to_string(),
                };
                (Response::err(ErrClass::Deadline, msg), true)
            }
        };
        sp.arg("status", resp.status_label());
        drop(sp);
        // Answer the client before paying the respawn backoff.
        let _ = tx.send(resp);
        if died {
            if let Some(mut w) = worker.take() {
                w.reap();
            }
            set_pid(0);
            thread::sleep(respawn_backoff(shared.cfg.restart_backoff, consecutive));
            consecutive = consecutive.saturating_add(1);
        }
    }
    // Queue drained and shut down: let the worker exit on stdin EOF.
    if let Some(w) = worker.take() {
        w.shutdown();
    }
    set_pid(0);
}

/// Salvage a dead (or wedged) worker's flight-recorder spill: parse the
/// checksum-valid prefix of `slot<N>.spill`, preserve it as a standalone
/// `slot<N>-rid<R>.flight` dump, and return a diagnostic note referencing
/// it. `None` when the recorder is off or nothing salvageable exists —
/// flight records are best-effort and must never delay the client's
/// answer beyond one file read.
fn salvage_flight(shared: &Shared, slot: usize, rid: u64) -> Option<String> {
    let dir = shared.cfg.flight_dir.as_ref()?;
    let spill = dir.join(format!("slot{slot}.spill"));
    let events = trace::read_flight(&spill).ok()?;
    if events.is_empty() {
        return None;
    }
    let dump = dir.join(format!("slot{slot}-rid{rid}.flight"));
    trace::write_flight_dump(&dump, &events).ok()?;
    let engine = &shared.engine;
    engine
        .stats
        .bump(&engine.stats.flight_salvaged, "serve.flight_salvaged");
    let last = events
        .last()
        .map(|e| format!("{}.{}", e.cat, e.name))
        .unwrap_or_default();
    Some(format!(
        "flight record: {} ({} events, last {last})",
        dump.display(),
        events.len()
    ))
}

/// Charge one worker death to the crash breaker (payload-less ops are
/// never charged). A newly tripped breaker is surfaced as a trace event.
fn charge_crash(shared: &Shared, payload_hash: u64) {
    if payload_hash == 0 {
        return;
    }
    if let Some(breaker) = &shared.breaker {
        if breaker.record_crash(payload_hash, shared.engine.store.as_ref()) {
            trace::instant_args(
                "serve",
                "quarantine",
                vec![("payload", format!("{payload_hash:016x}"))],
            );
        }
    }
}

/// Best-effort extraction of a panic payload message.
#[allow(clippy::borrowed_box)]
pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Cooperative deadline check at a stage boundary. The `serve.deadline`
/// fault site can force expiry (corrupt/io), panic, or stall here.
fn check_deadline(stage: &str, deadline: Instant) -> Result<(), Response> {
    let mut forced = false;
    match faultpoint!("serve.deadline") {
        Some(FaultAction::Panic) => panic!("injected fault at site 'serve.deadline'"),
        Some(FaultAction::Delay(d)) => thread::sleep(d),
        Some(_) => forced = true,
        None => {}
    }
    if forced || Instant::now() >= deadline {
        return Err(Response::err(
            ErrClass::Deadline,
            format!("deadline expired at stage '{stage}'"),
        ));
    }
    Ok(())
}

/// Execute one request end to end against an [`Engine`]. Runs inside the
/// worker's `catch_unwind` (thread isolation) or inside an `lpatd
/// --worker` subprocess (process isolation); may panic freely.
pub(crate) fn process(engine: &Engine, req: &Request, deadline: Instant) -> Response {
    // The worker fault site, manifested before any real work.
    match faultpoint!("serve.worker") {
        Some(FaultAction::Panic) => panic!("injected fault at site 'serve.worker'"),
        Some(FaultAction::Delay(d)) => thread::sleep(d),
        Some(_) => {
            return Response::err(ErrClass::Internal, "injected worker fault");
        }
        None => {}
    }
    if let Err(resp) = check_deadline("queued", deadline) {
        return resp;
    }
    match req.op {
        Op::Ping => Response::Ok {
            exit: 0,
            insts: 0,
            cache_hit: false,
            output: b"pong".to_vec(),
            module: Vec::new(),
        },
        Op::Stats => Response::Ok {
            exit: 0,
            insts: 0,
            cache_hit: false,
            output: engine.stats.render_json().into_bytes(),
            module: Vec::new(),
        },
        Op::Compile => do_compile(req, deadline),
        Op::Run => do_run(engine, req, deadline),
        Op::Reopt => do_reopt(engine, req, deadline),
    }
}

/// Parse the request's module payload: bytecode by magic, miniC by flag,
/// textual IR otherwise — the same auto-detection as `lpatc`, minus the
/// filename heuristics (the wire has a flag instead).
fn parse_module(req: &Request) -> Result<Module, Response> {
    let name = if req.name.is_empty() {
        "module"
    } else {
        req.name.as_str()
    };
    let m = if req.module.starts_with(b"LPAT") {
        lpat_bytecode::read_module(name, &req.module)
            .map_err(|e| Response::err(ErrClass::BadModule, e.to_string()))?
    } else {
        let text = std::str::from_utf8(&req.module)
            .map_err(|_| Response::err(ErrClass::BadModule, "module payload is not UTF-8"))?;
        if req.flags & FLAG_MINIC != 0 {
            lpat_minic::compile(name, text)
                .map_err(|e| Response::err(ErrClass::BadModule, e.to_string()))?
        } else {
            lpat_asm::parse_module(name, text)
                .map_err(|e| Response::err(ErrClass::BadModule, e.to_string()))?
        }
    };
    m.verify()
        .map_err(|e| Response::err(ErrClass::BadModule, format!("verifier: {}", e[0])))?;
    Ok(m)
}

/// Run the function pipeline (and optionally the link-time pipeline) in
/// degrade mode — a crashing pass is rolled back, never fatal.
fn optimize(m: &mut Module, link_time: bool) -> Result<(), Response> {
    let mut pm = lpat_transform::function_pipeline();
    pm.degrade = true;
    let _ = pm.run(m);
    if link_time {
        let mut pm = lpat_transform::link_time_pipeline();
        pm.degrade = true;
        let _ = pm.run(m);
    }
    m.verify().map_err(|e| {
        Response::err(
            ErrClass::Internal,
            format!("verifier after optimization: {}", e[0]),
        )
    })?;
    Ok(())
}

fn do_compile(req: &Request, deadline: Instant) -> Response {
    let mut m = match parse_module(req) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_deadline("parsed", deadline) {
        return resp;
    }
    if req.flags & FLAG_OPT != 0 {
        if let Err(resp) = optimize(&mut m, true) {
            return resp;
        }
    }
    Response::Ok {
        exit: 0,
        insts: 0,
        cache_hit: false,
        output: Vec::new(),
        module: lpat_bytecode::write_module(&m),
    }
}

fn do_run(engine: &Engine, req: &Request, deadline: Instant) -> Response {
    let mut m = match parse_module(req) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_deadline("parsed", deadline) {
        return resp;
    }
    if req.flags & FLAG_OPT != 0 {
        if let Err(resp) = optimize(&mut m, false) {
            return resp;
        }
    }
    // Prefer a previously reoptimized module for these exact bytes — the
    // daemon-side half of the lifelong loop. Store failures degrade to an
    // uncached run; they never fail the request.
    let mut cache_hit = false;
    let store = engine.store.as_ref();
    if let Some(store) = store {
        let source_hash = module_hash(&m);
        if let Ok(loaded) = store.shard(source_hash).load_reopt(source_hash, &m.name) {
            if let Some(r) = loaded.value {
                m = r;
                cache_hit = true;
            }
        }
    }
    if cache_hit {
        engine
            .stats
            .bump(&engine.stats.cache_hits, "serve.cache_hits");
    } else if store.is_some() {
        engine
            .stats
            .bump(&engine.stats.cache_misses, "serve.cache_misses");
    }
    let run_hash = module_hash(&m);
    let run_store = store.map(|s| s.shard(run_hash));
    // Every daemon-side run is fuel-bounded: the request's ask, or the
    // server default — never unlimited.
    let fuel = if req.fuel > 0 {
        req.fuel
    } else {
        engine.default_fuel
    };
    let mut opts = VmOptions {
        fuel: Some(fuel),
        profile: run_store.is_some(),
        ..VmOptions::default()
    };
    opts.input.extend(req.inputs.iter().copied());
    let tiered = req.flags & FLAG_TIERED != 0;
    let mut vm = match Vm::new(&m, opts) {
        Ok(vm) => vm,
        Err(e) => return Response::err(ErrClass::BadModule, e.to_string()),
    };
    if tiered {
        if let Some(store) = run_store {
            if let Ok(loaded) = store.load_profile(run_hash) {
                if let Some(sp) = loaded.value {
                    vm.warm_start(&sp.profile);
                }
            }
        }
    }
    if let Err(resp) = check_deadline("pre-exec", deadline) {
        return resp;
    }
    // Exactly-once profile flush on EVERY exit path below — clean exit,
    // trap, deadline, even a panic unwinding through this frame — via the
    // same RAII guard `lpatc run` uses.
    let mut flush = FlushGuard::new(run_store, run_hash);
    let result = if tiered {
        vm.run_main_tiered()
    } else {
        vm.run_main()
    };
    if vm.opts.profile {
        flush.set_delta(vm.profile.clone());
    }
    vm.flush_trace();
    if let FlushOutcome::Failed(e) = flush.flush() {
        trace::counter("serve.flush_failures", 1);
        let _ = e; // this run's counts are dropped; the request still answers
    }
    let post = check_deadline("post-exec", deadline);
    match result {
        Ok(code) => {
            if let Err(resp) = post {
                return resp;
            }
            Response::Ok {
                exit: (code & 0xFF) as i32,
                insts: vm.insts_executed,
                cache_hit,
                output: vm.output.into_bytes(),
                module: Vec::new(),
            }
        }
        Err(ExecError::Exited(code)) => Response::Ok {
            exit: code & 0xFF,
            insts: vm.insts_executed,
            cache_hit,
            output: vm.output.into_bytes(),
            module: Vec::new(),
        },
        Err(e @ ExecError::Trap { .. }) => Response::err(ErrClass::Trap, e.to_string()),
    }
}

fn do_reopt(engine: &Engine, req: &Request, deadline: Instant) -> Response {
    let Some(store) = engine.store.as_ref() else {
        return Response::err(
            ErrClass::Unsupported,
            "reopt requires the daemon to run with --cache-dir",
        );
    };
    let mut m = match parse_module(req) {
        Ok(m) => m,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_deadline("parsed", deadline) {
        return resp;
    }
    let source_hash = module_hash(&m);
    let shard = store.shard(source_hash);
    let mut profile = ProfileData::default();
    let mut runs = 0u64;
    match shard.load_profile(source_hash) {
        Ok(loaded) => {
            if let Some(sp) = loaded.value {
                profile.merge_saturating(&sp.profile);
                runs += sp.runs;
            }
        }
        Err(e) => return Response::err(ErrClass::Internal, e.to_string()),
    }
    if runs == 0 {
        return Response::err(
            ErrClass::Unsupported,
            "no profile recorded for this module yet",
        );
    }
    let report = reoptimize(&mut m, &profile, &PgoOptions::default());
    if let Err(e) = m.verify() {
        return Response::err(
            ErrClass::Internal,
            format!("verifier after reopt: {}", e[0]),
        );
    }
    if let Err(resp) = check_deadline("post-exec", deadline) {
        return resp;
    }
    if let Err(e) = shard.save_reopt(source_hash, &m) {
        return Response::err(ErrClass::Internal, e.to_string());
    }
    Response::Ok {
        exit: 0,
        insts: 0,
        cache_hit: false,
        output: format!(
            "reopt: inlined {} hot sites, re-laid {} functions ({runs} runs of profile)",
            report.inlined, report.relaid
        )
        .into_bytes(),
        module: lpat_bytecode::write_module(&m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const ADD_PROG: &str = "\
define int @main() {
entry:
  %a = add int 40, 2
  ret int %a
}
";

    fn start_default() -> Handle {
        Server::bind(ServerConfig::default()).unwrap().start()
    }

    #[test]
    fn ping_and_run_roundtrip() {
        let h = start_default();
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let pong = c.request(&Request::new(Op::Ping)).unwrap();
        match pong {
            Response::Ok { ref output, .. } => assert_eq!(output, b"pong"),
            other => panic!("unexpected: {other:?}"),
        }
        let mut req = Request::new(Op::Run);
        req.module = ADD_PROG.as_bytes().to_vec();
        match c.request(&req).unwrap() {
            Response::Ok { exit, insts, .. } => {
                assert_eq!(exit, 42);
                assert!(insts > 0);
            }
            other => panic!("unexpected: {other:?}"),
        }
        h.stop();
    }

    #[test]
    fn bad_module_answers_structured_error_and_connection_survives() {
        let h = start_default();
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let mut req = Request::new(Op::Run);
        req.module = b"func @main( THIS IS NOT A PROGRAM".to_vec();
        match c.request(&req).unwrap() {
            Response::Err { class, .. } => assert_eq!(class, ErrClass::BadModule),
            other => panic!("unexpected: {other:?}"),
        }
        // Same connection still works.
        assert!(matches!(
            c.request(&Request::new(Op::Ping)).unwrap(),
            Response::Ok { .. }
        ));
        h.stop();
    }

    #[test]
    fn infinite_loop_is_fuel_bounded() {
        let cfg = ServerConfig {
            default_fuel: 10_000, // tiny budget
            ..Default::default()
        };
        let h = Server::bind(cfg).unwrap().start();
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let mut req = Request::new(Op::Run);
        req.module = b"\
define int @main() {
entry:
  br label %spin
spin:
  br label %spin
}
"
        .to_vec();
        match c.request(&req).unwrap() {
            Response::Err { class, message } => {
                assert_eq!(class, ErrClass::Trap);
                assert!(
                    message.contains("fuel") || message.contains("Fuel"),
                    "{message}"
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
        // The daemon is still alive.
        assert!(matches!(
            c.request(&Request::new(Op::Ping)).unwrap(),
            Response::Ok { .. }
        ));
        h.stop();
    }

    #[test]
    fn quota_rejection_is_deterministic() {
        let mut cfg = ServerConfig::default();
        cfg.quota.max_bytes = 16;
        let h = Server::bind(cfg).unwrap().start();
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let mut req = Request::new(Op::Run);
        req.module = vec![b'x'; 64];
        for _ in 0..3 {
            match c.request(&req).unwrap() {
                Response::Err { class, .. } => assert_eq!(class, ErrClass::Quota),
                other => panic!("unexpected: {other:?}"),
            }
        }
        h.stop();
    }

    #[test]
    fn max_requests_triggers_clean_shutdown() {
        let cfg = ServerConfig {
            max_requests: Some(1),
            ..Default::default()
        };
        let h = Server::bind(cfg).unwrap().start();
        let addr = h.addr().clone();
        let mut c = Client::connect(&addr, Duration::from_secs(5)).unwrap();
        let _ = c.request(&Request::new(Op::Ping)).unwrap();
        h.wait();
    }
}
