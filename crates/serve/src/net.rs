//! TCP / Unix-domain socket shim: one listener and one stream type that
//! both transports flow through, so the protocol and server code never
//! branch on the transport.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::proto::Addr;

/// A bound listening socket on either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener plus its socket path (removed on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind to `addr`. A pre-existing Unix socket file is removed first
    /// (the common leftover of a killed daemon).
    ///
    /// # Errors
    ///
    /// Standard I/O errors from binding.
    pub fn bind(addr: &Addr) -> std::io::Result<Listener> {
        match addr {
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            #[cfg(unix)]
            Addr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The actual bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> Addr {
        match self {
            Listener::Tcp(l) => Addr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?:?".into()),
            ),
            #[cfg(unix)]
            Listener::Unix(_, path) => Addr::Unix(path.clone()),
        }
    }

    /// Toggle non-blocking accept (the accept loop polls so shutdown is
    /// prompt without cross-thread wakeup tricks).
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection. The returned stream is switched back to
    /// blocking mode regardless of the listener's mode.
    ///
    /// # Errors
    ///
    /// Standard I/O errors (including `WouldBlock` in non-blocking mode).
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                let _ = s.set_nodelay(true);
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One connected stream on either transport.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Set the read timeout (None = block forever).
    ///
    /// # Errors
    ///
    /// Standard I/O errors.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}
