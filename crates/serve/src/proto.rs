//! The length-framed wire protocol between `lpatc remote` and `lpatd`.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by exactly that many payload bytes. The payload begins with a
//! four-byte magic (`LPRQ` for requests, `LPRS` for responses) and a
//! `u16` protocol version, so a peer speaking anything else is rejected
//! before any lengths inside the payload are trusted.
//!
//! Decoding is **total**: [`decode_request`] and [`decode_response`]
//! return a structured [`ProtoError`] on *any* input — truncated frames,
//! hostile lengths, junk magic, unknown ops, trailing garbage — and never
//! panic. The frame reader refuses lengths above the connection's
//! configured maximum before allocating, so a hostile 4 GB length field
//! costs four bytes of reading, not four gigabytes of memory. The server
//! additionally arms the `serve.decode` fault site here so CI can prove a
//! crashing or lying decoder is survived.
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! integers, length-prefixed byte strings (`u8` length for short names,
//! `u32` for payloads), no compression, no self-description. Robustness
//! reviews beat wire-format cleverness for a protocol whose peers we
//! both control.

use std::io::{Read, Write};
use std::time::Duration;

use lpat_core::fault::FaultAction;
use lpat_core::faultpoint;

/// Protocol version spoken by this build. A peer with a different version
/// is rejected at decode with [`ProtoError::Version`].
///
/// History: v1 was the original request/response protocol; v2 added the
/// distributed-tracing context (`request_id` + `parent_span`) to
/// requests. Versioning is strict equality — both peers ship from this
/// repository, so a skewed pair should fail loudly, not negotiate.
pub const PROTO_VERSION: u16 = 2;

/// Request-payload magic.
pub const MAGIC_REQUEST: [u8; 4] = *b"LPRQ";

/// Response-payload magic.
pub const MAGIC_RESPONSE: [u8; 4] = *b"LPRS";

/// Default per-frame size cap (16 MiB). Connections reject larger frames
/// before allocating.
pub const DEFAULT_MAX_FRAME: u32 = 16 << 20;

/// What the client wants done with the module it sent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; empty success response.
    Ping,
    /// Optimize the module and return its bytecode.
    Compile,
    /// Execute the module and return output + exit code.
    Run,
    /// Offline profile-guided reoptimization from the server's store.
    Reopt,
    /// Server counters as a small JSON document.
    Stats,
}

impl Op {
    fn to_byte(self) -> u8 {
        match self {
            Op::Ping => 0,
            Op::Compile => 1,
            Op::Run => 2,
            Op::Reopt => 3,
            Op::Stats => 4,
        }
    }

    fn from_byte(b: u8) -> Option<Op> {
        match b {
            0 => Some(Op::Ping),
            1 => Some(Op::Compile),
            2 => Some(Op::Run),
            3 => Some(Op::Reopt),
            4 => Some(Op::Stats),
            _ => None,
        }
    }

    /// Stable lower-case name (trace args, stats tables).
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Compile => "compile",
            Op::Run => "run",
            Op::Reopt => "reopt",
            Op::Stats => "stats",
        }
    }
}

/// Request flag: run the optimization pipeline first (`-O`).
pub const FLAG_OPT: u8 = 1 << 0;
/// Request flag: execute under the tiered engine instead of the
/// interpreter.
pub const FLAG_TIERED: u8 = 1 << 1;
/// Request flag: the module payload is miniC source, not bytecode/text IR.
pub const FLAG_MINIC: u8 = 1 << 2;

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// `FLAG_*` bits.
    pub flags: u8,
    /// Tenant identity the server accounts quotas against. The protocol
    /// trusts it (peers are authenticated by socket ownership, not by this
    /// field); an empty tenant is accounted as `"anon"`.
    pub tenant: String,
    /// Module name (diagnostics and store labels).
    pub name: String,
    /// Instruction budget for `Run` (0 = server default). Values above the
    /// tenant's fuel quota are rejected at admission.
    pub fuel: u64,
    /// Wall-clock deadline for the whole request in milliseconds
    /// (0 = server default).
    pub deadline_ms: u32,
    /// Distributed-trace request id originated by the client (0 = unset;
    /// the daemon then assigns one). All daemon and worker spans for this
    /// request carry it as a `rid` argument so one id threads the merged
    /// trace end to end.
    pub request_id: u64,
    /// Ordinal of the client-side span this request was issued under
    /// (0 = none). Purely observability metadata; the server echoes it
    /// into its spans and never interprets it.
    pub parent_span: u64,
    /// Scripted `read_int` input for `Run`.
    pub inputs: Vec<i64>,
    /// The module payload: bytecode (`LPAT` magic), textual IR, or miniC
    /// source (with [`FLAG_MINIC`]).
    pub module: Vec<u8>,
}

impl Request {
    /// A minimal request for `op` with empty payload and defaults.
    pub fn new(op: Op) -> Request {
        Request {
            op,
            flags: 0,
            tenant: String::new(),
            name: "module".into(),
            fuel: 0,
            deadline_ms: 0,
            request_id: 0,
            parent_span: 0,
            inputs: Vec::new(),
            module: Vec::new(),
        }
    }
}

/// Machine-stable failure class carried in error responses. The client
/// uses it to decide retry behavior; tests assert on it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrClass {
    /// The request frame or payload did not decode.
    Decode,
    /// The module failed to parse or verify.
    BadModule,
    /// A per-tenant quota (bytes, fuel) rejected the request at admission.
    Quota,
    /// The request's wall-clock deadline expired.
    Deadline,
    /// The worker panicked mid-request and was isolated.
    Panic,
    /// The program trapped at runtime (including fuel exhaustion).
    Trap,
    /// The operation is not available (e.g. `reopt` with no store).
    Unsupported,
    /// Anything else that went wrong server-side.
    Internal,
    /// The worker *process* serving the request died (abort, stack
    /// smash, OOM kill, SIGKILL). The request's fate is unknown; the
    /// daemon itself kept serving. Retrying the same payload may trip
    /// the crash-loop breaker.
    Crashed,
    /// The payload is denylisted: it crashed workers K times within the
    /// breaker window and is refused without being run.
    Quarantined,
}

impl ErrClass {
    /// Stable wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            ErrClass::Decode => "decode",
            ErrClass::BadModule => "bad-module",
            ErrClass::Quota => "quota",
            ErrClass::Deadline => "deadline",
            ErrClass::Panic => "panic",
            ErrClass::Trap => "trap",
            ErrClass::Unsupported => "unsupported",
            ErrClass::Internal => "internal",
            ErrClass::Crashed => "crashed",
            ErrClass::Quarantined => "quarantined",
        }
    }

    fn from_name(s: &str) -> Option<ErrClass> {
        Some(match s {
            "decode" => ErrClass::Decode,
            "bad-module" => ErrClass::BadModule,
            "quota" => ErrClass::Quota,
            "deadline" => ErrClass::Deadline,
            "panic" => ErrClass::Panic,
            "trap" => ErrClass::Trap,
            "unsupported" => ErrClass::Unsupported,
            "internal" => ErrClass::Internal,
            "crashed" => ErrClass::Crashed,
            "quarantined" => ErrClass::Quarantined,
            _ => return None,
        })
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The request completed.
    Ok {
        /// Program exit code (`Run`; 0 otherwise).
        exit: i32,
        /// Instructions executed (`Run`; 0 otherwise).
        insts: u64,
        /// Whether a cached reoptimized module served this request.
        cache_hit: bool,
        /// Program output (`Run`) or report text (`Reopt`, `Stats`).
        output: Vec<u8>,
        /// Result module bytecode (`Compile`, `Reopt`); empty otherwise.
        module: Vec<u8>,
    },
    /// The request failed; the server keeps serving.
    Err {
        /// Failure class.
        class: ErrClass,
        /// Human-readable detail.
        message: String,
    },
    /// The server shed this request under load; retry after the hint.
    Busy {
        /// Backoff hint in milliseconds.
        retry_after_ms: u32,
        /// What was saturated (`queue`, `connections`, `tenant-inflight`).
        reason: String,
    },
}

impl Response {
    /// An empty success.
    pub fn ok() -> Response {
        Response::Ok {
            exit: 0,
            insts: 0,
            cache_hit: false,
            output: Vec::new(),
            module: Vec::new(),
        }
    }

    /// An error response.
    pub fn err(class: ErrClass, message: impl Into<String>) -> Response {
        Response::Err {
            class,
            message: message.into(),
        }
    }

    /// Stable status label (`ok`, `err:<class>`, `busy`) for trace args.
    pub fn status_label(&self) -> String {
        match self {
            Response::Ok { .. } => "ok".into(),
            Response::Err { class, .. } => format!("err:{}", class.name()),
            Response::Busy { .. } => "busy".into(),
        }
    }
}

/// Why a frame or payload failed to decode or move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The read timeout expired at a frame boundary (idle connection —
    /// benign; the server re-checks shutdown and keeps waiting).
    IdleTimeout,
    /// An I/O failure mid-frame.
    Io(String),
    /// A frame length of zero or above the configured maximum.
    FrameLength {
        /// The declared length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// Structurally invalid payload (bad magic, truncation, junk).
    Malformed(String),
    /// The peer speaks a different protocol version.
    Version(u16),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::IdleTimeout => write!(f, "idle read timeout"),
            ProtoError::Io(m) => write!(f, "I/O error: {m}"),
            ProtoError::FrameLength { len, max } => {
                write!(f, "frame length {len} outside 1..={max}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed message: {m}"),
            ProtoError::Version(v) => {
                write!(f, "protocol version {v}, this build speaks {PROTO_VERSION}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

// -- framing --------------------------------------------------------------

/// Read one frame: the `u32` length, validated against `max`, then the
/// payload. A clean EOF before the first length byte is [`ProtoError::Closed`];
/// EOF anywhere later is a truncation ([`ProtoError::Io`]).
///
/// # Errors
///
/// Any framing violation; the connection should be dropped on
/// [`ProtoError::Io`] / [`ProtoError::FrameLength`] because the stream can
/// no longer be resynchronized.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Vec<u8>, ProtoError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(ProtoError::Closed),
            Ok(0) => return Err(ProtoError::Io("EOF inside frame length".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(ProtoError::IdleTimeout)
            }
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > max {
        return Err(ProtoError::FrameLength { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| ProtoError::Io(format!("EOF inside frame body: {e}")))?;
    Ok(payload)
}

/// Write one frame.
///
/// # Errors
///
/// [`ProtoError::Io`] on write failure, [`ProtoError::FrameLength`] if the
/// payload exceeds `u32::MAX` (never for messages we build).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtoError::FrameLength {
        len: u32::MAX,
        max: u32::MAX,
    })?;
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| ProtoError::Io(e.to_string()))
}

// -- cursor helpers -------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::Malformed(format!("truncated {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// `u8`-length-prefixed UTF-8 string (names, tenants, classes).
    fn str8(&mut self, what: &str) -> Result<String, ProtoError> {
        let n = self.u8(what)? as usize;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ProtoError::Malformed(format!("{what} is not UTF-8")))
    }

    /// `u32`-length-prefixed byte payload. The declared length is bounded
    /// by the frame we already accepted, so `take` catches any lie.
    fn bytes32(&mut self, what: &str) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32(what)? as usize;
        Ok(self.take(n, what)?.to_vec())
    }

    fn finish(&self, what: &str) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing byte(s) after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn push_str8(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(255);
    out.push(n as u8);
    out.extend_from_slice(&b[..n]);
}

fn push_bytes32(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

// -- request --------------------------------------------------------------

/// Serialize a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + req.module.len());
    out.extend_from_slice(&MAGIC_REQUEST);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(req.op.to_byte());
    out.push(req.flags);
    push_str8(&mut out, &req.tenant);
    push_str8(&mut out, &req.name);
    out.extend_from_slice(&req.fuel.to_le_bytes());
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.parent_span.to_le_bytes());
    out.extend_from_slice(&(req.inputs.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for v in req.inputs.iter().take(u16::MAX as usize) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    push_bytes32(&mut out, &req.module);
    out
}

/// Decode a request payload. Total: every hostile input maps to a
/// [`ProtoError`]. Carries the `serve.decode` fault site — an injected
/// `panic` genuinely panics here (the connection handler's `catch_unwind`
/// must survive it), while `corrupt`/`io` surface as decode errors.
///
/// # Errors
///
/// [`ProtoError::Malformed`] / [`ProtoError::Version`] as classified.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    match faultpoint!("serve.decode") {
        Some(FaultAction::Panic) => panic!("injected fault at site 'serve.decode'"),
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(_) => {
            return Err(ProtoError::Malformed(
                "injected fault at site 'serve.decode'".into(),
            ))
        }
        None => {}
    }
    let mut c = Cursor::new(payload);
    let magic = c.take(4, "magic")?;
    if magic != MAGIC_REQUEST {
        return Err(ProtoError::Malformed(format!(
            "bad request magic {magic:02x?}"
        )));
    }
    let version = c.u16("version")?;
    if version != PROTO_VERSION {
        return Err(ProtoError::Version(version));
    }
    let op = Op::from_byte(c.u8("op")?)
        .ok_or_else(|| ProtoError::Malformed("unknown op byte".into()))?;
    let flags = c.u8("flags")?;
    let tenant = c.str8("tenant")?;
    let name = c.str8("name")?;
    let fuel = c.u64("fuel")?;
    let deadline_ms = c.u32("deadline")?;
    let request_id = c.u64("request id")?;
    let parent_span = c.u64("parent span")?;
    let n_inputs = c.u16("input count")? as usize;
    let mut inputs = Vec::with_capacity(n_inputs.min(1024));
    for _ in 0..n_inputs {
        inputs.push(c.i64("input value")?);
    }
    let module = c.bytes32("module payload")?;
    c.finish("request")?;
    Ok(Request {
        op,
        flags,
        tenant,
        name,
        fuel,
        deadline_ms,
        request_id,
        parent_span,
        inputs,
        module,
    })
}

// -- response -------------------------------------------------------------

/// Serialize a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&MAGIC_RESPONSE);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    match resp {
        Response::Ok {
            exit,
            insts,
            cache_hit,
            output,
            module,
        } => {
            out.push(0);
            out.extend_from_slice(&exit.to_le_bytes());
            out.extend_from_slice(&insts.to_le_bytes());
            out.push(u8::from(*cache_hit));
            push_bytes32(&mut out, output);
            push_bytes32(&mut out, module);
        }
        Response::Err { class, message } => {
            out.push(1);
            push_str8(&mut out, class.name());
            push_bytes32(&mut out, message.as_bytes());
        }
        Response::Busy {
            retry_after_ms,
            reason,
        } => {
            out.push(2);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            push_str8(&mut out, reason);
        }
    }
    out
}

/// Decode a response payload. Total, like [`decode_request`].
///
/// # Errors
///
/// [`ProtoError`] as classified.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let magic = c.take(4, "magic")?;
    if magic != MAGIC_RESPONSE {
        return Err(ProtoError::Malformed(format!(
            "bad response magic {magic:02x?}"
        )));
    }
    let version = c.u16("version")?;
    if version != PROTO_VERSION {
        return Err(ProtoError::Version(version));
    }
    let resp = match c.u8("status")? {
        0 => {
            let exit = i32::from_le_bytes(c.take(4, "exit code")?.try_into().unwrap());
            let insts = c.u64("instruction count")?;
            let cache_hit = c.u8("cache flag")? != 0;
            let output = c.bytes32("output")?;
            let module = c.bytes32("module")?;
            Response::Ok {
                exit,
                insts,
                cache_hit,
                output,
                module,
            }
        }
        1 => {
            let class_name = c.str8("error class")?;
            let class = ErrClass::from_name(&class_name).ok_or_else(|| {
                ProtoError::Malformed(format!("unknown error class '{class_name}'"))
            })?;
            let message = String::from_utf8_lossy(&c.bytes32("error message")?).into_owned();
            Response::Err { class, message }
        }
        2 => {
            let retry_after_ms = c.u32("retry hint")?;
            let reason = c.str8("busy reason")?;
            Response::Busy {
                retry_after_ms,
                reason,
            }
        }
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown status byte {other}"
            )))
        }
    };
    c.finish("response")?;
    Ok(resp)
}

// -- addresses ------------------------------------------------------------

/// A parsed listen/connect address: `tcp:HOST:PORT` (or bare
/// `HOST:PORT`), or `unix:/path/to.sock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Addr {
    /// TCP socket address string (`host:port`).
    Tcp(String),
    /// Unix domain socket path.
    Unix(std::path::PathBuf),
}

impl Addr {
    /// Parse an address string.
    ///
    /// # Errors
    ///
    /// A human-readable message on empty/unsupported forms.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Addr::Unix(path.into()));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        if hostport.is_empty() || !hostport.contains(':') {
            return Err(format!(
                "bad address '{s}' (expected tcp:HOST:PORT or unix:/path)"
            ));
        }
        Ok(Addr::Tcp(hostport.to_string()))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Deterministic exponential backoff schedule shared by the client's
/// `Busy` retry loop and documented for third-party clients: attempt `n`
/// (0-based) waits `base << min(n, 6)`, capped at `cap`.
pub fn backoff_delay(base: Duration, attempt: u32, cap: Duration) -> Duration {
    let d = base * (1u32 << attempt.min(6));
    d.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            op: Op::Run,
            flags: FLAG_OPT | FLAG_TIERED,
            tenant: "tenant-a".into(),
            name: "app".into(),
            fuel: 1_000_000,
            deadline_ms: 2_500,
            request_id: 0xD15C_0BEE,
            parent_span: 7,
            inputs: vec![-1, 0, 42],
            module: b"LPAT-not-really".to_vec(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let empty = Request::new(Op::Ping);
        assert_eq!(decode_request(&encode_request(&empty)).unwrap(), empty);
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            Response::Ok {
                exit: -7,
                insts: u64::MAX,
                cache_hit: true,
                output: b"hello\n".to_vec(),
                module: vec![1, 2, 3],
            },
            Response::err(ErrClass::Trap, "trap (DivByZero): ..."),
            Response::Busy {
                retry_after_ms: 40,
                reason: "queue".into(),
            },
        ];
        for r in cases {
            assert_eq!(decode_response(&encode_response(&r)).unwrap(), r);
        }
    }

    #[test]
    fn truncation_at_every_offset_is_malformed_never_panics() {
        let full = encode_request(&sample_request());
        for cut in 0..full.len() {
            assert!(
                decode_request(&full[..cut]).is_err(),
                "decoded a truncated request at {cut} bytes"
            );
        }
        let full = encode_response(&Response::err(ErrClass::Internal, "x"));
        for cut in 0..full.len() {
            assert!(decode_response(&full[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_and_bad_magic_rejected() {
        let mut buf = encode_request(&Request::new(Op::Ping));
        buf.push(0);
        assert!(matches!(
            decode_request(&buf),
            Err(ProtoError::Malformed(_))
        ));
        let mut bad = encode_request(&Request::new(Op::Ping));
        bad[0] = b'X';
        assert!(decode_request(&bad).is_err());
        let mut ver = encode_request(&Request::new(Op::Ping));
        ver[4] = 0xFF;
        assert!(matches!(decode_request(&ver), Err(ProtoError::Version(_))));
    }

    #[test]
    fn frame_reader_rejects_hostile_lengths_before_allocating() {
        // Zero length.
        let mut z: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut z, 1024),
            Err(ProtoError::FrameLength { len: 0, .. })
        ));
        // 4 GB declared length: rejected from the 4 length bytes alone.
        let mut huge: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut huge, 1024),
            Err(ProtoError::FrameLength { .. })
        ));
        // Clean close vs truncation.
        let mut eof: &[u8] = &[];
        assert_eq!(read_frame(&mut eof, 1024), Err(ProtoError::Closed));
        let mut torn: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert!(matches!(
            read_frame(&mut torn, 1024),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"payload");
    }

    #[test]
    fn addr_parsing() {
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7878").unwrap(),
            Addr::Tcp("127.0.0.1:7878".into())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:0").unwrap(),
            Addr::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/l.sock").unwrap(),
            Addr::Unix("/tmp/l.sock".into())
        );
        assert!(Addr::parse("").is_err());
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("justahost").is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let b = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        assert_eq!(backoff_delay(b, 0, cap), Duration::from_millis(10));
        assert_eq!(backoff_delay(b, 3, cap), Duration::from_millis(80));
        assert_eq!(backoff_delay(b, 20, cap), cap);
    }
}
