//! `lpat-serve` — the fault-isolated multi-tenant compile-and-run daemon.
//!
//! The paper's lifelong model (§4.2, §3.6) has the compiler living beside
//! running programs: profiles stream in, reoptimization happens between
//! runs, and the optimizer must never take a running program down. This
//! crate is that model as a *service*: `lpatd` accepts concurrent
//! compile/run/reopt requests over a length-framed protocol, schedules
//! them onto a bounded worker pool, and isolates every request so a
//! panicking, hostile, or runaway guest is one client's structured error,
//! never the daemon's crash.
//!
//! The layers:
//!
//! - [`proto`] — the wire format: length-framed, magic/versioned, totally
//!   decoded (hostile bytes produce errors, never panics or allocations
//!   beyond the frame bound).
//! - [`admission`] — per-tenant quotas (deterministic: bytes, fuel;
//!   load-dependent: in-flight) and the bounded work queue whose
//!   `try_push` is the load-shedding point.
//! - [`shard`] — content-hash-prefix sharding of the lifelong store so
//!   concurrent tenants don't convoy on one lock file.
//! - [`server`] — accept loop, connection framing, worker pool, and the
//!   request pipeline with `catch_unwind` isolation, fuel bounds, and
//!   cooperative deadlines. Fault sites `serve.accept`, `serve.decode`,
//!   `serve.worker`, `serve.deadline` hook [`lpat_core::fault`] for the
//!   CI fault matrix.
//! - [`worker`] — the crash-only layer: `--isolate process` runs each
//!   request in a pooled `lpatd --worker` subprocess under a supervisor,
//!   so aborts, OOM kills, and `kill -9` cost one worker, not the daemon;
//!   a per-payload crash-loop breaker quarantines modules that keep
//!   killing workers.
//! - [`signal`] — dependency-free SIGTERM/SIGINT handling that turns
//!   termination signals into a graceful drain.
//! - [`client`] — connect-with-timeout, one-shot requests, and bounded
//!   jittered exponential-backoff retry of `Busy` answers.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod net;
pub mod proto;
pub mod server;
pub mod shard;
pub mod signal;
pub mod worker;

pub use admission::{Admission, AdmitError, BoundedQueue, InflightGuard, TenantQuota};
pub use client::{Client, RetryPolicy};
pub use proto::{
    backoff_delay, decode_request, decode_response, encode_request, encode_response, read_frame,
    write_frame, Addr, ErrClass, Op, ProtoError, Request, Response, DEFAULT_MAX_FRAME, FLAG_MINIC,
    FLAG_OPT, FLAG_TIERED,
};
pub use server::{Engine, Handle, Server, ServerConfig, ServerStats};
pub use shard::ShardedStore;
pub use worker::{run_worker_stdio, Isolation};
