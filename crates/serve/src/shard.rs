//! Content-hash-prefix sharding over the lifelong store.
//!
//! The store (PR 3) serializes writers on one directory-wide lock file —
//! correct for the single-program `lpatc` lifecycle, but a convoy under a
//! multi-tenant daemon where dozens of unrelated modules flush profiles
//! concurrently. A [`ShardedStore`] splits one cache directory into
//! `shard-XX/` subdirectories addressed by the top byte of the module's
//! content hash, so requests for different modules land on different lock
//! files with probability `1 - 1/N` and never convoy on one lock, while
//! requests for the *same* module still serialize on the same shard —
//! which is exactly the ordering the saturating profile merge needs.
//!
//! Every shard is an ordinary [`Store`], so all of PR 3's machinery —
//! checksummed containers, atomic writes, quarantine recovery, the
//! injectable-clock exponential backoff — applies per shard unchanged, and
//! an `lpatc run --cache-dir <dir>/shard-07` pointed at a single shard
//! reads the daemon's artifacts with the stock tooling.

use std::path::{Path, PathBuf};

use lpat_vm::{Store, StoreError};

/// A fixed set of [`Store`] shards under one root directory.
pub struct ShardedStore {
    root: PathBuf,
    shards: Vec<Store>,
}

impl ShardedStore {
    /// Open (creating if needed) `n` shards under `root`. `n` is clamped
    /// to `1..=256` — the shard index is the top byte of the content hash,
    /// reduced mod `n`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if any shard directory cannot be created.
    pub fn open(root: impl Into<PathBuf>, n: u32) -> Result<ShardedStore, StoreError> {
        let root = root.into();
        let n = n.clamp(1, 256);
        let mut shards = Vec::with_capacity(n as usize);
        for i in 0..n {
            shards.push(Store::open(root.join(format!("shard-{i:02x}")))?);
        }
        Ok(ShardedStore { root, shards })
    }

    /// The root cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a content hash lives in: the hash's top byte — the
    /// first two hex characters of the key every artifact file is named
    /// by — reduced mod the shard count.
    pub fn shard_index(&self, module_hash: u64) -> usize {
        ((module_hash >> 56) as usize) % self.shards.len()
    }

    /// The [`Store`] holding all artifacts for `module_hash`.
    pub fn shard(&self, module_hash: u64) -> &Store {
        &self.shards[self.shard_index(module_hash)]
    }

    /// Iterate all shards (stats, GC sweeps, tests).
    pub fn shards(&self) -> impl Iterator<Item = &Store> {
        self.shards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lpat-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn hashes_spread_and_route_stably() {
        let s = ShardedStore::open(tmpdir("route"), 16).unwrap();
        assert_eq!(s.shard_count(), 16);
        // Same hash always routes to the same shard.
        let h = 0xAB12_3456_789A_BCDEu64;
        assert_eq!(s.shard_index(h), s.shard_index(h));
        assert_eq!(s.shard_index(h), 0xAB % 16);
        // Different top bytes land on different shards.
        assert_ne!(s.shard_index(0x01u64 << 56), s.shard_index(0x02u64 << 56));
        // Low bits do not affect routing (prefix sharding).
        assert_eq!(s.shard_index(h), s.shard_index(h ^ 0xFFFF));
    }

    #[test]
    fn shards_have_independent_lock_files() {
        let s = ShardedStore::open(tmpdir("locks"), 4).unwrap();
        // Hold shard 0's lock; shard 1 must still be acquirable instantly.
        let g0 = s.shards().next().unwrap().lock().unwrap();
        let h_shard1 = 0x01u64 << 56;
        let g1 = s.shard(h_shard1).lock().expect("no cross-shard convoy");
        drop(g1);
        drop(g0);
    }

    #[test]
    fn clamps_shard_count() {
        assert_eq!(
            ShardedStore::open(tmpdir("c0"), 0).unwrap().shard_count(),
            1
        );
        assert_eq!(
            ShardedStore::open(tmpdir("c9"), 10_000)
                .unwrap()
                .shard_count(),
            256
        );
    }
}
