//! Client side of the daemon protocol: connect with a timeout, send one
//! request per call, and optionally retry `Busy` answers with bounded
//! exponential backoff.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::net::Conn;
use crate::proto::{
    backoff_delay, decode_response, encode_request, read_frame, write_frame, Addr, ProtoError,
    Request, Response, DEFAULT_MAX_FRAME,
};

/// How a client retries `Busy` responses.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
        }
    }
}

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection).
pub struct Client {
    conn: Conn,
    max_frame: u32,
}

impl Client {
    /// Connect to `addr`, bounding TCP connection establishment by
    /// `timeout` (Unix sockets connect synchronously; the timeout bounds
    /// name resolution there too, trivially).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on resolution/connect failure or timeout.
    pub fn connect(addr: &Addr, timeout: Duration) -> Result<Client, ProtoError> {
        let conn = match addr {
            Addr::Tcp(hp) => {
                let mut last = None;
                let addrs = hp
                    .to_socket_addrs()
                    .map_err(|e| ProtoError::Io(format!("resolve {hp}: {e}")))?;
                let mut stream = None;
                for sa in addrs {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                let s = stream.ok_or_else(|| {
                    ProtoError::Io(format!(
                        "connect {hp}: {}",
                        last.map(|e| e.to_string())
                            .unwrap_or_else(|| "no addresses".into())
                    ))
                })?;
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }
            #[cfg(unix)]
            Addr::Unix(path) => {
                let s = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| ProtoError::Io(format!("connect {}: {e}", path.display())))?;
                Conn::Unix(s)
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => {
                return Err(ProtoError::Io(
                    "unix sockets are not available on this platform".into(),
                ))
            }
        };
        Ok(Client {
            conn,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Send one request and wait for its response.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] from framing, I/O, or response decoding.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.conn, &encode_request(req))?;
        self.conn
            .flush()
            .map_err(|e| ProtoError::Io(e.to_string()))?;
        let frame = read_frame(&mut self.conn, self.max_frame)?;
        decode_response(&frame)
    }

    /// Send a request, retrying `Busy` responses per `policy`. Each retry
    /// waits the larger of the server's `retry_after_ms` hint and the
    /// policy's exponential backoff — the server knows its load, the
    /// client knows its patience; respect both.
    ///
    /// # Errors
    ///
    /// Protocol errors propagate immediately; exhausting `max_attempts`
    /// returns the final `Busy` response (an `Ok` at the protocol level —
    /// the server answered, it just declined).
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ProtoError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = self.request(req)?;
        for attempt in 0..attempts.saturating_sub(1) {
            let Response::Busy { retry_after_ms, .. } = last else {
                return Ok(last);
            };
            let hinted = Duration::from_millis(u64::from(retry_after_ms));
            let backoff = backoff_delay(policy.base, attempt, policy.cap);
            std::thread::sleep(hinted.max(backoff));
            last = self.request(req)?;
        }
        Ok(last)
    }
}
