//! Client side of the daemon protocol: connect with a timeout, send one
//! request per call, and optionally retry `Busy` answers with bounded
//! exponential backoff.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::net::Conn;
use crate::proto::{
    backoff_delay, decode_response, encode_request, read_frame, write_frame, Addr, ProtoError,
    Request, Response, DEFAULT_MAX_FRAME,
};

/// How a client retries `Busy` responses.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed. `None` derives one from the process id and an
    /// in-process counter; fix it for reproducible retry timing in
    /// tests. Jitter de-synchronizes clients that all got shed by the
    /// same overload spike, so they don't stampede back in lockstep.
    pub seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
            seed: None,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), given the
    /// server's `retry_after` hint: the larger of hint and exponential
    /// backoff, stretched by up to +50% of deterministic SplitMix64
    /// jitter drawn from `seed`.
    pub fn delay(&self, attempt: u32, hinted: Duration, seed: u64) -> Duration {
        let backoff = backoff_delay(self.base, attempt, self.cap);
        let d = hinted.max(backoff);
        // Uniform in [d, d + d/2): enough spread to break retry
        // convoys, never shorter than what the server asked for.
        let r = splitmix64(seed.wrapping_add(u64::from(attempt)));
        let extra_ns = (d.as_nanos() as u64 / 2)
            .checked_mul(r >> 32)
            .map(|x| x >> 32);
        d + Duration::from_nanos(extra_ns.unwrap_or(0))
    }
}

/// SplitMix64: a tiny, high-quality mixer — one multiply-xor-shift chain
/// per draw, no state beyond the input. Plenty for retry jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-process counter so two retry loops in one process jitter
/// differently even with identical policies.
fn derived_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64((u64::from(std::process::id()) << 32) | n)
}

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection).
pub struct Client {
    conn: Conn,
    max_frame: u32,
}

impl Client {
    /// Connect to `addr`, bounding TCP connection establishment by
    /// `timeout` (Unix sockets connect synchronously; the timeout bounds
    /// name resolution there too, trivially).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on resolution/connect failure or timeout.
    pub fn connect(addr: &Addr, timeout: Duration) -> Result<Client, ProtoError> {
        let conn = match addr {
            Addr::Tcp(hp) => {
                let mut last = None;
                let addrs = hp
                    .to_socket_addrs()
                    .map_err(|e| ProtoError::Io(format!("resolve {hp}: {e}")))?;
                let mut stream = None;
                for sa in addrs {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                let s = stream.ok_or_else(|| {
                    ProtoError::Io(format!(
                        "connect {hp}: {}",
                        last.map(|e| e.to_string())
                            .unwrap_or_else(|| "no addresses".into())
                    ))
                })?;
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }
            #[cfg(unix)]
            Addr::Unix(path) => {
                let s = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| ProtoError::Io(format!("connect {}: {e}", path.display())))?;
                Conn::Unix(s)
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => {
                return Err(ProtoError::Io(
                    "unix sockets are not available on this platform".into(),
                ))
            }
        };
        Ok(Client {
            conn,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Send one request and wait for its response.
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`] from framing, I/O, or response decoding.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.conn, &encode_request(req))?;
        self.conn
            .flush()
            .map_err(|e| ProtoError::Io(e.to_string()))?;
        let frame = read_frame(&mut self.conn, self.max_frame)?;
        decode_response(&frame)
    }

    /// Send a request, retrying `Busy` responses per `policy`. Each retry
    /// waits the larger of the server's `retry_after_ms` hint and the
    /// policy's exponential backoff — the server knows its load, the
    /// client knows its patience; respect both — plus up to +50%
    /// SplitMix64 jitter so shed clients don't return in lockstep.
    ///
    /// # Errors
    ///
    /// Protocol errors propagate immediately; exhausting `max_attempts`
    /// returns the final `Busy` response (an `Ok` at the protocol level —
    /// the server answered, it just declined).
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ProtoError> {
        let attempts = policy.max_attempts.max(1);
        let seed = policy.seed.unwrap_or_else(derived_seed);
        let mut last = self.request(req)?;
        for attempt in 0..attempts.saturating_sub(1) {
            let Response::Busy { retry_after_ms, .. } = last else {
                return Ok(last);
            };
            let hinted = Duration::from_millis(u64::from(retry_after_ms));
            let delay = policy.delay(attempt, hinted, seed);
            // Surfaced as a trace instant so client-side tail latency is
            // attributable to backoff, not mistaken for server time.
            lpat_core::trace::instant_args(
                "serve.client",
                "retry",
                vec![
                    ("attempt", (attempt + 1).to_string()),
                    ("delay_ms", delay.as_millis().to_string()),
                    ("hint_ms", u64::from(retry_after_ms).to_string()),
                    ("rid", req.request_id.to_string()),
                ],
            );
            std::thread::sleep(delay);
            last = self.request(req)?;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_delay_is_deterministic_bounded_and_spread() {
        let policy = RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        let hint = Duration::from_millis(50);
        // Deterministic in (attempt, hint, seed).
        assert_eq!(policy.delay(0, hint, 42), policy.delay(0, hint, 42));
        // Never below the un-jittered floor, never 1.5x past it.
        for seed in 0..64u64 {
            for attempt in 0..4 {
                let floor = backoff_delay(policy.base, attempt, policy.cap).max(hint);
                let d = policy.delay(attempt, hint, seed);
                assert!(
                    d >= floor,
                    "attempt {attempt} seed {seed}: {d:?} < {floor:?}"
                );
                assert!(
                    d <= floor + floor / 2 + Duration::from_nanos(1),
                    "attempt {attempt} seed {seed}: {d:?} too large"
                );
            }
        }
        // Different seeds actually spread (not all equal).
        let spread: std::collections::HashSet<Duration> =
            (0..16).map(|s| policy.delay(0, hint, s)).collect();
        assert!(spread.len() > 8, "jitter barely varies: {spread:?}");
        // The server's hint still dominates a small backoff.
        let big_hint = Duration::from_secs(2);
        assert!(policy.delay(0, big_hint, 7) >= big_hint);
    }
}
