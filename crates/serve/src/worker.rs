//! Process-isolated workers: the supervision layer behind
//! `lpatd --isolate process`.
//!
//! The thread-pool isolation in [`crate::server`] is `catch_unwind`-deep:
//! it absorbs panics, but an abort, stack smash, OOM kill, or `kill -9`
//! still takes the whole daemon down. This module adds the missing layer
//! of the supervision tree. Each worker *slot* is a supervisor thread
//! that re-execs the daemon binary as `lpatd --worker` — a subprocess
//! speaking the existing LPRQ/LPRS framing over its inherited
//! stdin/stdout pipes — and feeds it one request at a time:
//!
//! - a worker that **answers** delivers its response frame to the waiting
//!   client, exactly as a thread worker would;
//! - a worker that **dies** mid-request (any exit, any signal) costs that
//!   one client a structured [`ErrClass::Crashed`] response; the
//!   supervisor reaps the corpse and respawns the slot with exponential
//!   backoff (consecutive crashes back off, a success resets);
//! - a worker that **wedges** — no answer by the request's deadline plus
//!   [`crate::server::ServerConfig::watchdog_grace`] — is hard-killed
//!   (SIGKILL; cooperative deadline checks cannot stop a runaway native
//!   path), answered as [`ErrClass::Deadline`], and the slot respawns.
//!
//! On top sits the crash-loop circuit breaker ([`CrashBreaker`]): every
//! crash or watchdog kill is charged to the FNV-1a hash of the raw
//! request payload (never the parsed module — the daemon must not parse
//! a payload that kills workers). K strikes inside the breaker window
//! denylist the hash: subsequent requests answer
//! [`ErrClass::Quarantined`] instantly, without burning a worker. The
//! denylist is persisted through [`lpat_vm::store::DenyRecord`]s in the
//! lifelong store, so a crash-looping module stays quarantined across
//! daemon restarts.

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime};

use crate::proto::{
    backoff_delay, decode_request, decode_response, encode_request, encode_response, read_frame,
    write_frame, ErrClass, ProtoError, Request, Response,
};
use crate::server::{panic_message, process, Engine, ServerConfig};
use crate::shard::ShardedStore;
use lpat_core::trace;
use lpat_vm::store::DenyRecord;

/// Where request pipelines execute.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Isolation {
    /// In-process worker threads under `catch_unwind` (the PR-7 model):
    /// cheapest, absorbs panics, dies with aborts.
    #[default]
    Thread,
    /// Pooled `lpatd --worker` subprocesses under a supervisor: absorbs
    /// aborts, stack overflows, OOM kills, and `kill -9`.
    Process,
}

impl Isolation {
    /// Parse the `--isolate` flag value.
    ///
    /// # Errors
    ///
    /// A human-readable message for anything but `thread` / `process`.
    pub fn parse(s: &str) -> Result<Isolation, String> {
        match s {
            "thread" => Ok(Isolation::Thread),
            "process" => Ok(Isolation::Process),
            other => Err(format!("bad isolation '{other}' (thread, process)")),
        }
    }
}

/// Upper bound on supervisor respawn backoff regardless of base.
const RESPAWN_BACKOFF_CAP: Duration = Duration::from_secs(5);
/// How long a graceful shutdown waits for a worker to exit on stdin EOF
/// before hard-killing it.
const SHUTDOWN_PATIENCE: Duration = Duration::from_secs(2);

/// Outcome of handing one request to a worker process.
pub(crate) enum Dispatch {
    /// The worker answered with this response; when worker-side tracing
    /// is on, the second field carries the sidecar frame with the
    /// worker's serialized trace buffer for this request.
    Reply(Response, Option<Vec<u8>>),
    /// The worker process died before answering (exit, abort, signal).
    Crashed(String),
    /// The worker blew the deadline plus the watchdog grace; the caller
    /// must hard-kill it.
    Wedged,
}

/// One pooled worker subprocess plus the reader thread that pumps its
/// stdout frames into a channel (so the supervisor can time out a read
/// without platform-specific pipe polling).
pub(crate) struct ProcWorker {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
    rx: mpsc::Receiver<Vec<u8>>,
    reader: Option<thread::JoinHandle<()>>,
    /// OS pid, for stats (and for chaos tests to `kill -9`).
    pub(crate) pid: u32,
    /// Whether this worker was spawned with `--trace-clock` and therefore
    /// follows every response frame with a trace sidecar frame.
    ships_trace: bool,
}

impl ProcWorker {
    /// Re-exec this binary as `lpatd --worker` with pipes on
    /// stdin/stdout. Stderr is inherited: a worker's dying words (panic
    /// messages, abort notices) belong in the daemon's log. `slot` names
    /// this supervisor's flight-recorder spill file.
    pub(crate) fn spawn(cfg: &ServerConfig, slot: usize) -> std::io::Result<ProcWorker> {
        let exe = match &cfg.worker_cmd {
            Some(p) => p.clone(),
            None => std::env::current_exe()?,
        };
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("--worker");
        cmd.arg("--default-fuel").arg(cfg.default_fuel.to_string());
        cmd.arg("--max-frame-bytes").arg(cfg.max_frame.to_string());
        if let Some(dir) = &cfg.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
            cmd.arg("--shards").arg(cfg.shards.to_string());
        }
        if let Some(mode) = cfg.worker_trace {
            cmd.arg("--trace-clock").arg(match mode {
                lpat_core::trace::ClockMode::Virtual => "virtual",
                lpat_core::trace::ClockMode::Real => "real",
            });
        }
        if let Some(dir) = &cfg.flight_dir {
            cmd.arg("--flight-file")
                .arg(dir.join(format!("slot{slot}.spill")));
        }
        cmd.args(&cfg.worker_args);
        cmd.stdin(std::process::Stdio::piped());
        cmd.stdout(std::process::Stdio::piped());
        cmd.stderr(std::process::Stdio::inherit());
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let pid = child.id();
        let (tx, rx) = mpsc::channel();
        let max_frame = cfg.max_frame;
        let reader = thread::Builder::new()
            .name(format!("lpatd-reader-{pid}"))
            .spawn(move || {
                // Frames flow until the pipe closes (worker death or
                // clean EOF exit); either way the channel disconnects and
                // the supervisor sees it as recv failure.
                while let Ok(frame) = read_frame(&mut stdout, max_frame) {
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
            })?;
        Ok(ProcWorker {
            child,
            stdin: Some(stdin),
            rx,
            reader: Some(reader),
            pid,
            ships_trace: cfg.worker_trace.is_some(),
        })
    }

    /// Hand one request to the worker and wait for its answer, the
    /// watchdog timeout, or its death. `remaining` is the request's
    /// remaining wall-clock budget; the worker sees it as its own
    /// deadline, and the supervisor waits `remaining + grace` before
    /// declaring a wedge.
    pub(crate) fn dispatch(
        &mut self,
        req: &Request,
        remaining: Duration,
        grace: Duration,
    ) -> Dispatch {
        let mut fwd = req.clone();
        fwd.deadline_ms = u32::try_from(remaining.as_millis())
            .unwrap_or(u32::MAX)
            .max(1);
        let frame = encode_request(&fwd);
        let Some(stdin) = self.stdin.as_mut() else {
            return Dispatch::Crashed("worker stdin already closed".into());
        };
        if write_frame(stdin, &frame).is_err() || stdin.flush().is_err() {
            // EPIPE: the worker died between requests.
            return Dispatch::Crashed("write to worker failed (EPIPE)".into());
        }
        match self.rx.recv_timeout(remaining + grace) {
            Ok(frame) => match decode_response(&frame) {
                Ok(resp) => {
                    // A tracing worker writes its sidecar frame back to
                    // back with the response; a worker that dies (or
                    // stalls) in between forfeits the trace, never the
                    // answer that already arrived intact.
                    let sidecar = if self.ships_trace {
                        self.rx
                            .recv_timeout(grace.max(Duration::from_millis(100)))
                            .ok()
                    } else {
                        None
                    };
                    Dispatch::Reply(resp, sidecar)
                }
                Err(e) => Dispatch::Crashed(format!("garbled worker response: {e}")),
            },
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let detail = match self.child.try_wait() {
                    Ok(Some(status)) => format!("worker exited: {status}"),
                    _ => "worker pipe closed".into(),
                };
                Dispatch::Crashed(detail)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Dispatch::Wedged,
        }
    }

    /// Hard-kill (SIGKILL) and reap the worker. Used for wedges and for
    /// post-crash cleanup; safe to call on an already-dead child.
    pub(crate) fn reap(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(j) = self.reader.take() {
            let _ = j.join();
        }
    }

    /// Graceful shutdown: close stdin so the worker exits on EOF, give it
    /// [`SHUTDOWN_PATIENCE`], then hard-kill whatever is left.
    pub(crate) fn shutdown(mut self) {
        drop(self.stdin.take());
        let start = Instant::now();
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if start.elapsed() < SHUTDOWN_PATIENCE => {
                    thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    break;
                }
            }
        }
        if let Some(j) = self.reader.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ProcWorker {
    fn drop(&mut self) {
        // Backstop for abnormal supervisor exits: never leak a child.
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(j) = self.reader.take() {
            let _ = j.join();
        }
    }
}

// -- crash-loop circuit breaker -------------------------------------------

struct BreakerEntry {
    count: u32,
    window_start: Instant,
    first_unix_ms: u64,
    denied: bool,
}

/// Per-payload-hash crash accounting: K strikes within `window` denylist
/// the hash. State is seeded from (and persisted to) the lifelong store's
/// deny records, so quarantine survives daemon restarts; persistence is
/// best-effort — a store failure never blocks the in-memory breaker.
pub(crate) struct CrashBreaker {
    k: u32,
    window: Duration,
    entries: Mutex<HashMap<u64, BreakerEntry>>,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl CrashBreaker {
    pub(crate) fn new(k: u32, window: Duration) -> CrashBreaker {
        CrashBreaker {
            k: k.max(1),
            window,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Seed the entry for `hash` from the persisted deny record (once per
    /// hash per daemon life). A persisted denial is authoritative; a
    /// persisted strike count only carries over while still inside the
    /// breaker window.
    fn entry<'a>(
        &self,
        map: &'a mut HashMap<u64, BreakerEntry>,
        hash: u64,
        store: Option<&ShardedStore>,
    ) -> &'a mut BreakerEntry {
        map.entry(hash).or_insert_with(|| {
            let rec = store.and_then(|s| s.shard(hash).load_deny(hash));
            let now = Instant::now();
            match rec {
                Some(r) => {
                    let fresh =
                        unix_ms().saturating_sub(r.last_unix_ms) <= self.window.as_millis() as u64;
                    BreakerEntry {
                        count: if fresh { r.count } else { 0 },
                        window_start: now,
                        first_unix_ms: r.first_unix_ms,
                        denied: r.denied,
                    }
                }
                None => BreakerEntry {
                    count: 0,
                    window_start: now,
                    first_unix_ms: 0,
                    denied: false,
                },
            }
        })
    }

    /// Is this payload hash denylisted?
    pub(crate) fn is_denied(&self, hash: u64, store: Option<&ShardedStore>) -> bool {
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        self.entry(&mut map, hash, store).denied
    }

    /// Charge one worker crash to `hash`. Returns `true` when this strike
    /// trips the breaker (K reached inside the window).
    pub(crate) fn record_crash(&self, hash: u64, store: Option<&ShardedStore>) -> bool {
        let now_ms = unix_ms();
        let (rec, newly) = {
            let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            let ent = self.entry(&mut map, hash, store);
            if ent.window_start.elapsed() > self.window {
                // The previous strikes aged out: a fresh window starts
                // with this crash.
                ent.count = 0;
                ent.window_start = Instant::now();
            }
            ent.count = ent.count.saturating_add(1);
            if ent.first_unix_ms == 0 {
                ent.first_unix_ms = now_ms;
            }
            let newly = !ent.denied && ent.count >= self.k;
            if newly {
                ent.denied = true;
            }
            (
                DenyRecord {
                    hash,
                    count: ent.count,
                    denied: ent.denied,
                    first_unix_ms: ent.first_unix_ms,
                    last_unix_ms: now_ms,
                },
                newly,
            )
        };
        // Persist outside the map lock; every strike is recorded so the
        // count survives even a daemon crash between strikes.
        if let Some(s) = store {
            let _ = s.shard(hash).save_deny(&rec);
        }
        newly
    }
}

// -- worker-process main loop ---------------------------------------------

/// The `lpatd --worker` main loop: read request frames from stdin,
/// execute each through the same [`process`] pipeline the thread pool
/// uses (still under `catch_unwind` — a plain panic should cost one
/// *request*, not one worker process), write response frames to stdout.
/// Exits 0 on stdin EOF (the supervisor's graceful drain signal).
///
/// With `trace_clock` set the worker runs one fresh trace session per
/// request — ordinals and timestamps restart at zero, so the recorded
/// buffer is a pure function of the request, independent of how many
/// workers the daemon pools. When `ships_trace` is also set, every
/// response frame is followed by a sidecar frame carrying the serialized
/// buffer ([`lpat_core::trace::encode_wire_trace`]) for the daemon to
/// absorb as this process's lane. Enabling the session without shipping
/// is how the flight recorder observes events on its own
/// (`--flight-file` without `--trace-clock`).
///
/// Stdout carries nothing but frames: the daemon's startup line, logs,
/// and panic messages all go to stderr.
pub fn run_worker_stdio(
    engine: &Engine,
    max_frame: u32,
    default_deadline: Duration,
    trace_clock: Option<trace::ClockMode>,
    ships_trace: bool,
) -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    loop {
        let frame = match read_frame(&mut input, max_frame) {
            Ok(f) => f,
            Err(ProtoError::Closed) => return 0,
            Err(_) => return 1,
        };
        // The session starts before decode so the sidecar framing stays
        // in lockstep with responses even on a decode error (the sidecar
        // is then simply empty).
        if let Some(mode) = trace_clock {
            trace::enable(mode);
        }
        let resp = match decode_request(&frame) {
            Ok(req) => {
                // Recorded first thing so a mid-request kill always
                // leaves at least one event in the flight ring.
                trace::instant_args(
                    "serve.worker",
                    "request.begin",
                    vec![
                        ("op", req.op.name().to_string()),
                        ("rid", req.request_id.to_string()),
                    ],
                );
                let budget = if req.deadline_ms > 0 {
                    Duration::from_millis(u64::from(req.deadline_ms))
                } else {
                    default_deadline
                };
                let deadline = Instant::now() + budget;
                match catch_unwind(AssertUnwindSafe(|| process(engine, &req, deadline))) {
                    Ok(resp) => resp,
                    Err(payload) => Response::err(
                        ErrClass::Panic,
                        format!("request pipeline panicked: {}", panic_message(&payload)),
                    ),
                }
            }
            Err(e) => Response::err(ErrClass::Decode, e.to_string()),
        };
        let sidecar = if trace_clock.is_some() {
            let data = trace::drain();
            trace::disable();
            ships_trace.then(|| trace::encode_wire_trace(&data, std::process::id()))
        } else {
            None
        };
        if write_frame(&mut output, &encode_response(&resp)).is_err() || output.flush().is_err() {
            // The supervisor is gone; nothing left to serve.
            return 0;
        }
        if let Some(blob) = sidecar {
            if write_frame(&mut output, &blob).is_err() || output.flush().is_err() {
                return 0;
            }
        }
    }
}

// -- supervisor glue used by server.rs ------------------------------------

/// Exponential backoff for respawning a crash-looping worker slot.
pub(crate) fn respawn_backoff(base: Duration, consecutive: u32) -> Duration {
    backoff_delay(base, consecutive, RESPAWN_BACKOFF_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_parses() {
        assert_eq!(Isolation::parse("thread"), Ok(Isolation::Thread));
        assert_eq!(Isolation::parse("process"), Ok(Isolation::Process));
        assert!(Isolation::parse("vm").is_err());
    }

    #[test]
    fn breaker_trips_at_k_within_window() {
        let b = CrashBreaker::new(3, Duration::from_secs(60));
        assert!(!b.is_denied(7, None));
        assert!(!b.record_crash(7, None));
        assert!(!b.record_crash(7, None));
        assert!(!b.is_denied(7, None), "two strikes: still allowed");
        assert!(b.record_crash(7, None), "third strike trips");
        assert!(b.is_denied(7, None));
        // Other hashes are unaffected.
        assert!(!b.is_denied(8, None));
        // Further strikes report already-tripped, not newly-tripped.
        assert!(!b.record_crash(7, None));
    }

    #[test]
    fn breaker_window_expiry_resets_the_count() {
        let b = CrashBreaker::new(2, Duration::ZERO); // every strike ages out
        assert!(!b.record_crash(9, None));
        assert!(!b.record_crash(9, None), "window ZERO: counts never stack");
        assert!(!b.is_denied(9, None));
    }

    #[test]
    fn breaker_persists_and_reloads_denials() {
        let dir = std::env::temp_dir().join(format!("lpat-breaker-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ShardedStore::open(&dir, 2).unwrap();
        let b = CrashBreaker::new(2, Duration::from_secs(300));
        assert!(!b.record_crash(0xBAD, Some(&store)));
        assert!(b.record_crash(0xBAD, Some(&store)));
        assert!(b.is_denied(0xBAD, Some(&store)));
        // A brand-new breaker (daemon restart) sees the persisted denial.
        let b2 = CrashBreaker::new(2, Duration::from_secs(300));
        assert!(b2.is_denied(0xBAD, Some(&store)));
        assert!(!b2.is_denied(0xF00D, Some(&store)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn respawn_backoff_grows_and_caps() {
        let base = Duration::from_millis(50);
        assert_eq!(respawn_backoff(base, 0), base);
        assert_eq!(respawn_backoff(base, 1), base * 2);
        assert!(respawn_backoff(base, 30) <= RESPAWN_BACKOFF_CAP);
    }
}
