//! Admission control: per-tenant quotas and the bounded work queue.
//!
//! Nothing past this module is allowed to allocate unbounded memory on
//! behalf of a client. A request is admitted only if
//!
//! 1. its payload is within the tenant's byte quota and its fuel ask is
//!    within the tenant's fuel quota (violations are *deterministic* —
//!    the same request is rejected every time, with [`crate::proto::ErrClass::Quota`]);
//! 2. the tenant's in-flight count is below its cap (violations are
//!    *load-dependent* and answered with `Busy`, inviting a retry); and
//! 3. the bounded work queue has a free slot (otherwise `Busy` — the
//!    load-shedding path: the queue never grows, memory never does).
//!
//! In-flight accounting is RAII: an [`InflightGuard`] decrements its
//! tenant's count on drop, so a panicking worker or an abandoned
//! connection can never leak a quota slot.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Per-tenant resource limits, enforced at admission.
#[derive(Clone, Debug)]
pub struct TenantQuota {
    /// Maximum requests a tenant may have in flight (queued + running).
    pub max_inflight: u32,
    /// Maximum request payload bytes.
    pub max_bytes: u64,
    /// Maximum fuel a single request may ask for.
    pub max_fuel: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_inflight: 8,
            max_bytes: 4 << 20,
            max_fuel: 1_000_000_000,
        }
    }
}

/// Why admission refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Payload larger than the tenant's byte quota (deterministic).
    Bytes {
        /// Request payload size.
        got: u64,
        /// The quota it violated.
        max: u64,
    },
    /// Fuel ask above the tenant's fuel quota (deterministic).
    Fuel {
        /// Requested fuel.
        got: u64,
        /// The quota it violated.
        max: u64,
    },
    /// Tenant already at its in-flight cap (retryable).
    Inflight {
        /// Current in-flight count.
        current: u32,
        /// The cap.
        max: u32,
    },
}

impl AdmitError {
    /// Whether the client should retry (load-dependent) or give up
    /// (deterministic quota violation).
    pub fn retryable(&self) -> bool {
        matches!(self, AdmitError::Inflight { .. })
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Bytes { got, max } => {
                write!(f, "payload {got} bytes exceeds tenant quota {max}")
            }
            AdmitError::Fuel { got, max } => {
                write!(f, "fuel ask {got} exceeds tenant quota {max}")
            }
            AdmitError::Inflight { current, max } => {
                write!(f, "tenant at in-flight cap ({current}/{max})")
            }
        }
    }
}

/// Tracks per-tenant in-flight counts against a [`TenantQuota`].
#[derive(Debug)]
pub struct Admission {
    quota: TenantQuota,
    inflight: Mutex<HashMap<String, u32>>,
}

impl Admission {
    /// New admission controller with one quota applied to every tenant.
    pub fn new(quota: TenantQuota) -> Arc<Admission> {
        Arc::new(Admission {
            quota,
            inflight: Mutex::new(HashMap::new()),
        })
    }

    /// The configured quota.
    pub fn quota(&self) -> &TenantQuota {
        &self.quota
    }

    /// Admit a request: check deterministic quotas first (so their
    /// rejection never depends on load), then reserve an in-flight slot.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] as classified; nothing is reserved on failure.
    pub fn admit(
        self: &Arc<Admission>,
        tenant: &str,
        bytes: u64,
        fuel: u64,
    ) -> Result<InflightGuard, AdmitError> {
        if bytes > self.quota.max_bytes {
            return Err(AdmitError::Bytes {
                got: bytes,
                max: self.quota.max_bytes,
            });
        }
        if fuel > self.quota.max_fuel {
            return Err(AdmitError::Fuel {
                got: fuel,
                max: self.quota.max_fuel,
            });
        }
        let tenant = canonical_tenant(tenant);
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        let n = map.entry(tenant.clone()).or_insert(0);
        if *n >= self.quota.max_inflight {
            return Err(AdmitError::Inflight {
                current: *n,
                max: self.quota.max_inflight,
            });
        }
        *n += 1;
        Ok(InflightGuard {
            admission: Arc::clone(self),
            tenant,
        })
    }

    /// Current in-flight count for a tenant (tests, stats).
    pub fn inflight(&self, tenant: &str) -> u32 {
        let map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&canonical_tenant(tenant)).copied().unwrap_or(0)
    }

    fn release(&self, tenant: &str) {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = map.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(tenant);
            }
        }
    }
}

/// Empty tenant ids all account to one bucket rather than each getting a
/// fresh quota.
fn canonical_tenant(tenant: &str) -> String {
    if tenant.is_empty() {
        "anon".into()
    } else {
        tenant.into()
    }
}

/// RAII in-flight reservation; releases its slot on drop.
#[derive(Debug)]
pub struct InflightGuard {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.admission.release(&self.tenant);
    }
}

// -- bounded queue --------------------------------------------------------

/// A bounded MPMC queue: `try_push` never blocks (load shedding is the
/// caller's job), `pop` blocks until an item or shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cond: Condvar,
    cap: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

impl<T> BoundedQueue<T> {
    /// New queue with capacity `cap` (minimum 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full or shut down — the
    /// caller sheds load with an explicit `Busy`, never by waiting.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.shutdown || q.items.len() >= self.cap {
            return Err(item);
        }
        q.items.push_back(item);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives or the queue shuts down
    /// (then `None`, after draining).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.shutdown {
                return None;
            }
            q = self.cond.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Shut down: wake all poppers; subsequent pushes fail.
    pub fn shutdown(&self) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        q.shutdown = true;
        drop(q);
        self.cond.notify_all();
    }

    /// Current depth (stats).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_quotas_reject_before_inflight() {
        let a = Admission::new(TenantQuota {
            max_inflight: 2,
            max_bytes: 100,
            max_fuel: 1000,
        });
        assert_eq!(
            a.admit("t", 101, 0).unwrap_err(),
            AdmitError::Bytes { got: 101, max: 100 }
        );
        assert_eq!(
            a.admit("t", 0, 1001).unwrap_err(),
            AdmitError::Fuel {
                got: 1001,
                max: 1000
            }
        );
        assert!(!a.admit("t", 101, 0).unwrap_err().retryable());
        // Rejections reserved nothing.
        assert_eq!(a.inflight("t"), 0);
    }

    #[test]
    fn inflight_cap_is_per_tenant_and_raii_released() {
        let a = Admission::new(TenantQuota {
            max_inflight: 2,
            ..TenantQuota::default()
        });
        let g1 = a.admit("t", 0, 0).unwrap();
        let _g2 = a.admit("t", 0, 0).unwrap();
        let err = a.admit("t", 0, 0).unwrap_err();
        assert_eq!(err, AdmitError::Inflight { current: 2, max: 2 });
        assert!(err.retryable());
        // A different tenant is unaffected.
        let _other = a.admit("u", 0, 0).unwrap();
        // Dropping a guard frees the slot.
        drop(g1);
        assert_eq!(a.inflight("t"), 1);
        let _g3 = a.admit("t", 0, 0).unwrap();
    }

    #[test]
    fn empty_tenant_shares_one_bucket() {
        let a = Admission::new(TenantQuota {
            max_inflight: 1,
            ..TenantQuota::default()
        });
        let _g = a.admit("", 0, 0).unwrap();
        assert!(a.admit("", 0, 0).is_err());
        assert_eq!(a.inflight("anon"), 1);
    }

    #[test]
    fn queue_sheds_when_full_and_drains_on_shutdown() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "full queue sheds, never grows");
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(4), Err(4), "no pushes after shutdown");
        // Draining continues after shutdown, then None.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shutdown_wakes_blocked_poppers() {
        let q = std::sync::Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert_eq!(t.join().unwrap(), None);
    }
}
