//! Minimal, dependency-free SIGTERM/SIGINT handling for graceful drain.
//!
//! `lpatd` historically only exited cleanly via `--max-requests`; a
//! ctrl-c or service-manager SIGTERM tore it down mid-queue. This module
//! turns both signals into a *drain request*: an async-signal-safe flag
//! the accept loop polls, after which the server stops accepting,
//! finishes the queue, flushes, and joins workers — the same clean path
//! `--max-requests` takes.
//!
//! No `libc` crate: the workspace is zero-dependency, and `std` already
//! links the platform libc, so `signal(2)` is declared directly. The
//! handler does the only async-signal-safe thing there is to do — store
//! to an atomic.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_IGN` as defined by POSIX.
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        super::DRAIN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install_term_handlers() {
        unsafe {
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn ignore_term_signals() {
        unsafe {
            signal(SIGINT, SIG_IGN);
            signal(SIGTERM, SIG_IGN);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_term_handlers() {}
    pub fn ignore_term_signals() {}
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain. The
/// accept loop observes the request via [`drain_requested`]. (glibc's
/// `signal` gives BSD semantics, so interrupted blocking reads restart —
/// the accept loop's own 2ms poll is what bounds reaction time.)
pub fn install_term_handlers() {
    imp::install_term_handlers();
}

/// Make SIGTERM/SIGINT no-ops. Worker subprocesses use this: a ctrl-c
/// delivered to the whole process group must not make mid-drain workers
/// look like crashes — the supervisor alone decides their fate (stdin
/// EOF for drain, SIGKILL for wedges).
pub fn ignore_term_signals() {
    imp::ignore_term_signals();
}

/// Whether a termination signal has requested a graceful drain.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Reset the drain flag (tests only; signals are process-global).
#[doc(hidden)]
pub fn reset_for_tests() {
    DRAIN.store(false, Ordering::SeqCst);
}
