//! IR → machine-IR lowering with linear-scan register allocation.

use std::collections::HashMap;

use lpat_core::{BinOp, Const, FuncId, Function, Inst, InstId, Module, Type, Value};

use crate::mir::{Loc, MFunc, MInst, MKind, PReg, Src};

/// Register budget of a target.
#[derive(Copy, Clone, Debug)]
pub struct RegBudget {
    /// Allocatable general-purpose registers.
    pub gprs: u8,
}

/// Lower one function.
pub fn lower_function(m: &Module, fid: FuncId, budget: RegBudget) -> MFunc {
    let f = m.func(fid);
    if f.is_declaration() {
        return MFunc {
            name: f.name.clone(),
            ..MFunc::default()
        };
    }
    let (locs, spill_slots) = allocate(m, f, budget);
    let mut static_alloca = 0u32;

    // Pre-scan static allocas so they become frame offsets.
    let mut alloca_offsets: HashMap<InstId, u32> = HashMap::new();
    for iid in f.inst_ids_in_order() {
        if let Inst::Alloca {
            elem_ty,
            count: None,
        } = f.inst(iid)
        {
            alloca_offsets.insert(iid, static_alloca);
            static_alloca += m.types.size_of(*elem_ty).max(1) as u32;
            static_alloca = (static_alloca + 7) & !7;
        }
    }
    let frame_size = spill_slots * 8 + static_alloca;

    let src_of = |v: Value| -> Src {
        match v {
            Value::Inst(i) => Src::Loc(locs[&ValKey::Inst(i)]),
            Value::Arg(n) => Src::Loc(locs[&ValKey::Arg(n)]),
            Value::Const(c) => match m.consts.get(c) {
                Const::Bool(b) => Src::Imm(*b as i64),
                Const::Int { value, .. } => Src::Imm(*value),
                Const::Null(_) => Src::Imm(0),
                Const::Undef(_) | Const::Zero(_) => Src::Imm(0),
                // Floats live in a constant pool: modeled as a memory read.
                Const::F32(_) | Const::F64(_) => Src::Loc(Loc::Slot(u32::MAX)),
                // Symbol addresses are link-time immediates.
                Const::GlobalAddr(_) | Const::FuncAddr(_) => Src::Imm(0x0040_0000),
                Const::Array { .. } | Const::Struct { .. } => Src::Imm(0),
            },
        }
    };
    let dst_of = |i: InstId| -> Option<Loc> { locs.get(&ValKey::Inst(i)).copied() };

    let mut blocks: Vec<Vec<MInst>> = Vec::with_capacity(f.num_blocks());
    for b in f.block_ids() {
        let mut out: Vec<MInst> = Vec::new();
        if b == f.entry() {
            out.push(MInst::new(
                MKind::Prologue { frame: frame_size },
                None,
                vec![],
            ));
        }
        let insts = f.block_insts(b);
        for (pos, &iid) in insts.iter().enumerate() {
            let is_last = pos + 1 == insts.len();
            let inst = f.inst(iid).clone();
            // φ-copies belong at the *end* of predecessors; before emitting
            // a terminator, emit copies for every successor φ.
            if is_last && inst.is_terminator() {
                for s in inst.successors() {
                    for &pid in f.block_insts(s) {
                        if let Inst::Phi { incoming } = f.inst(pid) {
                            if let Some((v, _)) = incoming.iter().find(|(_, pb)| *pb == b) {
                                out.push(MInst::new(MKind::Mov, dst_of(pid), vec![src_of(*v)]));
                            }
                        }
                    }
                }
            }
            match inst {
                Inst::Phi { .. } => {} // handled at predecessor ends
                Inst::Bin { op, lhs, rhs } => out.push(MInst::new(
                    MKind::Bin(op),
                    dst_of(iid),
                    vec![src_of(lhs), src_of(rhs)],
                )),
                Inst::Cmp { pred, lhs, rhs } => out.push(MInst::new(
                    MKind::Cmp(pred),
                    dst_of(iid),
                    vec![src_of(lhs), src_of(rhs)],
                )),
                Inst::Cast { val, .. } => {
                    out.push(MInst::new(MKind::Cast, dst_of(iid), vec![src_of(val)]))
                }
                Inst::Load { ptr } => {
                    let size = first_class_size(m, f.inst_ty(iid));
                    out.push(MInst::new(
                        MKind::Load(size),
                        dst_of(iid),
                        vec![src_of(ptr)],
                    ));
                }
                Inst::Store { val, ptr } => {
                    let size = first_class_size(m, m.value_type(f, val));
                    out.push(MInst::new(
                        MKind::Store(size),
                        None,
                        vec![src_of(val), src_of(ptr)],
                    ));
                }
                Inst::Gep { ptr, indices } => {
                    lower_gep(m, f, ptr, &indices, &src_of, dst_of(iid), &mut out);
                }
                Inst::Alloca { count: None, .. } => {
                    // Static alloca: address = frame base + offset.
                    out.push(MInst::new(
                        MKind::Lea {
                            scale: 0,
                            disp: alloca_offsets[&iid] as i64,
                        },
                        dst_of(iid),
                        vec![Src::Imm(0)],
                    ));
                }
                Inst::Alloca { count: Some(c), .. } => {
                    // Dynamic stack adjustment.
                    out.push(MInst::new(
                        MKind::Bin(BinOp::Sub),
                        dst_of(iid),
                        vec![Src::Imm(0), src_of(c)],
                    ));
                }
                Inst::Malloc { count, .. } => {
                    let nargs = 1 + count.is_some() as usize;
                    out.push(MInst::new(MKind::Call { nargs }, dst_of(iid), vec![]));
                }
                Inst::Free(p) => {
                    out.push(MInst::new(MKind::Call { nargs: 1 }, None, vec![src_of(p)]));
                }
                Inst::VaArg { .. } => {
                    out.push(MInst::new(MKind::Load(4), dst_of(iid), vec![Src::Imm(0)]));
                }
                Inst::Call { args, .. } => {
                    let srcs: Vec<Src> = args.iter().map(|&a| src_of(a)).collect();
                    out.push(MInst::new(
                        MKind::Call { nargs: args.len() },
                        dst_of(iid),
                        srcs,
                    ));
                }
                Inst::Invoke { args, normal, .. } => {
                    // Call followed by a jump to the normal destination;
                    // the unwind edge costs a landing-pad table entry,
                    // modeled in the data section, not code.
                    let srcs: Vec<Src> = args.iter().map(|&a| src_of(a)).collect();
                    out.push(MInst::new(
                        MKind::Call { nargs: args.len() },
                        dst_of(iid),
                        srcs,
                    ));
                    if normal.index() != b.index() + 1 {
                        out.push(MInst::new(MKind::Jump(normal.index()), None, vec![]));
                    }
                }
                Inst::Br(t) => {
                    if t.index() != b.index() + 1 {
                        out.push(MInst::new(MKind::Jump(t.index()), None, vec![]));
                    }
                }
                Inst::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    out.push(MInst::new(
                        MKind::CondJump(then_bb.index()),
                        None,
                        vec![src_of(cond)],
                    ));
                    if else_bb.index() != b.index() + 1 {
                        out.push(MInst::new(MKind::Jump(else_bb.index()), None, vec![]));
                    }
                }
                Inst::Switch {
                    val,
                    cases,
                    default,
                } => {
                    out.push(MInst::new(
                        MKind::JumpTable(cases.len()),
                        None,
                        vec![src_of(val)],
                    ));
                    let _ = default;
                }
                Inst::Ret(v) => {
                    let srcs = v.map(|v| vec![src_of(v)]).unwrap_or_default();
                    out.push(MInst::new(MKind::Mov, None, srcs.clone()));
                    out.push(MInst::new(MKind::Epilogue, None, vec![]));
                    out.push(MInst::new(MKind::Ret, None, vec![]));
                }
                Inst::Unwind | Inst::Unreachable => {
                    out.push(MInst::new(MKind::Call { nargs: 0 }, None, vec![]));
                }
            }
        }
        blocks.push(out);
    }
    MFunc {
        blocks,
        frame_size,
        name: f.name.clone(),
    }
}

fn first_class_size(m: &Module, ty: lpat_core::TypeId) -> u8 {
    match m.types.ty(ty) {
        Type::Bool => 1,
        Type::Int(k) => k.bytes() as u8,
        Type::F32 => 4,
        Type::F64 => 8,
        Type::Ptr(_) => 4,
        _ => 4,
    }
}

/// Lower a GEP into lea/mul-add chains.
fn lower_gep(
    m: &Module,
    f: &Function,
    ptr: Value,
    indices: &[Value],
    src_of: &dyn Fn(Value) -> Src,
    dst: Option<Loc>,
    out: &mut Vec<MInst>,
) {
    let tys = &m.types;
    let mut cur = tys
        .pointee(m.value_type(f, ptr))
        .expect("verified gep base");
    let mut disp: i64 = 0;
    let mut parts: Vec<(Src, u32)> = Vec::new(); // (index, scale)
    for (k, &idx) in indices.iter().enumerate() {
        if k > 0 {
            match tys.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let fi = match idx {
                        Value::Const(c) => m.consts.as_int(c).map(|(_, v)| v).unwrap_or(0) as usize,
                        _ => 0,
                    };
                    disp += tys.field_offset(cur, fi.min(fields.len() - 1)) as i64;
                    cur = fields[fi.min(fields.len() - 1)];
                    continue;
                }
                Type::Array { elem, .. } => {
                    cur = elem;
                }
                _ => {}
            }
        }
        let scale = tys.size_of(cur) as u32;
        match idx {
            Value::Const(c) => {
                let v = m.consts.as_int(c).map(|(_, v)| v).unwrap_or(0);
                disp += v * scale as i64;
            }
            other => parts.push((src_of(other), scale)),
        }
    }
    let base = src_of(ptr);
    match parts.len() {
        0 => out.push(MInst::new(MKind::Lea { scale: 0, disp }, dst, vec![base])),
        _ => {
            // base + idx0*s0 (lea), further parts as mul+add pairs.
            let (i0, s0) = parts[0];
            out.push(MInst::new(
                MKind::Lea { scale: s0, disp },
                dst,
                vec![base, i0],
            ));
            // Each further variable index: product into the destination
            // (as scratch), then accumulate it onto the address.
            let acc = Src::Loc(dst.unwrap_or(Loc::Slot(0)));
            for &(ix, sx) in &parts[1..] {
                out.push(MInst::new(
                    MKind::Bin(BinOp::Mul),
                    dst,
                    vec![ix, Src::Imm(sx as i64)],
                ));
                out.push(MInst::new(MKind::Bin(BinOp::Add), dst, vec![acc, ix]));
            }
        }
    }
}

// ----------------------------------------------------------------------
// Linear-scan register allocation
// ----------------------------------------------------------------------

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum ValKey {
    Inst(InstId),
    Arg(u32),
}

/// Compute locations for every SSA value; returns the map and the number
/// of spill slots used.
fn allocate(m: &Module, f: &Function, budget: RegBudget) -> (HashMap<ValKey, Loc>, u32) {
    let _ = m;
    // Linear indices.
    let mut index: HashMap<InstId, usize> = HashMap::new();
    for (i, iid) in f.inst_ids_in_order().enumerate() {
        index.insert(iid, i + 1); // 0 reserved for args
    }
    // Intervals.
    let mut start: HashMap<ValKey, usize> = HashMap::new();
    let mut end: HashMap<ValKey, usize> = HashMap::new();
    for a in 0..f.num_params() as u32 {
        start.insert(ValKey::Arg(a), 0);
        end.insert(ValKey::Arg(a), 0);
    }
    for iid in f.inst_ids_in_order() {
        let i = index[&iid];
        start.insert(ValKey::Inst(iid), i);
        end.insert(ValKey::Inst(iid), i);
    }
    // Uses extend intervals; φ-uses extend to the predecessor's terminator.
    let term_index: HashMap<lpat_core::BlockId, usize> = f
        .block_ids()
        .filter_map(|b| f.terminator(b).map(|t| (b, index[&t])))
        .collect();
    for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            let at = index[&iid];
            match f.inst(iid) {
                Inst::Phi { incoming } => {
                    for (v, pb) in incoming {
                        let key = match v {
                            Value::Inst(d) => ValKey::Inst(*d),
                            Value::Arg(n) => ValKey::Arg(*n),
                            _ => continue,
                        };
                        let upto = term_index.get(pb).copied().unwrap_or(at);
                        let e = end.entry(key).or_insert(0);
                        *e = (*e).max(upto);
                    }
                }
                other => other.for_each_operand(|v| {
                    let key = match v {
                        Value::Inst(d) => ValKey::Inst(d),
                        Value::Arg(n) => ValKey::Arg(n),
                        _ => return,
                    };
                    let e = end.entry(key).or_insert(0);
                    *e = (*e).max(at);
                }),
            }
        }
    }
    // Any value whose range crosses a loop back edge is conservatively
    // extended to the last back-edge source: values live around a loop
    // must not share registers with loop-local ones. This errs towards
    // more spills, which is safe for the size model.
    let mut back_edge_max: usize = 0;
    for b in f.block_ids() {
        if f.successors(b).into_iter().any(|s| s.index() <= b.index()) {
            back_edge_max = back_edge_max.max(term_index.get(&b).copied().unwrap_or(0));
        }
    }
    let keys: Vec<ValKey> = start.keys().copied().collect();
    for k in keys {
        let s = start[&k];
        let e = end[&k];
        if e > s && s < back_edge_max && e >= s {
            // Live across a region containing back edges: extend.
            if e < back_edge_max && crosses_back_edge(f, &index, k, s, e) {
                end.insert(k, back_edge_max);
            }
        }
    }

    // Sort by start; linear scan.
    let mut vals: Vec<ValKey> = start.keys().copied().collect();
    vals.sort_by_key(|k| (start[k], end[k]));
    let mut active: Vec<(ValKey, usize, PReg)> = Vec::new(); // (val, end, reg)
    let mut free: Vec<PReg> = (0..budget.gprs).rev().map(PReg).collect();
    let mut locs: HashMap<ValKey, Loc> = HashMap::new();
    let mut spill_slots = 0u32;
    for k in vals {
        let s = start[&k];
        let e = end[&k];
        if e <= s && !matches!(k, ValKey::Arg(_)) {
            // Dead value: give it a register transiently if available,
            // else a slot; it costs nothing either way.
            if let Some(r) = free.last() {
                locs.insert(k, Loc::Reg(*r));
            } else {
                locs.insert(k, Loc::Slot(spill_slots * 8));
                spill_slots += 1;
            }
            continue;
        }
        // Expire.
        active.retain(|&(_, ae, r)| {
            if ae < s {
                free.push(r);
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            active.push((k, e, r));
            locs.insert(k, Loc::Reg(r));
        } else {
            // Spill the interval with the furthest end.
            let (pos, &(vk, ve, vr)) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, &(_, ae, _))| ae)
                .expect("active non-empty when out of registers");
            if ve > e {
                locs.insert(vk, Loc::Slot(spill_slots * 8));
                spill_slots += 1;
                active[pos] = (k, e, vr);
                locs.insert(k, Loc::Reg(vr));
            } else {
                locs.insert(k, Loc::Slot(spill_slots * 8));
                spill_slots += 1;
            }
        }
    }
    (locs, spill_slots)
}

/// Does the value's live range span a loop back edge?
fn crosses_back_edge(
    f: &Function,
    index: &HashMap<InstId, usize>,
    _k: ValKey,
    s: usize,
    e: usize,
) -> bool {
    for b in f.block_ids() {
        for succ in f.successors(b) {
            if succ.index() <= b.index() {
                if let Some(t) = f.terminator(b) {
                    let ti = index[&t];
                    if s <= ti && ti <= e {
                        return true;
                    }
                }
            }
        }
    }
    false
}
