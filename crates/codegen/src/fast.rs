//! # Single-pass "fast" backend: lpat IR → risc32 machine words
//!
//! A TPDE-style low-latency backend (PAPERS.md: "TPDE: A Fast Adaptable
//! Compiler Back-End Framework"): instruction selection, register
//! allocation and binary encoding are fused into **one forward walk** of
//! the IR per function. There is no MIR, no separate liveness analysis and
//! no iterative allocator — translation cost is a small constant per IR
//! instruction, which is what lets the tiered VM afford a third tier.
//!
//! ## Value model
//!
//! Every SSA value is assigned a [`Class`] from its static type and one
//! permanent **home**: a register of the risc32 file, or a frame slot when
//! the file is full (spill on pressure). Registers hold the low 32 bits of
//! the interpreter's canonical two's-complement value:
//!
//! * classes ≤ 32 bits (`Bool`, `S8`…`U32`, `Ptr`) are **exact**: the
//!   canonical `i64` is the sign/zero-extension of the register, so every
//!   operation below reproduces interpreter semantics bit-for-bit;
//! * 64-bit integers get the [`Class::L64`] *low-word view*: the register
//!   carries only the low 32 bits, and the translator admits exactly the
//!   operations whose observable result is determined by those bits
//!   (add/sub/mul/bitwise, GEP indexing, truncating casts, 8-byte loads).
//!   Anything else — compares, shifts, division, stores, returns, call
//!   arguments — **bails out** of native translation for the whole
//!   function, demoting it to the `LowFunc` JIT tier;
//! * floats always bail: the risc32 executable subset is an integer file.
//!
//! Bailing is an `Err(String)` from [`translate_fast`]; it is a *tiering*
//! decision, never a semantic one. The VM keeps such functions on the JIT
//! tier, which handles every type.
//!
//! ## Register file
//!
//! 32 × `u32`. `r0` is hardwired zero; `r1`–`r3` are translator scratch
//! (immediate materialisation, spill staging, φ-cycle breaking); `r4`–`r31`
//! (28 registers) are allocatable homes. Homes are fixed for the lifetime
//! of the function — the allocator is a single priority pass (static use
//! count × 4^loop-depth), so the mapping InstId → home is a pure function
//! of the IR. That is what makes on-stack replacement and frame conversion
//! (`FrameMap`-style) trivial: converting an interpreter or JIT frame to a
//! native frame is a table-driven copy, in either direction.
//!
//! ## Encoding
//!
//! Fixed 4-byte words in four formats (see [`enc`]); side tables carry the
//! data a fixed-width word cannot (φ-edge copy lists, call descriptors,
//! switch tables), exactly as real RISC binaries park jump tables and
//! relocation records out of line. Accounting words ([`enc::ACCT`]) mark
//! the start of each IR instruction's machine sequence with its opcode
//! index; the emulator's decoder folds them into the next op so fuel
//! metering and the opcode histogram stay *per IR instruction*, identical
//! to the interpreter.

use lpat_core::{
    BinOp, BlockId, CmpPred, Const, FuncId, Function, Inst, InstId, IntKind, Module, Type, TypeId,
    Value,
};

// ----------------------------------------------------------------------
// Value classes
// ----------------------------------------------------------------------

/// Static class of an SSA value in the native value model.
///
/// Classes ≤ 32 bits are exact (register = low 32 bits of the canonical
/// value = the whole value); `L64` is the low-word view of a 64-bit
/// integer; floats have no class and force a bail-out.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Class {
    /// `bool`: register holds 0 or 1.
    Bool,
    /// `sbyte`: register holds the 32-bit sign-extension of the value.
    S8,
    /// `ubyte`: register holds the zero-extension of the value.
    U8,
    /// `short`.
    S16,
    /// `ushort`.
    U16,
    /// `int`: register is the value (two's complement).
    S32,
    /// `uint`: register is the value.
    U32,
    /// Any pointer: register is the 32-bit address.
    Ptr,
    /// 64-bit integer, low-word view: register holds the low 32 bits
    /// only. Admitted for operations whose result is determined by the
    /// low word; everything else bails.
    L64,
}

impl Class {
    /// Stable numeric code used in instruction `extra` fields and tables.
    pub fn code(self) -> u16 {
        match self {
            Class::Bool => 0,
            Class::S8 => 1,
            Class::U8 => 2,
            Class::S16 => 3,
            Class::U16 => 4,
            Class::S32 => 5,
            Class::U32 => 6,
            Class::Ptr => 7,
            Class::L64 => 8,
        }
    }

    /// Inverse of [`Class::code`].
    pub fn from_code(c: u16) -> Option<Class> {
        Some(match c {
            0 => Class::Bool,
            1 => Class::S8,
            2 => Class::U8,
            3 => Class::S16,
            4 => Class::U16,
            5 => Class::S32,
            6 => Class::U32,
            7 => Class::Ptr,
            8 => Class::L64,
            _ => return None,
        })
    }

    /// Class of an integer kind (both 64-bit kinds map to the `L64`
    /// low-word view).
    pub fn of_kind(k: IntKind) -> Class {
        classify_kind(k)
    }

    /// The integer kind for integer classes (including `L64` → `S64`;
    /// the emulator never reconstructs an `L64` scalar, it only needs the
    /// kind for 8-byte memory accesses, where `S64`/`U64` are identical).
    pub fn int_kind(self) -> Option<IntKind> {
        Some(match self {
            Class::S8 => IntKind::S8,
            Class::U8 => IntKind::U8,
            Class::S16 => IntKind::S16,
            Class::U16 => IntKind::U16,
            Class::S32 => IntKind::S32,
            Class::U32 => IntKind::U32,
            Class::L64 => IntKind::S64,
            Class::Bool | Class::Ptr => return None,
        })
    }

    /// Bit width for shift masking and renormalisation (≤ 32-bit ints).
    fn bits(self) -> Option<u16> {
        Some(match self {
            Class::S8 | Class::U8 => 8,
            Class::S16 | Class::U16 => 16,
            Class::S32 | Class::U32 => 32,
            _ => return None,
        })
    }

    fn is_signed_int(self) -> bool {
        matches!(self, Class::S8 | Class::S16 | Class::S32)
    }

    fn is_narrow(self) -> bool {
        matches!(self, Class::S8 | Class::U8 | Class::S16 | Class::U16)
    }

    /// Whether the register representation is the full canonical value
    /// (everything except the `L64` low-word view).
    pub fn is_exact(self) -> bool {
        !matches!(self, Class::L64)
    }
}

/// Classify a type: `Ok(None)` for void (no value), `Ok(Some)` for a
/// representable first-class type, `Err` when the type forces a bail-out.
fn classify(m: &Module, t: TypeId) -> Result<Option<Class>, String> {
    Ok(Some(match m.types.ty(t) {
        Type::Void => return Ok(None),
        Type::Bool => Class::Bool,
        Type::Int(k) => match k {
            IntKind::S8 => Class::S8,
            IntKind::U8 => Class::U8,
            IntKind::S16 => Class::S16,
            IntKind::U16 => Class::U16,
            IntKind::S32 => Class::S32,
            IntKind::U32 => Class::U32,
            IntKind::S64 | IntKind::U64 => Class::L64,
        },
        Type::Ptr(_) => Class::Ptr,
        Type::F32 | Type::F64 => return Err("float value".into()),
        other => return Err(format!("non-scalar value type {other:?}")),
    }))
}

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

/// Binary word formats and opcode assignments of the risc32 executable
/// subset.
///
/// All words are 32 bits, opcode in the top byte. Formats:
///
/// * **R**: `op(8) | rd(5) | ra(5) | rb(5) | extra(9)` — three-address ALU,
///   memory and compare ops; `extra` carries the class/predicate.
/// * **I**: `op(8) | rd(5) | ra(5) | imm14` — immediates, spill-slot
///   traffic, conditional branch (edge index), `ret` flags. `imm14` is
///   signed for `ADDI`/`LDI` and unsigned for indices.
/// * **U**: `op(8) | rd(5) | imm19` — `LUI` loads `imm19 << 13`; paired
///   with `ORI`'s 13-bit immediate it materialises any 32-bit constant in
///   two words (the classic `sethi`/`or` split).
/// * **E**: `op(8) | idx(24)` — edge/descriptor/table references and
///   accounting words.
pub mod enc {
    /// Accounting word (format E): `idx` is the IR opcode index charged
    /// before the next executable op. Decoders fuse it into that op.
    pub const ACCT: u8 = 0x00;
    /// `rd = ra + rb` (wrapping).
    pub const ADD: u8 = 0x01;
    /// `rd = ra - rb` (wrapping).
    pub const SUB: u8 = 0x02;
    /// `rd = ra * rb` (wrapping).
    pub const MUL: u8 = 0x03;
    /// `rd = rd + ra * rb` (wrapping) — GEP address chains.
    pub const MADD: u8 = 0x04;
    /// `rd = ra & rb`.
    pub const AND: u8 = 0x05;
    /// `rd = ra | rb`.
    pub const OR: u8 = 0x06;
    /// `rd = ra ^ rb`.
    pub const XOR: u8 = 0x07;
    /// `rd = ra << (rb & (extra-1))`; `extra` = operand bit width.
    pub const SLL: u8 = 0x08;
    /// Logical right shift, same masking.
    pub const SRL: u8 = 0x09;
    /// Arithmetic right shift, same masking.
    pub const SRA: u8 = 0x0A;
    /// Signed division (traps DivByZero at run time).
    pub const DIVS: u8 = 0x0B;
    /// Unsigned division.
    pub const DIVU: u8 = 0x0C;
    /// Signed remainder.
    pub const REMS: u8 = 0x0D;
    /// Unsigned remainder.
    pub const REMU: u8 = 0x0E;
    /// `rd = ra <pred> rb`; `extra` bits 0–2 = predicate
    /// (eq,ne,lt,gt,le,ge), bit 3 = unsigned compare.
    pub const CMP: u8 = 0x0F;
    /// `rd = (ra != 0)` — casts to bool.
    pub const SETNZ: u8 = 0x10;
    /// Renormalise `ra` to the narrow class in `extra` (sign/zero-extend
    /// its low 8/16 bits over the register) — keeps narrow arithmetic
    /// canonical. Charges nothing.
    pub const NORM: u8 = 0x11;
    /// `rd = ra`.
    pub const MOV: u8 = 0x12;
    /// `rd = ra + simm14`.
    pub const ADDI: u8 = 0x18;
    /// `rd = simm14`.
    pub const LDI: u8 = 0x19;
    /// `rd = imm19 << 13` (format U).
    pub const LUI: u8 = 0x1A;
    /// `rd = ra | uimm13`.
    pub const ORI: u8 = 0x1B;
    /// `rd = slots[uimm14]` — spill reload.
    pub const LDS: u8 = 0x1C;
    /// `slots[uimm14] = ra` — spill store.
    pub const STS: u8 = 0x1D;
    /// Memory load: `rd = mem[ra]` at the class in `extra` (full access
    /// checks; `L64` checks 8 bytes and keeps the low word).
    pub const LD: u8 = 0x20;
    /// Memory store: `mem[ra] = rb` at the class in `extra`.
    pub const ST: u8 = 0x21;
    /// Allocate: `rd = alloc(rb_elem_size × count(ra))`; `extra` bit 0 =
    /// stack (alloca), bit 1 = count-is-one, bit 2 = count unsigned.
    pub const ALLOC: u8 = 0x22;
    /// Free the pointer in `ra`.
    pub const FREE: u8 = 0x23;
    /// Unconditional branch through edge `idx` (format E).
    pub const BR: u8 = 0x28;
    /// Branch through edge `uimm14` when `ra != 0`.
    pub const CBNZ: u8 = 0x29;
    /// Multi-way branch: scrutinee `ra`, switch table `uimm14`.
    pub const SWITCH: u8 = 0x2A;
    /// Call through descriptor `idx` (format E).
    pub const CALLD: u8 = 0x2B;
    /// Return; `imm14` bit 0 = has-value, bits 1–4 = value class, value
    /// in `ra`.
    pub const RET: u8 = 0x2C;
    /// Begin unwinding (format E).
    pub const UNWIND: u8 = 0x2D;
    /// Unreachable-executed trap (format E).
    pub const UNREACHABLE: u8 = 0x2E;

    /// Hardwired zero register.
    pub const R_ZERO: u8 = 0;
    /// First scratch register (immediates, first spilled operand,
    /// φ-cycle temporary).
    pub const R_S1: u8 = 1;
    /// Second scratch register (second spilled operand).
    pub const R_S2: u8 = 2;
    /// Third scratch register (spilled destinations before `STS`).
    pub const R_S3: u8 = 3;
    /// First allocatable register.
    pub const R_FIRST: u8 = 4;
    /// Register file size.
    pub const NUM_REGS: usize = 32;

    /// Pack an R-format word.
    pub fn r(op: u8, rd: u8, ra: u8, rb: u8, extra: u16) -> u32 {
        debug_assert!(rd < 32 && ra < 32 && rb < 32 && extra < 512);
        (op as u32) << 24 | (rd as u32) << 19 | (ra as u32) << 14 | (rb as u32) << 9 | extra as u32
    }

    /// Pack an I-format word (`imm` already reduced to 14 bits).
    pub fn i(op: u8, rd: u8, ra: u8, imm: u32) -> u32 {
        debug_assert!(rd < 32 && ra < 32 && imm < (1 << 14));
        (op as u32) << 24 | (rd as u32) << 19 | (ra as u32) << 14 | imm
    }

    /// Pack a U-format word.
    pub fn u(op: u8, rd: u8, imm19: u32) -> u32 {
        debug_assert!(rd < 32 && imm19 < (1 << 19));
        (op as u32) << 24 | (rd as u32) << 19 | imm19
    }

    /// Pack an E-format word.
    pub fn e(op: u8, idx: u32) -> u32 {
        debug_assert!(idx < (1 << 24));
        (op as u32) << 24 | idx
    }

    /// Opcode byte of a word.
    pub fn op(w: u32) -> u8 {
        (w >> 24) as u8
    }
    /// `rd` field.
    pub fn rd(w: u32) -> u8 {
        ((w >> 19) & 31) as u8
    }
    /// `ra` field.
    pub fn ra(w: u32) -> u8 {
        ((w >> 14) & 31) as u8
    }
    /// `rb` field.
    pub fn rb(w: u32) -> u8 {
        ((w >> 9) & 31) as u8
    }
    /// R-format `extra` field.
    pub fn extra(w: u32) -> u16 {
        (w & 511) as u16
    }
    /// I-format immediate, sign-extended.
    pub fn simm14(w: u32) -> i32 {
        ((w as i32) << 18) >> 18
    }
    /// I-format immediate, unsigned.
    pub fn uimm14(w: u32) -> u32 {
        w & 0x3FFF
    }
    /// U-format immediate.
    pub fn imm19(w: u32) -> u32 {
        w & 0x7FFFF
    }
    /// E-format index.
    pub fn idx24(w: u32) -> u32 {
        w & 0xFF_FFFF
    }
}

// ----------------------------------------------------------------------
// Side tables
// ----------------------------------------------------------------------

/// A value's permanent storage home.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Home {
    /// An allocatable register (`r4`–`r31`).
    Reg(u8),
    /// A frame spill slot.
    Slot(u16),
}

/// A copy/argument source: a home or a pre-evaluated 32-bit immediate.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Src {
    /// Read a register.
    Reg(u8),
    /// Read a frame slot.
    Slot(u16),
    /// A constant's low 32 bits.
    Imm(u32),
}

impl From<Home> for Src {
    fn from(h: Home) -> Src {
        match h {
            Home::Reg(r) => Src::Reg(r),
            Home::Slot(s) => Src::Slot(s),
        }
    }
}

/// One φ-copy on an edge, already sequentialised (safe to apply in order).
#[derive(Clone, Debug)]
pub struct FastCopy {
    /// Destination home (scratch `r1` appears as `Reg(1)` in cycle breaks).
    pub dst: Home,
    /// Source location or immediate.
    pub src: Src,
}

/// A control-flow edge: φ-copies plus the branch target, with the CFG
/// metadata the profiler and tier ladder need.
#[derive(Clone, Debug)]
pub struct FastEdge {
    /// Sequentialised parallel copy for the target block's φs.
    pub copies: Vec<FastCopy>,
    /// Word index of the target block's first word.
    pub target: u32,
    /// Source block index.
    pub from: u32,
    /// Target block index.
    pub to: u32,
    /// Whether this is a loop back-edge (`to <= from`), the tier ladder's
    /// hotness signal.
    pub back: bool,
}

/// Call target in a descriptor.
#[derive(Clone, Debug)]
pub enum FastCallee {
    /// Statically known function.
    Direct(FuncId),
    /// Function pointer read from `Src` at call time.
    Indirect(Src),
}

/// Out-of-line call descriptor referenced by a [`enc::CALLD`] word.
#[derive(Clone, Debug)]
pub struct FastCall {
    /// Callee.
    pub callee: FastCallee,
    /// Actual arguments with the classes used to rebuild scalar values at
    /// the call boundary.
    pub args: Vec<(Src, Class)>,
    /// Return-value home and class, when the callee's result is used.
    pub dst: Option<(Home, Class)>,
    /// `(normal, unwind)` edge indices for invokes.
    pub eh: Option<(u32, u32)>,
    /// IR instruction id of the call site (profiling key).
    pub site: u32,
}

/// Out-of-line switch table referenced by a [`enc::SWITCH`] word.
#[derive(Clone, Debug)]
pub struct FastSwitch {
    /// `(case value low word, edge index)`, compared in order. Case
    /// constants share the scrutinee's (≤ 32-bit) kind, so comparing low
    /// words equals comparing canonical values.
    pub cases: Vec<(u32, u32)>,
    /// Default edge index.
    pub default: u32,
}

/// A translated function: the word buffer plus its side tables.
#[derive(Clone, Debug)]
pub struct FastFunc {
    /// Encoded machine words.
    pub words: Vec<u32>,
    /// Word index of each block's first word (φs emit no code, so this is
    /// also the on-stack-replacement entry point of the block).
    pub block_word: Vec<u32>,
    /// Edge table.
    pub edges: Vec<FastEdge>,
    /// Call descriptors.
    pub calls: Vec<FastCall>,
    /// Switch tables.
    pub switches: Vec<FastSwitch>,
    /// Number of frame spill slots.
    pub n_slots: u32,
    /// Home and class of each formal argument.
    pub arg_homes: Vec<(Home, Class)>,
    /// Home and class of each value-producing instruction, indexed by
    /// `InstId` — the bidirectional frame-mapping table for OSR.
    pub homes: Vec<Option<(Home, Class)>>,
    /// Function name (diagnostics, trace spans).
    pub name: String,
}

/// Engine facts the translator needs but must not compute itself: address
/// layout is owned by the VM, speculation state by the optimizer.
pub struct FastEnv<'a> {
    /// Address of a function (for `FuncAddr` constants).
    pub func_addr: &'a dyn Fn(FuncId) -> u32,
    /// Address of a global by index, if the engine has laid it out.
    pub global_addr: &'a dyn Fn(usize) -> Option<u32>,
    /// Whether a conditional branch carries a speculation guard — guarded
    /// functions bail (deoptimisation is the JIT tier's job).
    pub guarded: &'a dyn Fn(InstId) -> bool,
}

// ----------------------------------------------------------------------
// Translation
// ----------------------------------------------------------------------

/// Operand as seen during emission.
#[derive(Copy, Clone)]
enum Opnd {
    Home(Home, Class),
    Imm(u32, Class),
}

impl Opnd {
    fn class(&self) -> Class {
        match *self {
            Opnd::Home(_, c) | Opnd::Imm(_, c) => c,
        }
    }
    fn src(&self) -> Src {
        match *self {
            Opnd::Home(h, _) => h.into(),
            Opnd::Imm(k, _) => Src::Imm(k),
        }
    }
}

struct Tr<'a> {
    m: &'a Module,
    f: &'a Function,
    env: &'a FastEnv<'a>,
    words: Vec<u32>,
    block_word: Vec<u32>,
    edges: Vec<FastEdge>,
    calls: Vec<FastCall>,
    switches: Vec<FastSwitch>,
    homes: Vec<Option<(Home, Class)>>,
    arg_homes: Vec<(Home, Class)>,
    n_slots: u32,
}

/// Translate one function to native words in a single forward pass.
///
/// `Err` means "this function stays on the JIT tier" — unsupported types
/// or operations, speculation guards, or encoding limits. The error text
/// names the first reason encountered.
pub fn translate_fast(m: &Module, fid: FuncId, env: &FastEnv) -> Result<FastFunc, String> {
    let f = m.func(fid);
    if f.is_declaration() {
        return Err("declaration has no body".into());
    }
    if f.is_varargs() {
        // Native frames carry no vararg vector; `va_arg` callees stay on
        // the JIT tier.
        return Err("varargs function".into());
    }

    // -- classes -------------------------------------------------------
    let mut arg_classes = Vec::with_capacity(f.num_params());
    for &p in f.params() {
        match classify(m, p)? {
            Some(c) => arg_classes.push(c),
            None => return Err("void parameter".into()),
        }
    }
    let n_insts = f.num_inst_slots();
    let mut inst_class: Vec<Option<Class>> = vec![None; n_insts];
    for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            inst_class[iid.index()] = classify(m, f.inst_ty(iid))?;
        }
    }

    // -- loop weights + use counts (one counting sweep, no liveness) ---
    // A back-edge span [to, from] approximates a loop; a block's depth is
    // the number of spans containing it, and uses are weighted 4^depth so
    // loop-carried values win the register file.
    let mut spans: Vec<(u32, u32)> = Vec::new();
    for b in f.block_ids() {
        let bi = b.index() as u32;
        if let Some(&last) = f.block_insts(b).last() {
            for t in term_targets(f.inst(last)) {
                let ti = t.index() as u32;
                if ti <= bi {
                    spans.push((ti, bi));
                }
            }
        }
    }
    let weight = |b: BlockId| -> u64 {
        let x = b.index() as u32;
        let d = spans.iter().filter(|&&(t, fr)| t <= x && x <= fr).count();
        4u64.saturating_pow(d.min(8) as u32)
    };
    let mut arg_prio = vec![0u64; arg_classes.len()];
    let mut inst_prio = vec![0u64; n_insts];
    for b in f.block_ids() {
        let w = weight(b);
        for &iid in f.block_insts(b) {
            let inst = f.inst(iid);
            if inst_class[iid.index()].is_some() {
                inst_prio[iid.index()] = inst_prio[iid.index()].saturating_add(w);
            }
            if let Inst::Phi { incoming } = inst {
                for &(v, pred) in incoming {
                    bump(&mut arg_prio, &mut inst_prio, v, weight(pred));
                }
            } else {
                for v in operand_values(inst) {
                    bump(&mut arg_prio, &mut inst_prio, v, w);
                }
            }
        }
    }

    // -- home assignment (priority order, top 28 in registers) ---------
    // kind 0 = arg, 1 = inst; sort is stable on (priority desc, id) so
    // the mapping is deterministic.
    let mut cand: Vec<(u64, u8, u32)> = Vec::new();
    for (i, _) in arg_classes.iter().enumerate() {
        cand.push((arg_prio[i].max(1), 0, i as u32));
    }
    for i in 0..n_insts {
        if inst_class[i].is_some() {
            cand.push((inst_prio[i].max(1), 1, i as u32));
        }
    }
    cand.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let n_regs_avail = enc::NUM_REGS - enc::R_FIRST as usize;
    let mut homes: Vec<Option<(Home, Class)>> = vec![None; n_insts];
    let mut arg_homes: Vec<(Home, Class)> = Vec::with_capacity(arg_classes.len());
    arg_homes.resize(arg_classes.len(), (Home::Slot(0), Class::S32));
    let mut next_slot: u32 = 0;
    for (rank, &(_, kind, id)) in cand.iter().enumerate() {
        let home = if rank < n_regs_avail {
            Home::Reg(enc::R_FIRST + rank as u8)
        } else {
            let s = next_slot;
            next_slot += 1;
            if s > 16_000 {
                return Err("frame too large for slot encoding".into());
            }
            Home::Slot(s as u16)
        };
        if kind == 0 {
            arg_homes[id as usize] = (home, arg_classes[id as usize]);
        } else {
            homes[id as usize] = Some((home, inst_class[id as usize].unwrap()));
        }
    }

    let mut tr = Tr {
        m,
        f,
        env,
        words: Vec::new(),
        block_word: Vec::new(),
        edges: Vec::new(),
        calls: Vec::new(),
        switches: Vec::new(),
        homes,
        arg_homes,
        n_slots: next_slot,
    };

    // -- emission: one forward walk ------------------------------------
    for b in f.block_ids() {
        tr.block_word.push(tr.words.len() as u32);
        let insts = f.block_insts(b);
        if insts.is_empty() {
            return Err("block without terminator".into());
        }
        for &iid in insts {
            tr.emit_inst(b, iid)?;
        }
    }

    // Resolve edge targets now that every block's word offset is known
    // (the only fixup in the pass; TPDE does the same for forward jumps).
    for e in &mut tr.edges {
        e.target = tr.block_word[e.to as usize];
    }

    Ok(FastFunc {
        words: tr.words,
        block_word: tr.block_word,
        edges: tr.edges,
        calls: tr.calls,
        switches: tr.switches,
        n_slots: tr.n_slots,
        arg_homes: tr.arg_homes,
        homes: tr.homes,
        name: f.name.clone(),
    })
}

fn bump(args: &mut [u64], insts: &mut [u64], v: Value, w: u64) {
    match v {
        Value::Arg(a) => {
            if let Some(p) = args.get_mut(a as usize) {
                *p = p.saturating_add(w);
            }
        }
        Value::Inst(i) => {
            if let Some(p) = insts.get_mut(i.index()) {
                *p = p.saturating_add(w);
            }
        }
        Value::Const(_) => {}
    }
}

fn term_targets(inst: &Inst) -> Vec<BlockId> {
    match inst {
        Inst::Br(t) => vec![*t],
        Inst::CondBr {
            then_bb, else_bb, ..
        } => vec![*then_bb, *else_bb],
        Inst::Switch { default, cases, .. } => {
            let mut v = vec![*default];
            v.extend(cases.iter().map(|&(_, b)| b));
            v
        }
        Inst::Invoke { normal, unwind, .. } => vec![*normal, *unwind],
        _ => Vec::new(),
    }
}

fn operand_values(inst: &Inst) -> Vec<Value> {
    match inst {
        Inst::Ret(v) => v.iter().copied().collect(),
        Inst::Br(_) | Inst::Unwind | Inst::Unreachable | Inst::VaArg { .. } => Vec::new(),
        Inst::CondBr { cond, .. } => vec![*cond],
        Inst::Switch { val, .. } => vec![*val],
        Inst::Invoke { callee, args, .. } | Inst::Call { callee, args } => {
            let mut v = vec![*callee];
            v.extend_from_slice(args);
            v
        }
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
        Inst::Malloc { count, .. } | Inst::Alloca { count, .. } => count.iter().copied().collect(),
        Inst::Free(p) => vec![*p],
        Inst::Load { ptr } => vec![*ptr],
        Inst::Store { val, ptr } => vec![*val, *ptr],
        Inst::Gep { ptr, indices } => {
            let mut v = vec![*ptr];
            v.extend_from_slice(indices);
            v
        }
        Inst::Phi { incoming } => incoming.iter().map(|&(v, _)| v).collect(),
        Inst::Cast { val, .. } => vec![*val],
    }
}

impl<'a> Tr<'a> {
    fn word(&mut self, w: u32) {
        self.words.push(w);
    }

    fn acct(&mut self, inst: &Inst) {
        self.word(enc::e(enc::ACCT, inst.opcode_index() as u32));
    }

    /// Evaluate a `Value` to an operand (no code emitted).
    fn opnd(&mut self, v: Value) -> Result<Opnd, String> {
        match v {
            Value::Inst(i) => self.homes[i.index()]
                .map(|(h, c)| Opnd::Home(h, c))
                .ok_or_else(|| "use of void value".into()),
            Value::Arg(a) => self
                .arg_homes
                .get(a as usize)
                .map(|&(h, c)| Opnd::Home(h, c))
                .ok_or_else(|| "argument out of range".into()),
            Value::Const(c) => self.const_opnd(c),
        }
    }

    fn const_opnd(&mut self, c: lpat_core::ConstId) -> Result<Opnd, String> {
        Ok(match self.m.consts.get(c) {
            Const::Bool(b) => Opnd::Imm(*b as u32, Class::Bool),
            Const::Int { kind, value } => {
                let class = classify_kind(*kind);
                Opnd::Imm(*value as u32, class)
            }
            Const::Null(_) => Opnd::Imm(0, Class::Ptr),
            Const::Undef(t) | Const::Zero(t) => match classify(self.m, *t)? {
                Some(cl) => Opnd::Imm(0, cl),
                None => return Err("void constant".into()),
            },
            Const::FuncAddr(f) => Opnd::Imm((self.env.func_addr)(*f), Class::Ptr),
            Const::GlobalAddr(g) => match (self.env.global_addr)(g.index()) {
                Some(addr) => Opnd::Imm(addr, Class::Ptr),
                None => return Err("global address unavailable".into()),
            },
            Const::F32(_) | Const::F64(_) => return Err("float constant".into()),
            other => return Err(format!("aggregate constant {other:?} as scalar")),
        })
    }

    /// Materialise a 32-bit constant into `rd`.
    fn load_imm(&mut self, rd: u8, k: u32) {
        let v = k as i32;
        if (-(1 << 13)..(1 << 13)).contains(&v) {
            self.word(enc::i(enc::LDI, rd, 0, (v as u32) & 0x3FFF));
        } else {
            self.word(enc::u(enc::LUI, rd, k >> 13));
            if k & 0x1FFF != 0 {
                self.word(enc::i(enc::ORI, rd, rd, k & 0x1FFF));
            }
        }
    }

    /// Bring an operand into a register, spilling through `scratch` when
    /// it lives in a slot or is a constant. Returns the register to read.
    fn use_reg(&mut self, o: Opnd, scratch: u8) -> u8 {
        match o {
            Opnd::Home(Home::Reg(r), _) => r,
            Opnd::Home(Home::Slot(s), _) => {
                self.word(enc::i(enc::LDS, scratch, 0, s as u32));
                scratch
            }
            Opnd::Imm(0, _) => enc::R_ZERO,
            Opnd::Imm(k, _) => {
                self.load_imm(scratch, k);
                scratch
            }
        }
    }

    /// Register to compute a destination into; the closer writes it back
    /// to the slot when the home is spilled.
    fn dst_reg(&self, iid: InstId) -> Option<(u8, Option<u16>)> {
        self.homes[iid.index()].map(|(h, _)| match h {
            Home::Reg(r) => (r, None),
            Home::Slot(s) => (enc::R_S3, Some(s)),
        })
    }

    fn dst_done(&mut self, spill: Option<u16>) {
        if let Some(s) = spill {
            self.word(enc::i(enc::STS, 0, enc::R_S3, s as u32));
        }
    }

    fn norm_if_narrow(&mut self, class: Class, rd: u8) {
        if class.is_narrow() {
            self.word(enc::r(enc::NORM, rd, rd, 0, class.code()));
        }
    }

    fn make_edge(&mut self, from: BlockId, to: BlockId) -> Result<u32, String> {
        let mut moves: Vec<(Home, Src)> = Vec::new();
        for &iid in self.f.block_insts(to) {
            if let Inst::Phi { incoming } = self.f.inst(iid) {
                let Some((dst, _)) = self.homes[iid.index()] else {
                    continue;
                };
                let Some(&(v, _)) = incoming.iter().find(|&&(_, p)| p == from) else {
                    return Err("phi missing incoming for edge".into());
                };
                let src = self.opnd(v)?.src();
                if Src::from(dst) != src {
                    moves.push((dst, src));
                }
            }
        }
        let copies = sequentialize(moves);
        let idx = self.edges.len() as u32;
        if idx >= (1 << 14) {
            return Err("too many edges for encoding".into());
        }
        self.edges.push(FastEdge {
            copies,
            target: 0,
            from: from.index() as u32,
            to: to.index() as u32,
            back: to.index() <= from.index(),
        });
        Ok(idx)
    }

    fn emit_inst(&mut self, b: BlockId, iid: InstId) -> Result<(), String> {
        let inst = self.f.inst(iid);
        match inst {
            Inst::Phi { .. } => Ok(()), // edges carry φs; no code, no charge
            Inst::Br(t) => {
                self.acct(inst);
                let e = self.make_edge(b, *t)?;
                self.word(enc::e(enc::BR, e));
                Ok(())
            }
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                if (self.env.guarded)(iid) {
                    return Err("speculation guard".into());
                }
                self.acct(inst);
                let c = self.opnd(*cond)?;
                if c.class() != Class::Bool {
                    return Err("condbr on non-bool".into());
                }
                let cr = self.use_reg(c, enc::R_S1);
                let et = self.make_edge(b, *then_bb)?;
                let ee = self.make_edge(b, *else_bb)?;
                self.word(enc::i(enc::CBNZ, 0, cr, et));
                self.word(enc::e(enc::BR, ee));
                Ok(())
            }
            Inst::Switch {
                val,
                default,
                cases,
            } => {
                self.acct(inst);
                let v = self.opnd(*val)?;
                let vc = v.class();
                if !matches!(
                    vc,
                    Class::S8 | Class::U8 | Class::S16 | Class::U16 | Class::S32 | Class::U32
                ) {
                    return Err("switch scrutinee class".into());
                }
                let vr = self.use_reg(v, enc::R_S1);
                let mut tbl = FastSwitch {
                    cases: Vec::with_capacity(cases.len()),
                    default: self.make_edge(b, *default)?,
                };
                for &(c, t) in cases {
                    let Some((k, cv)) = self.m.consts.as_int(c) else {
                        return Err("non-integer switch case".into());
                    };
                    if classify_kind(k) != vc {
                        return Err("switch case kind mismatch".into());
                    }
                    tbl.cases.push((cv as u32, self.make_edge(b, t)?));
                }
                let ti = self.switches.len() as u32;
                if ti >= (1 << 14) {
                    return Err("too many switch tables".into());
                }
                self.switches.push(tbl);
                self.word(enc::i(enc::SWITCH, 0, vr, ti));
                Ok(())
            }
            Inst::Ret(v) => {
                self.acct(inst);
                match v {
                    None => self.word(enc::i(enc::RET, 0, 0, 0)),
                    Some(v) => {
                        let o = self.opnd(*v)?;
                        let c = o.class();
                        if !c.is_exact() {
                            return Err("64-bit return value".into());
                        }
                        let r = self.use_reg(o, enc::R_S1);
                        self.word(enc::i(enc::RET, 0, r, 1 | (c.code() as u32) << 1));
                    }
                }
                Ok(())
            }
            Inst::Unwind => {
                self.acct(inst);
                self.word(enc::e(enc::UNWIND, 0));
                Ok(())
            }
            Inst::Unreachable => {
                self.acct(inst);
                self.word(enc::e(enc::UNREACHABLE, 0));
                Ok(())
            }
            Inst::Bin { op, lhs, rhs } => self.emit_bin(iid, *op, *lhs, *rhs, inst),
            Inst::Cmp { pred, lhs, rhs } => self.emit_cmp(iid, *pred, *lhs, *rhs, inst),
            Inst::Cast { val, to } => self.emit_cast(iid, *val, *to, inst),
            Inst::Load { ptr } => {
                self.acct(inst);
                let Some((_, class)) = self.homes[iid.index()] else {
                    return Err("void load".into());
                };
                let p = self.opnd(*ptr)?;
                if p.class() != Class::Ptr {
                    return Err("load address class".into());
                }
                let pr = self.use_reg(p, enc::R_S1);
                let Some((rd, spill)) = self.dst_reg(iid) else {
                    return Err("void load".into());
                };
                self.word(enc::r(enc::LD, rd, pr, 0, class.code()));
                self.dst_done(spill);
                Ok(())
            }
            Inst::Store { val, ptr } => {
                self.acct(inst);
                let v = self.opnd(*val)?;
                if !v.class().is_exact() {
                    return Err("64-bit store".into());
                }
                let p = self.opnd(*ptr)?;
                if p.class() != Class::Ptr {
                    return Err("store address class".into());
                }
                let pr = self.use_reg(p, enc::R_S1);
                let vr = self.use_reg(v, enc::R_S2);
                self.word(enc::r(enc::ST, 0, pr, vr, v.class().code()));
                Ok(())
            }
            Inst::Gep { ptr, indices } => self.emit_gep(b, iid, *ptr, indices, inst),
            Inst::Malloc { count, .. } | Inst::Alloca { count, .. } => {
                self.acct(inst);
                let stack = matches!(inst, Inst::Alloca { .. });
                let elem_ty = match inst {
                    Inst::Malloc { elem_ty, .. } | Inst::Alloca { elem_ty, .. } => *elem_ty,
                    _ => unreachable!(),
                };
                let elem_size = self
                    .m
                    .types
                    .try_size_of(elem_ty)
                    .ok_or("allocation of unsized type")?;
                let elem32: u32 = elem_size.try_into().map_err(|_| "giant element type")?;
                let mut extra: u16 = if stack { 1 } else { 0 };
                let cr = match count {
                    None => {
                        extra |= 2;
                        enc::R_ZERO
                    }
                    Some(cv) => {
                        let c = self.opnd(*cv)?;
                        match c.class() {
                            Class::U32 => extra |= 4,
                            Class::Bool
                            | Class::S8
                            | Class::U8
                            | Class::S16
                            | Class::U16
                            | Class::S32 => {}
                            _ => return Err("allocation count class".into()),
                        }
                        self.use_reg(c, enc::R_S1)
                    }
                };
                self.load_imm(enc::R_S2, elem32);
                let Some((rd, spill)) = self.dst_reg(iid) else {
                    return Err("void allocation".into());
                };
                self.word(enc::r(enc::ALLOC, rd, cr, enc::R_S2, extra));
                self.dst_done(spill);
                Ok(())
            }
            Inst::Free(p) => {
                self.acct(inst);
                let o = self.opnd(*p)?;
                if o.class() != Class::Ptr {
                    return Err("free of non-pointer".into());
                }
                let r = self.use_reg(o, enc::R_S1);
                self.word(enc::r(enc::FREE, 0, r, 0, 0));
                Ok(())
            }
            Inst::Call { callee, args } => self.emit_call(b, iid, *callee, args, None, inst),
            Inst::Invoke {
                callee,
                args,
                normal,
                unwind,
            } => {
                let en = self.make_edge(b, *normal)?;
                let eu = self.make_edge(b, *unwind)?;
                self.emit_call(b, iid, *callee, args, Some((en, eu)), inst)
            }
            Inst::VaArg { .. } => Err("vaarg".into()),
        }
    }

    fn emit_bin(
        &mut self,
        iid: InstId,
        op: BinOp,
        lhs: Value,
        rhs: Value,
        inst: &Inst,
    ) -> Result<(), String> {
        let Some((_, class)) = self.homes[iid.index()] else {
            return Err("void bin".into());
        };
        let l = self.opnd(lhs)?;
        let r = self.opnd(rhs)?;
        if l.class() != class || r.class() != class {
            return Err("bin operand class mismatch".into());
        }
        // Which ops are sound for this class?
        match class {
            Class::Bool if !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) => {
                return Err("arith on bool".into());
            }
            // Only the low-word-determined subset.
            Class::L64
                if !matches!(
                    op,
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
                ) =>
            {
                return Err("64-bit op needs full width".into());
            }
            Class::Ptr => return Err("arith on pointer".into()),
            _ => {}
        }
        self.acct(inst);
        let la = self.use_reg(l, enc::R_S1);
        let rb = self.use_reg(r, enc::R_S2);
        let Some((rd, spill)) = self.dst_reg(iid) else {
            return Err("void bin".into());
        };
        let bits = class.bits().unwrap_or(32);
        let signed = class.is_signed_int();
        let (word_op, extra, renorm) = match op {
            BinOp::Add => (enc::ADD, 0, true),
            BinOp::Sub => (enc::SUB, 0, true),
            BinOp::Mul => (enc::MUL, 0, true),
            BinOp::And => (enc::AND, 0, false),
            BinOp::Or => (enc::OR, 0, false),
            BinOp::Xor => (enc::XOR, 0, false),
            BinOp::Shl => (enc::SLL, bits, true),
            BinOp::Shr if signed => (enc::SRA, bits, true),
            BinOp::Shr => (enc::SRL, bits, false),
            BinOp::Div if signed => (enc::DIVS, 0, true),
            BinOp::Div => (enc::DIVU, 0, false),
            BinOp::Rem if signed => (enc::REMS, 0, true),
            BinOp::Rem => (enc::REMU, 0, false),
        };
        self.word(enc::r(word_op, rd, la, rb, extra));
        if renorm {
            self.norm_if_narrow(class, rd);
        }
        self.dst_done(spill);
        Ok(())
    }

    fn emit_cmp(
        &mut self,
        iid: InstId,
        pred: CmpPred,
        lhs: Value,
        rhs: Value,
        inst: &Inst,
    ) -> Result<(), String> {
        let l = self.opnd(lhs)?;
        let r = self.opnd(rhs)?;
        let c = l.class();
        if r.class() != c {
            return Err("cmp operand class mismatch".into());
        }
        if !c.is_exact() {
            return Err("64-bit compare".into());
        }
        // Canonical ≤32-bit values order exactly like their 32-bit
        // representations under the matching signedness; pointers and
        // bools compare unsigned.
        let unsigned = !c.is_signed_int();
        self.acct(inst);
        let la = self.use_reg(l, enc::R_S1);
        let rb = self.use_reg(r, enc::R_S2);
        let Some((rd, spill)) = self.dst_reg(iid) else {
            return Err("void cmp".into());
        };
        let pcode = match pred {
            CmpPred::Eq => 0u16,
            CmpPred::Ne => 1,
            CmpPred::Lt => 2,
            CmpPred::Gt => 3,
            CmpPred::Le => 4,
            CmpPred::Ge => 5,
        };
        self.word(enc::r(
            enc::CMP,
            rd,
            la,
            rb,
            pcode | if unsigned { 8 } else { 0 },
        ));
        self.dst_done(spill);
        Ok(())
    }

    fn emit_cast(
        &mut self,
        iid: InstId,
        val: Value,
        to: TypeId,
        inst: &Inst,
    ) -> Result<(), String> {
        let Some(tc) = classify(self.m, to)? else {
            return Err("cast to void".into());
        };
        let v = self.opnd(val)?;
        let fc = v.class();
        self.acct(inst);
        let Some((rd, spill)) = self.dst_reg(iid) else {
            return Err("void cast".into());
        };
        match tc {
            Class::Bool => {
                // != 0 test; sound for every exact class. A 64-bit source
                // needs all 64 bits.
                if !fc.is_exact() {
                    return Err("64-bit to bool".into());
                }
                let r = self.use_reg(v, enc::R_S1);
                self.word(enc::r(enc::SETNZ, rd, r, 0, 0));
            }
            Class::Ptr | Class::L64 | Class::S32 | Class::U32 => {
                // Low 32 bits carried over unchanged: int→ptr truncates,
                // ptr→int zero-extends, widening sign/zero-extends — in
                // every case the canonical low word is the register.
                let r = self.use_reg(v, enc::R_S1);
                self.word(enc::r(enc::MOV, rd, r, 0, 0));
            }
            Class::S8 | Class::U8 | Class::S16 | Class::U16 => {
                let r = self.use_reg(v, enc::R_S1);
                self.word(enc::r(enc::NORM, rd, r, 0, tc.code()));
            }
        }
        self.dst_done(spill);
        Ok(())
    }

    fn emit_gep(
        &mut self,
        _b: BlockId,
        iid: InstId,
        ptr: Value,
        indices: &[Value],
        inst: &Inst,
    ) -> Result<(), String> {
        let tys = &self.m.types;
        let base = self.opnd(ptr)?;
        if base.class() != Class::Ptr {
            return Err("gep base class".into());
        }
        // Same walk as the JIT's compile_gep: fold constant indices into
        // a static offset, keep `(value, scale)` pairs for the rest. Only
        // the low 32 bits of the offset are observable, so 64-bit index
        // values participate via their low-word view.
        let mut cur = tys
            .pointee(self.m.value_type(self.f, ptr))
            .ok_or("gep base not a pointer")?;
        let mut const_off: i64 = 0;
        let mut scaled: Vec<(Opnd, i64)> = Vec::new();
        for (k, &idx) in indices.iter().enumerate() {
            let const_v = match idx {
                Value::Const(c) => self.m.consts.as_int(c).map(|(_, v)| v),
                _ => None,
            };
            if k == 0 {
                let scale = tys.try_size_of(cur).ok_or("gep through unsized type")? as i64;
                match const_v {
                    Some(v) => const_off = const_off.wrapping_add(v.wrapping_mul(scale)),
                    None => scaled.push((self.opnd(idx)?, scale)),
                }
                continue;
            }
            match tys.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let fi = const_v.ok_or("dynamic struct index")? as usize;
                    if fi >= fields.len() || tys.try_size_of(cur).is_none() {
                        return Err("struct index out of range".into());
                    }
                    const_off = const_off.wrapping_add(tys.field_offset(cur, fi) as i64);
                    cur = fields[fi];
                }
                Type::Array { elem, .. } => {
                    let scale = tys.try_size_of(elem).ok_or("gep through unsized type")? as i64;
                    match const_v {
                        Some(v) => const_off = const_off.wrapping_add(v.wrapping_mul(scale)),
                        None => scaled.push((self.opnd(idx)?, scale)),
                    }
                    cur = elem;
                }
                _ => return Err("gep into scalar".into()),
            }
        }
        for (o, _) in &scaled {
            if !matches!(
                o.class(),
                Class::Bool
                    | Class::S8
                    | Class::U8
                    | Class::S16
                    | Class::U16
                    | Class::S32
                    | Class::U32
                    | Class::L64
            ) {
                return Err("gep index class".into());
            }
        }
        self.acct(inst);
        let br = self.use_reg(base, enc::R_S1);
        let Some((rd, spill)) = self.dst_reg(iid) else {
            return Err("void gep".into());
        };
        // dst = base + const_off, then dst += idx · scale per dynamic
        // index. Homes are unique, so rd never aliases a live operand.
        let off = const_off as u32;
        if off == 0 {
            if rd != br {
                self.word(enc::r(enc::MOV, rd, br, 0, 0));
            }
        } else if (-(1 << 13)..(1 << 13)).contains(&(off as i32)) {
            self.word(enc::i(enc::ADDI, rd, br, off & 0x3FFF));
        } else {
            self.load_imm(enc::R_S2, off);
            self.word(enc::r(enc::ADD, rd, br, enc::R_S2, 0));
        }
        for (o, scale) in scaled {
            let ir = self.use_reg(o, enc::R_S1);
            self.load_imm(enc::R_S2, scale as u32);
            self.word(enc::r(enc::MADD, rd, ir, enc::R_S2, 0));
        }
        self.dst_done(spill);
        Ok(())
    }

    fn emit_call(
        &mut self,
        _b: BlockId,
        iid: InstId,
        callee: Value,
        args: &[Value],
        eh: Option<(u32, u32)>,
        inst: &Inst,
    ) -> Result<(), String> {
        let callee = if let Value::Const(c) = callee {
            if let Const::FuncAddr(f) = self.m.consts.get(c) {
                FastCallee::Direct(*f)
            } else {
                let o = self.const_opnd(c)?;
                FastCallee::Indirect(o.src())
            }
        } else {
            let o = self.opnd(callee)?;
            if o.class() != Class::Ptr {
                return Err("indirect callee class".into());
            }
            FastCallee::Indirect(o.src())
        };
        let mut argv = Vec::with_capacity(args.len());
        for &a in args {
            let o = self.opnd(a)?;
            if !o.class().is_exact() {
                return Err("64-bit call argument".into());
            }
            argv.push((o.src(), o.class()));
        }
        let dst = self.homes[iid.index()];
        if let Some((_, c)) = dst {
            if !c.is_exact() {
                // The callee's 64-bit result would reach us truncated.
                return Err("64-bit call result".into());
            }
        }
        self.acct(inst);
        let di = self.calls.len() as u32;
        if di >= (1 << 24) {
            return Err("too many call sites".into());
        }
        self.calls.push(FastCall {
            callee,
            args: argv,
            dst,
            eh,
            site: iid.index() as u32,
        });
        self.word(enc::e(enc::CALLD, di));
        Ok(())
    }
}

fn classify_kind(k: IntKind) -> Class {
    match k {
        IntKind::S8 => Class::S8,
        IntKind::U8 => Class::U8,
        IntKind::S16 => Class::S16,
        IntKind::U16 => Class::U16,
        IntKind::S32 => Class::S32,
        IntKind::U32 => Class::U32,
        IntKind::S64 | IntKind::U64 => Class::L64,
    }
}

/// Sequentialise a parallel copy: emit ready moves (destination not read
/// by any pending move) first; break each remaining cycle with the `r1`
/// scratch and drain it fully before touching the next cycle, so the
/// scratch is never live across two cycles.
fn sequentialize(mut pend: Vec<(Home, Src)>) -> Vec<FastCopy> {
    let mut out = Vec::with_capacity(pend.len());
    loop {
        let mut progress = true;
        while progress {
            progress = false;
            let mut i = 0;
            while i < pend.len() {
                let d = pend[i].0;
                let blocked = pend
                    .iter()
                    .enumerate()
                    .any(|(j, (_, s))| j != i && *s == Src::from(d));
                if !blocked {
                    let (dst, src) = pend.remove(i);
                    out.push(FastCopy { dst, src });
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }
        if pend.is_empty() {
            return out;
        }
        // Every pending destination is still read by someone: cycles.
        // Park one destination in scratch, retarget its readers, repeat.
        let (d0, s0) = pend.remove(0);
        let tmp = Home::Reg(enc::R_S1);
        out.push(FastCopy {
            dst: tmp,
            src: d0.into(),
        });
        for (_, s) in pend.iter_mut() {
            if *s == Src::from(d0) {
                *s = tmp.into();
            }
        }
        out.push(FastCopy { dst: d0, src: s0 });
    }
}
