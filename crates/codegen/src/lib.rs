//! # lpat-codegen — native code generation substrate
//!
//! Offline code generation for two synthetic 32-bit targets (paper §3.4;
//! the original supported x86 and SPARC V9):
//!
//! * [`cisc32::Cisc32`] — x86-shaped: variable-width encodings (1–10
//!   bytes), one foldable memory operand, 8-bit short immediates, stack
//!   argument passing, 6 allocatable registers;
//! * [`risc32::Risc32`] — SPARC-shaped: fixed 4-byte words, load/store
//!   architecture, 13-bit immediates with `sethi`/`or` splitting, branch
//!   delay slots, 20 allocatable registers.
//!
//! Both share one genuine backend pipeline — lowering (φ-elimination, GEP
//! address chains), linear-scan register allocation with spilling, and
//! compare/branch fusion — and differ in their encoders. The resulting
//! section sizes regenerate the paper's Figure 5 (executable size:
//! representation bytecode vs. native X86 vs. native SPARC); the claim
//! under test is about instruction-encoding *density*, which these models
//! capture, not about executing the bytes.

#![warn(missing_docs)]

pub mod cisc32;
pub mod fast;
pub mod lower;
pub mod mir;
pub mod risc32;
pub mod target;

pub use cisc32::Cisc32;
pub use risc32::Risc32;
pub use target::{compile_module, Binary, FuncCode, Target};

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(src: &str) -> (Binary, Binary, usize) {
        let m = lpat_asm::parse_module("t", src).unwrap();
        m.verify().unwrap();
        let cisc = compile_module(&m, &Cisc32);
        let risc = compile_module(&m, &Risc32);
        let ir = m.total_insts();
        (cisc, risc, ir)
    }

    const LOOPY: &str = "
@table = global [64 x int] zeroinitializer
define int @main(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, %n
  br bool %c, label %b, label %x
b:
  %p = getelementptr [64 x int]* @table, long 0, int %i
  %v = load int* %p
  %t = mul int %v, 3
  %s2 = add int %s, %t
  %i2 = add int %i, 1
  br label %h
x:
  ret int %s
}";

    #[test]
    fn cisc_denser_than_risc() {
        let (cisc, risc, _) = sizes(LOOPY);
        assert!(
            cisc.code_size < risc.code_size,
            "cisc={} risc={}",
            cisc.code_size,
            risc.code_size
        );
    }

    #[test]
    fn risc_code_is_word_aligned_per_inst_cost() {
        let (_, risc, _) = sizes(LOOPY);
        assert_eq!(risc.code_size % 4, 0, "RISC bytes are whole words");
    }

    #[test]
    fn density_in_plausible_band() {
        // Native-code density per IR instruction should land in the band
        // the paper's Figure 5 implies: CISC ≈ 2–8 B/IR-inst, RISC
        // 1.1–2.5× the CISC bytes.
        let (cisc, risc, ir) = sizes(LOOPY);
        let cd = cisc.code_size as f64 / ir as f64;
        let ratio = risc.code_size as f64 / cisc.code_size as f64;
        assert!((2.0..=8.0).contains(&cd), "cisc density {cd}");
        assert!((1.1..=2.5).contains(&ratio), "risc/cisc ratio {ratio}");
    }

    #[test]
    fn spilling_kicks_in_with_register_pressure() {
        // 12 simultaneously-live values exceed cisc32's six registers.
        let mut src = String::from("define int @main(int %a) {\ne:\n");
        for i in 0..12 {
            src.push_str(&format!("  %v{i} = add int %a, {i}\n"));
        }
        // Use all of them afterwards so they're live simultaneously.
        src.push_str("  %s0 = add int %v0, %v1\n");
        for i in 1..11 {
            src.push_str(&format!("  %s{i} = add int %s{}, %v{}\n", i - 1, i + 1));
        }
        src.push_str("  ret int %s10\n}\n");
        let m = lpat_asm::parse_module("t", &src).unwrap();
        m.verify().unwrap();
        let f = m.func_by_name("main").unwrap();
        let mf = lower::lower_function(&m, f, Cisc32.reg_budget());
        assert!(mf.frame_size > 0, "expected spills");
        let mf = lower::lower_function(&m, f, Risc32.reg_budget());
        assert_eq!(mf.frame_size, 0, "20 registers are plenty");
    }

    #[test]
    fn globals_count_in_data_section() {
        let (cisc, _, _) = sizes(
            "
@blob = global [256 x sbyte] zeroinitializer
define void @main() {
e:
  ret void
}",
        );
        assert!(cisc.data_size >= 256);
    }

    #[test]
    fn switch_emits_table_data() {
        let (cisc, _, _) = sizes(
            "
define int @main(int %x) {
e:
  switch int %x, label %d [ int 0, label %a int 1, label %a int 2, label %a int 3, label %a ]
a:
  ret int 1
d:
  ret int 0
}",
        );
        assert!(cisc.data_size >= 16, "4 table entries");
    }

    #[test]
    fn declarations_emit_no_code() {
        let (cisc, _, _) = sizes("declare int @ext(int)\ndefine void @main() {\ne:\n  ret void\n}");
        assert_eq!(cisc.funcs.len(), 1);
        assert_eq!(cisc.funcs[0].name, "main");
    }

    #[test]
    fn bytecode_beats_risc_and_tracks_cisc() {
        // The Figure 5 shape on a mid-sized function.
        let m = lpat_asm::parse_module("t", LOOPY).unwrap();
        let bc = lpat_bytecode::write_module(&m).len();
        let cisc = compile_module(&m, &Cisc32).total;
        let risc = compile_module(&m, &Risc32).total;
        assert!(bc < risc, "bytecode {bc} vs risc {risc}");
        // Within 2x of CISC in either direction for tiny inputs.
        let ratio = bc as f64 / cisc as f64;
        assert!((0.3..=2.0).contains(&ratio), "bc/cisc ratio {ratio}");
    }
}
