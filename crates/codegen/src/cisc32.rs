//! The `cisc32` target: an x86-shaped 32-bit CISC encoding model.
//!
//! Variable-width instructions (1–10 bytes), two-address ALU ops that can
//! fold one memory operand, 8-bit short forms for small immediates and
//! displacements, stack-based argument passing, and short/near jump forms.
//! Eight architectural registers, six allocatable.

use lpat_core::BinOp;

use crate::lower::RegBudget;
use crate::mir::{MInst, MKind, Src};
use crate::target::Target;

/// The x86-shaped target.
#[derive(Default)]
pub struct Cisc32;

fn imm_size(v: i64) -> usize {
    if (-128..=127).contains(&v) {
        1
    } else {
        4
    }
}

/// Size of using `s` as the folded operand of an ALU/mov op (0 when it is
/// a register; ModRM is counted in the base).
fn operand_extra(s: &Src) -> usize {
    match s {
        Src::Loc(crate::mir::Loc::Reg(_)) => 0,
        Src::Loc(crate::mir::Loc::Slot(off)) => {
            if *off < 128 {
                1 // disp8
            } else {
                4 // disp32
            }
        }
        Src::Imm(v) => imm_size(*v),
    }
}

/// Reload cost for memory operands beyond the one the instruction folds.
fn extra_mem_reloads(srcs: &[Src], foldable: usize) -> usize {
    let mems = srcs.iter().filter(|s| s.is_mem()).count();
    mems.saturating_sub(foldable) * 3 // mov r, [bp+disp8]
}

impl Target for Cisc32 {
    fn name(&self) -> &'static str {
        "cisc32 (x86-like)"
    }

    fn short_name(&self) -> &'static str {
        "x86"
    }

    fn reg_budget(&self) -> RegBudget {
        RegBudget { gprs: 6 }
    }

    fn size_inst(&self, i: &MInst, next: Option<&MInst>) -> (usize, bool) {
        let dst_mem_extra = match i.dst {
            Some(crate::mir::Loc::Slot(_)) => 3, // store of the result
            _ => 0,
        };
        match &i.kind {
            MKind::Mov => {
                if i.srcs.is_empty() {
                    return (0, false); // void return-value move
                }
                (2 + operand_extra(&i.srcs[0]) + dst_mem_extra, false)
            }
            MKind::Bin(op) => {
                let base = match op {
                    BinOp::Mul => 3,              // imul r, r/m
                    BinOp::Div | BinOp::Rem => 5, // cdq + idiv + fixups
                    BinOp::Shl | BinOp::Shr => 3, // shift r/m, imm/cl
                    _ => 2,                       // ALU r, r/m
                };
                let extra: usize =
                    i.srcs.iter().map(operand_extra).sum::<usize>() + extra_mem_reloads(&i.srcs, 1);
                (base + extra.min(10) + dst_mem_extra, false)
            }
            MKind::Cmp(_) => {
                // Fuse cmp+jcc when the next instruction consumes the flag.
                let cmp = 2
                    + i.srcs.iter().map(operand_extra).sum::<usize>().min(5)
                    + extra_mem_reloads(&i.srcs, 1);
                if let Some(MInst {
                    kind: MKind::CondJump(_),
                    srcs,
                    ..
                }) = next
                {
                    if srcs.first() == i.dst.map(Src::Loc).as_ref() {
                        return (cmp + 2, true); // cmp + jcc rel8
                    }
                }
                (cmp + 3 + dst_mem_extra, false) // cmp + setcc r
            }
            MKind::Cast => (3 + operand_extra(&i.srcs[0]) + dst_mem_extra, false),
            MKind::Load(sz) => {
                let wide = if *sz == 8 { 1 } else { 0 };
                (
                    2 + 1 + wide + extra_mem_reloads(&i.srcs, 0) + dst_mem_extra,
                    false,
                )
            }
            MKind::Store(sz) => {
                let wide = if *sz == 8 { 1 } else { 0 };
                let imm = i.srcs.first().and_then(Src::imm).map(imm_size).unwrap_or(0);
                (
                    2 + 1 + wide + imm + extra_mem_reloads(&i.srcs[1..], 0),
                    false,
                )
            }
            MKind::Lea { scale, disp } => {
                let sib = if *scale > 1 { 1 } else { 0 };
                (
                    2 + sib + imm_size(*disp) + extra_mem_reloads(&i.srcs, 0) + dst_mem_extra,
                    false,
                )
            }
            MKind::Jump(_) => (2, false), // jmp rel8 (relaxed to rel32 rarely)
            MKind::CondJump(_) => (2 + 2, false), // test r,r + jcc rel8
            MKind::JumpTable(_) => (12, false), // cmp + ja + jmp [tbl+r*4]
            MKind::Call { nargs } => {
                // push per argument + call rel32 + stack cleanup.
                let pushes: usize = i
                    .srcs
                    .iter()
                    .map(|s| match s {
                        Src::Loc(crate::mir::Loc::Reg(_)) => 1,
                        Src::Loc(crate::mir::Loc::Slot(_)) => 3,
                        Src::Imm(v) => 1 + imm_size(*v),
                    })
                    .sum::<usize>()
                    .max(*nargs); // calls lowered without explicit srcs
                (
                    pushes + 5 + if *nargs > 0 { 3 } else { 0 } + dst_mem_extra,
                    false,
                )
            }
            MKind::Ret => (1, false),
            MKind::Prologue { frame } => {
                let sub = if *frame == 0 {
                    0
                } else {
                    3 + imm_size(*frame as i64)
                };
                (3 + sub, false) // push bp; mov bp, sp; [sub sp, n]
            }
            MKind::Epilogue => (1, false), // leave
        }
    }

    fn jump_table_data(&self, cases: usize) -> usize {
        4 * cases
    }
}
