//! The `risc32` target: a SPARC-shaped 32-bit RISC encoding model.
//!
//! Every instruction is a fixed 4-byte word; memory is reached only through
//! loads and stores; immediates are limited to a signed 13-bit field (wider
//! constants take a `sethi`+`or` pair); branches and calls have delay slots
//! (modeled as filled when the block has material to hoist, a `nop`
//! otherwise). Thirty-two architectural registers, twenty allocatable.

use lpat_core::BinOp;

use crate::lower::RegBudget;
use crate::mir::{Loc, MInst, MKind, Src};
use crate::target::Target;

/// The SPARC-shaped target.
#[derive(Default)]
pub struct Risc32;

const W: usize = 4;

fn fits_simm13(v: i64) -> bool {
    (-4096..=4095).contains(&v)
}

/// Cost of getting `s` into a register: loads for memory residents,
/// `sethi/or` pairs for wide immediates, nothing for registers or small
/// immediates (which ride in the instruction's immediate field).
fn matriculate(s: &Src) -> usize {
    match s {
        Src::Loc(Loc::Reg(_)) => 0,
        Src::Loc(Loc::Slot(_)) => W, // ld [fp+off], r
        Src::Imm(v) => {
            if fits_simm13(*v) {
                0
            } else {
                2 * W // sethi %hi(v), r ; or r, %lo(v), r
            }
        }
    }
}

fn dst_spill(d: Option<Loc>) -> usize {
    match d {
        Some(Loc::Slot(_)) => W, // st r, [fp+off]
        _ => 0,
    }
}

impl Target for Risc32 {
    fn name(&self) -> &'static str {
        "risc32 (SPARC-like)"
    }

    fn short_name(&self) -> &'static str {
        "sparc"
    }

    fn reg_budget(&self) -> RegBudget {
        RegBudget { gprs: 20 }
    }

    fn size_inst(&self, i: &MInst, next: Option<&MInst>) -> (usize, bool) {
        let ops: usize = i.srcs.iter().map(matriculate).sum();
        let spill = dst_spill(i.dst);
        match &i.kind {
            MKind::Mov => {
                if i.srcs.is_empty() {
                    return (0, false);
                }
                (W + ops + spill, false)
            }
            MKind::Bin(op) => {
                let base = match op {
                    BinOp::Div | BinOp::Rem => 3 * W, // wr %y + sdiv + fixup
                    _ => W,
                };
                (base + ops + spill, false)
            }
            MKind::Cmp(_) => {
                // subcc + (fused branch | set pattern).
                if let Some(MInst {
                    kind: MKind::CondJump(_),
                    srcs,
                    ..
                }) = next
                {
                    if srcs.first() == i.dst.map(Src::Loc).as_ref() {
                        // subcc ; b<cond> ; delay nop (often unfillable at
                        // a block end).
                        return (W + ops + 2 * W, true);
                    }
                }
                // subcc ; b,a ; mov 0/1 — the classic 3-word set idiom.
                (3 * W + ops + spill, false)
            }
            MKind::Cast => (2 * W + ops + spill, false), // many casts round-trip memory
            MKind::Load(sz) => {
                let wide = if *sz == 8 { W } else { 0 }; // ldd or ld pair
                (W + wide + ops + spill, false)
            }
            MKind::Store(sz) => {
                let wide = if *sz == 8 { W } else { 0 };
                (W + wide + ops, false)
            }
            MKind::Lea { disp, .. } => {
                // add (+ mul by scale folded as shifts: one extra word when
                // scaling), + wide-displacement materialization.
                let scale_extra = if matches!(i.kind, MKind::Lea { scale, .. } if scale > 1) {
                    W
                } else {
                    0
                };
                let disp_extra = if fits_simm13(*disp) { 0 } else { 2 * W };
                (W + scale_extra + disp_extra + ops + spill, false)
            }
            MKind::Jump(_) => (2 * W, false), // b + delay (nop at block end)
            MKind::CondJump(_) => (3 * W, false), // tst + b + delay
            MKind::JumpTable(_) => (4 * W, false),
            MKind::Call { nargs } => {
                // First six args move into %o registers; the rest spill.
                let moves = (*nargs).max(i.srcs.len());
                let stack_args = moves.saturating_sub(6);
                let mat: usize = i.srcs.iter().map(matriculate).sum();
                (moves * W + stack_args * W + mat + W /*call*/ + spill, false)
            }
            MKind::Ret => (2 * W, false), // ret + restore
            MKind::Prologue { frame } => {
                let big = if fits_simm13(-(*frame as i64)) {
                    0
                } else {
                    2 * W
                };
                (W + big, false) // save %sp, -frame, %sp
            }
            MKind::Epilogue => (0, false), // folded into ret/restore
        }
    }

    fn jump_table_data(&self, cases: usize) -> usize {
        4 * cases
    }
}
