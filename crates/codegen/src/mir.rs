//! Machine IR: the target-independent, post-register-allocation form both
//! backends encode from.
//!
//! Lowering is deliberately simple (one machine op per IR instruction plus
//! φ-copies, GEP address chains, and spill traffic): the backends exist to
//! model *encoded code size* for the paper's Figure 5 experiment, with the
//! size-relevant ISA differences expressed in each target's encoder —
//! variable-width encodings and folded memory operands on the CISC side,
//! fixed 32-bit words, immediate-range splitting, and branch delay slots on
//! the RISC side.

use lpat_core::{BinOp, CmpPred};

/// A physical register assigned by the allocator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PReg(pub u8);

/// Where a value lives after allocation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Loc {
    /// In a register.
    Reg(PReg),
    /// In a stack slot (byte offset in the frame).
    Slot(u32),
}

/// A machine operand.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Src {
    /// A located value.
    Loc(Loc),
    /// An immediate integer (also used for addresses of globals and
    /// functions; floats are stored as constant-pool loads, modeled as
    /// `Slot` reads).
    Imm(i64),
}

impl Src {
    /// Whether the operand resides in memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Src::Loc(Loc::Slot(_)))
    }
    /// Whether the operand is an immediate.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Src::Imm(v) => Some(*v),
            _ => None,
        }
    }
}

/// Machine operation kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum MKind {
    /// Register/memory/immediate move (φ-copies, spills, materialization).
    Mov,
    /// Two-operand ALU op (dst = src0 ⊕ src1).
    Bin(BinOp),
    /// Compare + set-boolean.
    Cmp(CmpPred),
    /// Value conversion.
    Cast,
    /// Memory load of `size` bytes (address = src0 + imm displacement).
    Load(u8),
    /// Memory store of `size` bytes.
    Store(u8),
    /// Address computation: dst = src0 + src1*scale + disp.
    Lea {
        /// Index scale.
        scale: u32,
        /// Constant displacement.
        disp: i64,
    },
    /// Unconditional branch to block index.
    Jump(usize),
    /// Conditional branch to block index (fall through otherwise).
    CondJump(usize),
    /// Multiway jump (table of block indices).
    JumpTable(usize),
    /// Call with `nargs` arguments.
    Call {
        /// Number of argument moves/pushes.
        nargs: usize,
    },
    /// Function return.
    Ret,
    /// Frame prologue (allocates `frame` bytes).
    Prologue {
        /// Frame size in bytes.
        frame: u32,
    },
    /// Frame epilogue.
    Epilogue,
}

/// One machine instruction.
#[derive(Clone, Debug)]
pub struct MInst {
    /// Operation.
    pub kind: MKind,
    /// Destination, if any.
    pub dst: Option<Loc>,
    /// Sources.
    pub srcs: Vec<Src>,
}

impl MInst {
    /// Construct.
    pub fn new(kind: MKind, dst: Option<Loc>, srcs: Vec<Src>) -> MInst {
        MInst { kind, dst, srcs }
    }
}

/// A lowered function: machine instructions grouped by (IR) basic block,
/// plus frame info.
#[derive(Clone, Debug, Default)]
pub struct MFunc {
    /// Machine code per block, in layout order.
    pub blocks: Vec<Vec<MInst>>,
    /// Spill-area size in bytes.
    pub frame_size: u32,
    /// Name (for listings).
    pub name: String,
}

impl MFunc {
    /// Total machine instruction count.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }
}
