//! The target abstraction and the module compiler driver.

use lpat_core::{Inst, Module};

use crate::lower::{lower_function, RegBudget};
use crate::mir::MInst;

/// A code-generation target: supplies the register budget used during
/// lowering and the encoded size of each machine instruction.
pub trait Target {
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Short label for tables (`x86`, `sparc`).
    fn short_name(&self) -> &'static str;
    /// Allocatable registers.
    fn reg_budget(&self) -> RegBudget;
    /// Encoded size of `i` in bytes. `next` enables compare/branch fusion;
    /// returning `true` in the second slot consumes `next`.
    fn size_inst(&self, i: &MInst, next: Option<&MInst>) -> (usize, bool);
    /// Data-section bytes for a jump table with `cases` entries.
    fn jump_table_data(&self, cases: usize) -> usize;
}

/// Per-function compilation result.
#[derive(Clone, Debug)]
pub struct FuncCode {
    /// Function name.
    pub name: String,
    /// Encoded code bytes.
    pub code_size: usize,
    /// Machine instructions emitted.
    pub insts: usize,
}

/// A "linked executable" produced for one target: sizes of all sections.
#[derive(Clone, Debug)]
pub struct Binary {
    /// Target short name.
    pub target: &'static str,
    /// Per-function code.
    pub funcs: Vec<FuncCode>,
    /// Total code bytes.
    pub code_size: usize,
    /// Data section (globals + jump tables + EH tables).
    pub data_size: usize,
    /// Header + symbol/relocation overhead.
    pub overhead: usize,
    /// Grand total.
    pub total: usize,
}

/// Fixed executable-header size (ELF-header-plus-program-headers scale).
const HEADER: usize = 84;
/// Per-external-symbol table cost.
const SYM_COST: usize = 18;

/// Compile (size) a whole module for `target`.
pub fn compile_module(m: &Module, target: &dyn Target) -> Binary {
    let budget = target.reg_budget();
    let mut funcs = Vec::new();
    let mut code_size = 0usize;
    let mut table_data = 0usize;
    let mut invokes = 0usize;
    for (fid, f) in m.funcs() {
        if f.is_declaration() {
            continue;
        }
        let mf = lower_function(m, fid, budget);
        let mut size = 0usize;
        let mut insts = 0usize;
        for block in &mf.blocks {
            let mut k = 0;
            while k < block.len() {
                let next = block.get(k + 1);
                let (bytes, fused) = target.size_inst(&block[k], next);
                size += bytes;
                insts += 1;
                k += if fused { 2 } else { 1 };
            }
        }
        // Jump tables & EH entries.
        for iid in f.inst_ids_in_order() {
            match f.inst(iid) {
                Inst::Switch { cases, .. } => table_data += target.jump_table_data(cases.len()),
                Inst::Invoke { .. } => invokes += 1,
                _ => {}
            }
        }
        code_size += size;
        funcs.push(FuncCode {
            name: mf.name,
            code_size: size,
            insts,
        });
    }
    // Data section: globals at their layout sizes.
    let mut data_size = 0usize;
    for (_, g) in m.globals() {
        if !g.is_declaration() {
            data_size += m.types.size_of(g.value_ty) as usize;
        }
    }
    data_size += table_data + invokes * 8; // landing-pad table entries
                                           // Symbols: externally visible definitions and all declarations.
    let n_syms = m
        .funcs()
        .filter(|(_, f)| matches!(f.linkage, lpat_core::Linkage::External))
        .count()
        + m.globals()
            .filter(|(_, g)| matches!(g.linkage, lpat_core::Linkage::External))
            .count();
    let overhead = HEADER + n_syms * SYM_COST;
    Binary {
        target: target.short_name(),
        code_size,
        data_size,
        overhead,
        total: code_size + data_size + overhead,
        funcs,
    }
}
