//! Golden encoding fixtures.
//!
//! Two layers, matching the two kinds of encoder in this crate:
//!
//! * **Byte-exact word fixtures** for the executable single-pass backend
//!   (`fast`): each opcode family is pinned to the exact `u32` words
//!   `translate_fast` emits for a small fixture function. These words are
//!   *executed* by `lpat_vm::native`, so any encoding drift is a
//!   semantics change and must show up here as a conscious diff, not
//!   silently. The expected arrays were transcribed from a verified run
//!   and spot-checked against the field accessors in [`enc`].
//! * **Size-model fixtures** for the offline `cisc32`/`risc32` encoders:
//!   those model instruction-encoding *density* (Figure 5), not
//!   execution, so their goldens are exact section sizes.

use lpat_codegen::fast::{enc, translate_fast, FastEnv, FastFunc};
use lpat_codegen::{compile_module, Cisc32, Risc32};

/// Translate `@name` under a fixed synthetic address layout so function
/// and global addresses — and therefore the golden words — are stable.
fn translate(src: &str, name: &str) -> FastFunc {
    let m = lpat_asm::parse_module("t", src).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let fid = m.func_by_name(name).unwrap();
    let env = FastEnv {
        func_addr: &|f| 0x1000 + (f.index() as u32) * 16,
        global_addr: &|i| Some(0x2000 + (i as u32) * 64),
        guarded: &|_| false,
    };
    translate_fast(&m, fid, &env).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Render words as `op:word` pairs for failure messages.
fn dis(words: &[u32]) -> String {
    words
        .iter()
        .map(|&w| format!("{:02x}:{:08x}", enc::op(w), w))
        .collect::<Vec<_>>()
        .join(" ")
}

#[track_caller]
fn assert_words(ff: &FastFunc, expect: &[u32]) {
    assert_eq!(
        ff.words,
        expect,
        "\n  got:    {}\n  expect: {}",
        dis(&ff.words),
        dis(expect)
    );
}

/// Opcode of every non-[`enc::ACCT`] word, in order — the family shape
/// without the operand detail, so failures read as a diff of mnemonics.
fn ops(ff: &FastFunc) -> Vec<u8> {
    ff.words
        .iter()
        .map(|&w| enc::op(w))
        .filter(|&o| o != enc::ACCT)
        .collect()
}

#[test]
fn golden_alu_family() {
    // Three-address R-format for every two-operand ALU op; each IR
    // instruction is preceded by its ACCT fuel word.
    let ff = translate(
        "define int @alu(int %a, int %b) {
e:
  %s = add int %a, %b
  %d = sub int %s, %b
  %m = mul int %d, %b
  %x = xor int %m, %b
  %o = or int %x, %b
  %n = and int %o, %b
  ret int %n
}",
        "alu",
    );
    assert_words(
        &ff,
        &[
            0x00000010, 0x012ac800, // acct; add  r5, r11(%a), r4(%b)
            0x00000011, 0x02314800, // acct; sub  r6, r5, r4
            0x00000012, 0x03398800, // acct; mul  r7, r6, r4
            0x00000017, 0x0741c800, // acct; xor  r8, r7, r4
            0x00000016, 0x064a0800, // acct; or   r9, r8, r4
            0x00000015, 0x05524800, // acct; and  r10, r9, r4
            0x00000000, 0x2c02800b, // acct; ret  r10 (S32)
        ],
    );
    assert_eq!(
        ops(&ff),
        [
            enc::ADD,
            enc::SUB,
            enc::MUL,
            enc::XOR,
            enc::OR,
            enc::AND,
            enc::RET
        ]
    );
    assert_eq!(ff.n_slots, 0, "8 live values fit the 28 register homes");
    // Spot-check the R-format fields of the dependent chain: each op
    // reads the previous result in `ra` and the shared `%b` home in `rb`,
    // and results are allocated to consecutive homes from r5.
    let (add, sub) = (ff.words[1], ff.words[3]);
    assert_eq!(enc::op(add), enc::ADD);
    assert_eq!(enc::rd(add), 5);
    assert_eq!(enc::ra(sub), enc::rd(add), "sub reads add's result");
    assert_eq!(enc::rb(sub), enc::rb(add), "%b's home is shared");
}

#[test]
fn golden_shift_div_family() {
    // Shift amounts are register operands (masked at execution); the
    // constant amounts here materialise through LDI first. Signed `shr`
    // selects SRA, unsigned selects SRL; signed div/rem select DIVS/REMS.
    let ff = translate(
        "define int @shifts(int %a, uint %u) {
e:
  %l = shl int %a, 3
  %r = shr int %l, 2
  %q = shr uint %u, 1
  %c = cast uint %q to int
  %d = div int %r, %c
  %m = rem int %d, 7
  ret int %m
}",
        "shifts",
    );
    assert_words(
        &ff,
        &[
            0x00000018, 0x19100003,
            0x08228420, // acct; ldi r2, 3;  sll r4, r10(%a), r2 (width 32)
            0x00000019, 0x19100002, 0x0a290420, // acct; ldi r2, 2;  sra r5, r4, r2
            0x00000019, 0x19100001, 0x0932c420, // acct; ldi r2, 1;  srl r6, r11(%u), r2
            0x0000000e, 0x12398000, //             acct; mov r7, r6 (uint→int cast)
            0x00000013, 0x0b414e00, //             acct; divs r8, r5, r7
            0x00000014, 0x19100007, 0x0d4a0400, // acct; ldi r2, 7;  rems r9, r8, r2
            0x00000000, 0x2c02400b, //             acct; ret r9 (S32)
        ],
    );
    assert_eq!(
        ops(&ff),
        [
            enc::LDI,
            enc::SLL,
            enc::LDI,
            enc::SRA,
            enc::LDI,
            enc::SRL,
            enc::MOV,
            enc::DIVS,
            enc::LDI,
            enc::REMS,
            enc::RET
        ]
    );
}

#[test]
fn golden_cmp_branch_family() {
    // A compare used by a branch: CMP writes the flag register, CBNZ
    // consumes it with a paired fall-through BR word after it (the taken
    // path skips that word).
    let ff = translate(
        "define bool @cmp(int %a, int %b) {
e:
  %lt = setlt int %a, %b
  br bool %lt, label %t, label %f
t:
  ret bool %lt
f:
  %eq = seteq int %a, %b
  ret bool %eq
}",
        "cmp",
    );
    assert_words(
        &ff,
        &[
            0x0000001c, 0x0f214c02, // acct; cmp.lt r4, r5(%a), r6(%b)
            0x00000001, 0x29010000, 0x28000001, // acct; cbnz r4 → edge 0; br edge 1
            0x00000000, 0x2c010001, // acct; ret r4 (Bool)
            0x0000001a, 0x0f394c00, // acct; cmp.eq r7, r5, r6
            0x00000000, 0x2c01c001, // acct; ret r7 (Bool)
        ],
    );
    assert_eq!(
        ops(&ff),
        [enc::CMP, enc::CBNZ, enc::BR, enc::RET, enc::CMP, enc::RET]
    );
    // CBNZ names edge 0; its paired fall-through BR names edge 1.
    assert_eq!(ff.edges.len(), 2);
    assert_eq!(enc::uimm14(ff.words[3]), 0);
    assert_eq!(ff.words[4] & 0x00FF_FFFF, 1);
}

#[test]
fn golden_immediate_family() {
    // Small constants ride LDI's signed 14-bit immediate; wide constants
    // split into LUI (high 19 bits) + ORI (low 13 bits):
    // 123456789 = 0x75BCD15 = (0x3ADE << 13) | 0xD15.
    let ff = translate(
        "define int @imm(int %a) {
e:
  %s = add int %a, 11
  %b = add int %s, 123456789
  ret int %b
}",
        "imm",
    );
    assert_words(
        &ff,
        &[
            0x00000010, 0x1910000b, 0x01218400, // acct; ldi r2, 11;  add r4, r6(%a), r2
            0x00000010, 0x1a103ade, 0x1b108d15,
            0x01290400, // acct; lui r2, 0x3ade; ori r2, r2, 0xd15; add r5, r4, r2
            0x00000000, 0x2c01400b, //             acct; ret r5 (S32)
        ],
    );
    assert_eq!(
        ops(&ff),
        [enc::LDI, enc::ADD, enc::LUI, enc::ORI, enc::ADD, enc::RET]
    );
    // The LUI/ORI pair reassembles exactly the constant's low 32 bits.
    let (lui, ori) = (ff.words[4], ff.words[5]);
    assert_eq!(enc::op(lui), enc::LUI);
    assert_eq!(enc::op(ori), enc::ORI);
    assert_eq!((lui & 0x7FFFF) << 13 | (ori & 0x1FFF), 123_456_789);
}

#[test]
fn golden_memory_family() {
    // Typed LD/ST: the class code rides the R-format extra field so the
    // emulator reproduces the interpreter's exact width/sign semantics.
    let ff = translate(
        "define int @mem(int* %p, int %v) {
e:
  store int %v, int* %p
  %r = load int* %p
  ret int %r
}",
        "mem",
    );
    assert_words(
        &ff,
        &[
            0x0000000a, 0x21010c05, // acct; st [r4(%p)], r6(%v)  (class S32)
            0x00000009, 0x20290005, // acct; ld r5, [r4]  (class S32)
            0x00000000, 0x2c01400b, // acct; ret r5 (S32)
        ],
    );
    assert_eq!(ops(&ff), [enc::ST, enc::LD, enc::RET]);
}

#[test]
fn golden_alloc_family() {
    // ALLOC's extra-field flag bits select stack vs. heap and count-one
    // vs. counted; FREE releases a heap cell.
    let ff = translate(
        "define int @alloc(uint %n) {
e:
  %a = alloca int
  store int 7, int* %a
  %h = malloc int, uint %n
  free int* %h
  %r = load int* %a
  ret int %r
}",
        "alloc",
    );
    assert_words(
        &ff,
        &[
            0x00000008, 0x19100004,
            0x22200403, // acct; ldi r2, 4;  alloc r4, r2 (stack, count-one)
            0x0000000a, 0x19100007, 0x21010405, // acct; ldi r2, 7;  st [r4], r2 (S32)
            0x00000006, 0x19100004,
            0x2229c404, // acct; ldi r2, 4;  alloc r5, r2 × r7(%n) (heap, unsigned count)
            0x00000007, 0x23014000, //             acct; free r5
            0x00000009, 0x20310005, //             acct; ld r6, [r4] (S32)
            0x00000000, 0x2c01800b, //             acct; ret r6 (S32)
        ],
    );
    assert_eq!(
        ops(&ff),
        [
            enc::LDI,
            enc::ALLOC,
            enc::LDI,
            enc::ST,
            enc::LDI,
            enc::ALLOC,
            enc::FREE,
            enc::LD,
            enc::RET
        ]
    );
    // Stack alloca carries flag bit 1; the heap malloc with an unsigned
    // register count carries bit 4 (and not bit 2: the count is live).
    let (stack, heap) = (ff.words[2], ff.words[8]);
    assert_eq!(enc::extra(stack) & 1, 1);
    assert_eq!(enc::extra(heap) & 1, 0);
    assert_eq!(enc::extra(heap) & 4, 4);
}

#[test]
fn golden_control_flow_family() {
    // A counted loop: φs become edge copies (no words), branches name
    // edge-table entries, and every block's first word is an OSR entry.
    let ff = translate(
        "define int @flow(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %c = setlt int %i, %n
  br bool %c, label %b, label %x
b:
  %i2 = add int %i, 1
  br label %h
x:
  ret int %i
}",
        "flow",
    );
    assert_words(
        &ff,
        &[
            0x00000001, 0x28000000, // acct; br edge 0  (e → h, copies 0 → %i)
            0x0000001c, 0x0f290e02, // acct; cmp.lt r5, r4(%i), r7(%n)
            0x00000001, 0x29014001, 0x28000002, // acct; cbnz r5 → edge 1; br edge 2
            0x00000010, 0x19100001, 0x01310400, // acct; ldi r2, 1;  add r6, r4, r2
            0x00000001, 0x28000003, // acct; br edge 3  (back-edge b → h)
            0x00000000, 0x2c01000b, // acct; ret r4 (S32)
        ],
    );
    assert_eq!(ff.block_word.len(), 4);
    // The φ web keeps one home for %i across iterations: the back-edge
    // copies %i2 into it.
    let back = ff.edges.iter().find(|e| e.back).expect("loop back-edge");
    assert_eq!((back.from, back.to), (2, 1));
    assert_eq!(back.copies.len(), 1);
}

#[test]
fn golden_call_ret_family() {
    // Calls are one CALLD word naming an out-of-line descriptor; the
    // return value class rides RET's immediate bits.
    let ff = translate(
        "define int @callee(int %x) {
e:
  %r = mul int %x, 3
  ret int %r
}
define int @call(int %a) {
e:
  %r = call int @callee(int %a)
  ret int %r
}",
        "call",
    );
    assert_words(
        &ff,
        &[
            0x0000000d, 0x2b000000, // acct; calld desc 0
            0x00000000, 0x2c01000b, // acct; ret r4 (S32)
        ],
    );
    assert_eq!(ops(&ff), [enc::CALLD, enc::RET]);
    assert_eq!(ff.calls.len(), 1);
    let c = &ff.calls[0];
    assert_eq!(c.args.len(), 1);
    assert!(c.dst.is_some(), "call result is used");
    assert!(c.eh.is_none(), "plain call, not invoke");
}

#[test]
fn golden_switch_unwind_family() {
    // SWITCH names an out-of-line case table; UNWIND is a bare E-word.
    let ff = translate(
        "define int @switch(int %x) {
e:
  switch int %x, label %d [ int 1, label %a int 2, label %b ]
a:
  ret int 10
b:
  ret int 20
d:
  unwind
}",
        "switch",
    );
    assert_words(
        &ff,
        &[
            0x00000002, 0x2a010000, // acct; switch r4, table 0
            0x00000000, 0x1908000a, 0x2c00400b, // acct; ldi r1, 10;  ret r1 (S32)
            0x00000000, 0x19080014, 0x2c00400b, // acct; ldi r1, 20;  ret r1 (S32)
            0x00000004, 0x2d000000, // acct; unwind
        ],
    );
    assert_eq!(ff.switches.len(), 1);
    let sw = &ff.switches[0];
    assert_eq!(sw.cases.iter().map(|&(v, _)| v).collect::<Vec<_>>(), [1, 2]);
}

// ---------------------------------------------------------------------
// Size-model goldens: the offline cisc32/risc32 encoders are density
// models, so their fixture is exact section sizes for a fixed module.
// ---------------------------------------------------------------------

const SIZE_FIXTURE: &str = "
@table = global [64 x int] zeroinitializer
define int @main(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, %n
  br bool %c, label %b, label %x
b:
  %p = getelementptr [64 x int]* @table, long 0, int %i
  %v = load int* %p
  %t = mul int %v, 3
  %s2 = add int %s, %t
  %i2 = add int %i, 1
  br label %h
x:
  ret int %s
}";

#[test]
fn golden_size_models() {
    let m = lpat_asm::parse_module("t", SIZE_FIXTURE).unwrap();
    m.verify().unwrap();
    let cisc = compile_module(&m, &Cisc32);
    let risc = compile_module(&m, &Risc32);
    assert_eq!(
        (cisc.code_size, cisc.data_size, cisc.overhead, cisc.total),
        (41, 256, 120, 417),
        "cisc32 size model drifted"
    );
    assert_eq!(
        (risc.code_size, risc.data_size, risc.overhead, risc.total),
        (92, 256, 120, 468),
        "risc32 size model drifted"
    );
}
