//! Reassociation: canonicalize commutative expressions so that constants
//! sink to the right and constant-operand chains expose folding
//! opportunities — the paper singles out reassociation as one of the
//! optimizations explicit `getelementptr` address arithmetic enables
//! (§2.2).
//!
//! `(x + c1) + c2` becomes `x + (c1 + c2)` (folded by `instsimplify`), and
//! `c + x` becomes `x + c`.

use lpat_core::fold::fold_bin;
use lpat_core::{FuncId, Inst, Module, Value};

use crate::pm::Pass;

/// The reassociation pass.
#[derive(Default)]
pub struct Reassociate {
    rewritten: usize,
}

impl Pass for Reassociate {
    fn name(&self) -> &'static str {
        "reassociate"
    }
    fn run(&mut self, m: &mut Module) -> bool {
        let mut changed = false;
        for fid in m.func_ids().collect::<Vec<_>>() {
            let n = reassociate_function(m, fid);
            self.rewritten += n;
            changed |= n > 0;
        }
        changed
    }
    fn stats(&self) -> String {
        format!("rewrote {} expressions", self.rewritten)
    }
}

/// Reassociate one function; returns rewritten instruction count.
pub fn reassociate_function(m: &mut Module, fid: FuncId) -> usize {
    if m.func(fid).is_declaration() {
        return 0;
    }
    let mut rewritten = 0;
    let ids: Vec<lpat_core::InstId> = m.func(fid).inst_ids_in_order().collect();
    for iid in ids {
        let f = m.func(fid);
        let Inst::Bin { op, lhs, rhs } = f.inst(iid).clone() else {
            continue;
        };
        if !op.is_commutative() || m.types.is_float(f.inst_ty(iid)) {
            continue;
        }
        let is_const = |v: Value| matches!(v, Value::Const(_));
        // c ⊕ x  →  x ⊕ c
        if is_const(lhs) && !is_const(rhs) {
            *m.func_mut(fid).inst_mut(iid) = Inst::Bin {
                op,
                lhs: rhs,
                rhs: lhs,
            };
            rewritten += 1;
            continue;
        }
        // (x ⊕ c1) ⊕ c2  →  x ⊕ (c1 ⊕ c2)
        if let (Value::Inst(inner_id), Value::Const(c2)) = (lhs, rhs) {
            let f = m.func(fid);
            if let Inst::Bin {
                op: iop,
                lhs: x,
                rhs: Value::Const(c1),
            } = f.inst(inner_id).clone()
            {
                if iop == op {
                    let (a, b) = (m.consts.get(c1).clone(), m.consts.get(c2).clone());
                    if let Some(folded) = fold_bin(&mut m.consts, op, &a, &b) {
                        let fc = m.consts.intern(folded);
                        *m.func_mut(fid).inst_mut(iid) = Inst::Bin {
                            op,
                            lhs: x,
                            rhs: Value::Const(fc),
                        };
                        rewritten += 1;
                    }
                }
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn constants_sink_right_and_chains_fold() {
        let mut m = parse_module(
            "t",
            "
define int @f(int %x) {
e:
  %a = add int 5, %x
  %b = add int %a, 7
  ret int %b
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let n = reassociate_function(&mut m, fid);
        assert_eq!(n, 2);
        m.verify().unwrap();
        let text = m.display();
        assert!(text.contains("add int %a0, 5"), "{text}");
        assert!(text.contains("add int %a0, 12"), "{text}");
        // After DCE the chain is one instruction.
        crate::scalar::dce_function(&mut m, fid);
        assert_eq!(m.func(fid).num_insts(), 2);
    }

    #[test]
    fn subtraction_untouched() {
        let mut m = parse_module(
            "t",
            "define int @f(int %x) {\ne:\n  %a = sub int 5, %x\n  ret int %a\n}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(reassociate_function(&mut m, fid), 0);
    }
}
