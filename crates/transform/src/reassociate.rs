//! Reassociation: canonicalize commutative expressions so that constants
//! sink to the right and constant-operand chains expose folding
//! opportunities — the paper singles out reassociation as one of the
//! optimizations explicit `getelementptr` address arithmetic enables
//! (§2.2).
//!
//! `(x + c1) + c2` becomes `x + (c1 + c2)` (folded by `instsimplify`), and
//! `c + x` becomes `x + c`.

use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::fold::fold_bin;
use lpat_core::{FuncId, Inst, Module, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;

/// The reassociation pass.
#[derive(Default)]
pub struct Reassociate {
    rewritten: AtomicUsize,
}

impl FunctionPass for Reassociate {
    fn name(&self) -> &'static str {
        "reassociate"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let n = reassociate_unit(u);
        self.rewritten.fetch_add(n, Ordering::Relaxed);
        // Rewrites operands in place; CFG and calls untouched.
        PassEffect::from_change(n > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "rewrote {} expressions",
            self.rewritten.load(Ordering::Relaxed)
        )
    }
}

/// Reassociate one function; returns rewritten instruction count.
pub fn reassociate_function(m: &mut Module, fid: FuncId) -> usize {
    crate::fpm::with_unit(m, fid, reassociate_unit)
}

/// Reassociate against a [`FuncUnit`]; returns rewritten instruction count.
pub fn reassociate_unit(u: &mut FuncUnit<'_>) -> usize {
    if u.func.is_declaration() {
        return 0;
    }
    let mut rewritten = 0;
    let ids: Vec<lpat_core::InstId> = u.func.inst_ids_in_order().collect();
    for iid in ids {
        let f = &*u.func;
        let Inst::Bin { op, lhs, rhs } = f.inst(iid).clone() else {
            continue;
        };
        if !op.is_commutative() || u.types.is_float(f.inst_ty(iid)) {
            continue;
        }
        let is_const = |v: Value| matches!(v, Value::Const(_));
        // c ⊕ x  →  x ⊕ c
        if is_const(lhs) && !is_const(rhs) {
            *u.func.inst_mut(iid) = Inst::Bin {
                op,
                lhs: rhs,
                rhs: lhs,
            };
            rewritten += 1;
            continue;
        }
        // (x ⊕ c1) ⊕ c2  →  x ⊕ (c1 ⊕ c2)
        if let (Value::Inst(inner_id), Value::Const(c2)) = (lhs, rhs) {
            let f = &*u.func;
            if let Inst::Bin {
                op: iop,
                lhs: x,
                rhs: Value::Const(c1),
            } = f.inst(inner_id).clone()
            {
                if iop == op {
                    let (a, b) = (u.consts.get(c1).clone(), u.consts.get(c2).clone());
                    if let Some(folded) = fold_bin(u.consts, op, &a, &b) {
                        let fc = u.consts.intern(folded);
                        *u.func.inst_mut(iid) = Inst::Bin {
                            op,
                            lhs: x,
                            rhs: Value::Const(fc),
                        };
                        rewritten += 1;
                    }
                }
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn constants_sink_right_and_chains_fold() {
        let mut m = parse_module(
            "t",
            "
define int @f(int %x) {
e:
  %a = add int 5, %x
  %b = add int %a, 7
  ret int %b
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let n = reassociate_function(&mut m, fid);
        assert_eq!(n, 2);
        m.verify().unwrap();
        let text = m.display();
        assert!(text.contains("add int %a0, 5"), "{text}");
        assert!(text.contains("add int %a0, 12"), "{text}");
        // After DCE the chain is one instruction.
        crate::scalar::dce_function(&mut m, fid);
        assert_eq!(m.func(fid).num_insts(), 2);
    }

    #[test]
    fn subtraction_untouched() {
        let mut m = parse_module(
            "t",
            "define int @f(int %x) {\ne:\n  %a = sub int 5, %x\n  ret int %a\n}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(reassociate_function(&mut m, fid), 0);
    }
}
