//! Link-time interprocedural optimizations (paper §3.3, Table 2):
//! internalization, aggressive dead-global & dead-function elimination
//! (DGE), dead-argument & dead-return-value elimination (DAE), and
//! interprocedural constant propagation (IPCP).

use std::collections::{HashMap, HashSet};

use lpat_analysis::{CallGraph, PreservedAnalyses};
use lpat_core::{Const, ConstId, FuncId, GlobalId, Inst, InstId, Linkage, Module, Value};

use crate::pm::{ModulePass, PassContext, PassEffect};

// ----------------------------------------------------------------------
// Internalize
// ----------------------------------------------------------------------

/// After whole-program linking, only the entry point needs external
/// linkage; everything else becomes internal, unlocking the aggressive IPO
/// passes.
pub struct Internalize {
    /// Symbols to keep external (default: `main`).
    pub keep: Vec<String>,
    count: usize,
}

impl Default for Internalize {
    fn default() -> Self {
        Internalize {
            keep: vec!["main".to_string()],
            count: 0,
        }
    }
}

impl ModulePass for Internalize {
    fn name(&self) -> &'static str {
        "internalize"
    }
    fn run(&mut self, m: &mut Module, _cx: &mut PassContext) -> PassEffect {
        let mut changed = false;
        for fid in m.func_ids().collect::<Vec<_>>() {
            let f = m.func_mut(fid);
            if !f.is_declaration()
                && matches!(f.linkage, Linkage::External)
                && !self.keep.contains(&f.name)
            {
                f.linkage = Linkage::Internal;
                self.count += 1;
                changed = true;
            }
        }
        for gid in 0..m.num_globals() {
            let g = m.global_mut(GlobalId::from_index(gid));
            if !g.is_declaration()
                && matches!(g.linkage, Linkage::External)
                && !self.keep.contains(&g.name)
            {
                g.linkage = Linkage::Internal;
                self.count += 1;
                changed = true;
            }
        }
        // Only linkage flags change; bodies, CFGs and call edges are intact.
        PassEffect::from_change(changed, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!("internalized {} symbols", self.count)
    }
}

// ----------------------------------------------------------------------
// DGE — aggressive dead global (variable & function) elimination
// ----------------------------------------------------------------------

/// Aggressive dead-global elimination: assumes objects are dead until
/// proven reachable from an external root, so dead cycles are deleted too
/// (paper footnote 9).
#[derive(Default)]
pub struct Dge {
    /// Functions eliminated.
    pub funcs_removed: usize,
    /// Global variables eliminated.
    pub globals_removed: usize,
}

impl ModulePass for Dge {
    fn name(&self) -> &'static str {
        "dge"
    }
    fn run(&mut self, m: &mut Module, _cx: &mut PassContext) -> PassEffect {
        let (f, g) = run_dge(m);
        self.funcs_removed += f;
        self.globals_removed += g;
        // Deleting functions renumbers ids: every cached analysis is stale.
        PassEffect::from_change(f + g > 0, PreservedAnalyses::none())
    }
    fn stats(&self) -> String {
        format!(
            "eliminated {} functions and {} global variables",
            self.funcs_removed, self.globals_removed
        )
    }
}

/// Run DGE once; returns `(functions removed, globals removed)`.
pub fn run_dge(m: &mut Module) -> (usize, usize) {
    // Roots: external-linkage definitions and all declarations (their
    // addresses may be referenced by unseen code).
    let mut live_f: HashSet<FuncId> = HashSet::new();
    let mut live_g: HashSet<GlobalId> = HashSet::new();
    let mut work_f: Vec<FuncId> = Vec::new();
    let mut work_g: Vec<GlobalId> = Vec::new();
    for (fid, f) in m.funcs() {
        if matches!(f.linkage, Linkage::External) {
            live_f.insert(fid);
            work_f.push(fid);
        }
    }
    for (gid, g) in m.globals() {
        if matches!(g.linkage, Linkage::External) {
            live_g.insert(gid);
            work_g.push(gid);
        }
    }
    // Trace.
    loop {
        if let Some(fid) = work_f.pop() {
            let f = m.func(fid);
            for iid in f.inst_ids_in_order() {
                f.inst(iid).for_each_operand(|v| {
                    if let Value::Const(c) = v {
                        mark_const(m, c, &mut live_f, &mut live_g, &mut work_f, &mut work_g);
                    }
                });
            }
            continue;
        }
        if let Some(gid) = work_g.pop() {
            if let Some(init) = m.global(gid).init {
                mark_const(m, init, &mut live_f, &mut live_g, &mut work_f, &mut work_g);
            }
            continue;
        }
        break;
    }
    let fr = m.retain_functions(|f| live_f.contains(&f));
    let gr = m.retain_globals(|g| live_g.contains(&g));
    (fr, gr)
}

fn mark_const(
    m: &Module,
    c: ConstId,
    live_f: &mut HashSet<FuncId>,
    live_g: &mut HashSet<GlobalId>,
    work_f: &mut Vec<FuncId>,
    work_g: &mut Vec<GlobalId>,
) {
    match m.consts.get(c) {
        Const::FuncAddr(f) if live_f.insert(*f) => {
            work_f.push(*f);
        }
        Const::GlobalAddr(g) if live_g.insert(*g) => {
            work_g.push(*g);
        }
        Const::Array { elems, .. } => {
            for e in elems {
                mark_const(m, *e, live_f, live_g, work_f, work_g);
            }
        }
        Const::Struct { fields, .. } => {
            for e in fields {
                mark_const(m, *e, live_f, live_g, work_f, work_g);
            }
        }
        _ => {}
    }
}

// ----------------------------------------------------------------------
// DAE — dead argument & return value elimination
// ----------------------------------------------------------------------

/// Aggressive dead-argument and dead-return-value elimination for internal
/// functions whose address is never taken.
#[derive(Default)]
pub struct Dae {
    /// Arguments removed.
    pub args_removed: usize,
    /// Return values removed (function return type changed to void).
    pub rets_removed: usize,
}

impl ModulePass for Dae {
    fn name(&self) -> &'static str {
        "dae"
    }
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let cg = cx.am.call_graph(m).clone();
        let (a, r) = run_dae_with(m, &cg);
        self.args_removed += a;
        self.rets_removed += r;
        // Signature rewrites clone bodies into fresh functions and delete
        // the originals.
        PassEffect::from_change(a + r > 0, PreservedAnalyses::none())
    }
    fn stats(&self) -> String {
        format!(
            "eliminated {} arguments and {} return values",
            self.args_removed, self.rets_removed
        )
    }
}

/// Run DAE; returns `(arguments removed, return values removed)`.
///
/// One analysis sweep gathers every candidate (dead-argument masks from
/// each body, return-value liveness from one pass over all call sites);
/// the rewrites then proceed by *name*, since each rewrite renumbers
/// function ids.
pub fn run_dae(m: &mut Module) -> (usize, usize) {
    let cg = CallGraph::build(m);
    run_dae_with(m, &cg)
}

/// [`run_dae`] against a caller-provided (typically cached) call graph.
pub fn run_dae_with(m: &mut Module, cg: &CallGraph) -> (usize, usize) {
    let mut args_removed = 0;
    let mut rets_removed = 0;
    // One pass over all call sites: which functions' results are ever
    // used? (keyed by id now, carried by name across rewrites).
    let mut ret_used: HashSet<FuncId> = HashSet::new();
    for (_, cf) in m.funcs() {
        let uses = cf.use_counts();
        for uid in cf.inst_ids_in_order() {
            if let Inst::Call { callee, .. } | Inst::Invoke { callee, .. } = cf.inst(uid) {
                if uses[uid.index()] > 0 {
                    if let Value::Const(c) = callee {
                        if let Const::FuncAddr(t) = m.consts.get(*c) {
                            ret_used.insert(*t);
                        }
                    }
                }
            }
        }
    }
    // Candidates, by name (ids shift as rewrites delete old functions).
    let mut plan: Vec<(String, Vec<bool>, bool)> = Vec::new();
    for (fid, f) in m.funcs() {
        if f.is_declaration()
            || !matches!(f.linkage, Linkage::Internal)
            || cg.is_address_taken(fid)
            || f.is_varargs()
        {
            continue;
        }
        let mut used = vec![false; f.num_params()];
        for iid in f.inst_ids_in_order() {
            f.inst(iid).for_each_operand(|v| {
                if let Value::Arg(i) = v {
                    used[i as usize] = true;
                }
            });
        }
        let drop_ret = f.ret_type() != m.types.void() && !ret_used.contains(&fid);
        if used.iter().all(|&u| u) && !drop_ret {
            continue;
        }
        args_removed += used.iter().filter(|&&u| !u).count();
        if drop_ret {
            rets_removed += 1;
        }
        plan.push((f.name.clone(), used, drop_ret));
    }
    // Rewrites only *append* replacement functions, so ids stay stable
    // until the single batched deletion at the end.
    let mut retired: HashSet<FuncId> = HashSet::new();
    for (name, used, drop_ret) in plan {
        let fid = m.func_by_name(&name).expect("candidate still present");
        rewrite_signature(m, fid, &used, drop_ret);
        retired.insert(fid);
    }
    if !retired.is_empty() {
        m.retain_functions(|f| !retired.contains(&f));
    }
    (args_removed, rets_removed)
}

fn is_addr_of(m: &Module, v: Value, f: FuncId) -> bool {
    matches!(v, Value::Const(c) if matches!(m.consts.get(c), Const::FuncAddr(t) if *t == f))
}

/// Rebuild `fid`'s signature keeping only `used` arguments and optionally
/// dropping the return value, then rewrite the body and all call sites.
fn rewrite_signature(m: &mut Module, fid: FuncId, used: &[bool], drop_ret: bool) {
    // Map old arg index -> new.
    let mut map: Vec<Option<u32>> = Vec::with_capacity(used.len());
    let mut next = 0u32;
    for &u in used {
        if u {
            map.push(Some(next));
            next += 1;
        } else {
            map.push(None);
        }
    }
    let old = m.func(fid).clone();
    let new_params: Vec<lpat_core::TypeId> = old
        .params()
        .iter()
        .zip(used)
        .filter(|(_, &u)| u)
        .map(|(&t, _)| t)
        .collect();
    let ret = if drop_ret {
        m.types.void()
    } else {
        old.ret_type()
    };
    // Temporarily rename, create the replacement, then swap bodies.
    let name = old.name.clone();
    let tmp = format!("{name}$dae");
    m.rename_function(fid, &tmp);
    let new_fid = m.add_function(&name, &new_params, ret, false, old.linkage);
    // Copy the body, remapping arg references and (possibly sparse) old
    // instruction ids to the new dense layout.
    {
        let src = m.func(fid).clone();
        let void = m.types.void();
        let mut imap: HashMap<InstId, InstId> = HashMap::new();
        for (k, oi) in src.inst_ids_in_order().enumerate() {
            imap.insert(oi, InstId::from_index(k));
        }
        let fm = m.func_mut(new_fid);
        for _ in 0..src.num_blocks() {
            fm.add_block();
        }
        for bidx in src.block_ids() {
            for &oi in src.block_insts(bidx) {
                let mut inst = src.inst(oi).clone();
                let mut ty = src.inst_ty(oi);
                inst.map_operands(|v| match v {
                    Value::Arg(i) => Value::Arg(map[i as usize].expect("used arg")),
                    Value::Inst(d) => Value::Inst(imap[&d]),
                    other => other,
                });
                if drop_ret {
                    if let Inst::Ret(_) = inst {
                        inst = Inst::Ret(None);
                        ty = void;
                    }
                }
                let made = fm.new_inst(inst, ty);
                debug_assert_eq!(Some(&made), imap.get(&oi));
                let mut insts = fm.block_insts(bidx).to_vec();
                insts.push(made);
                fm.set_block_insts(bidx, insts);
            }
        }
    }
    // Rewrite every call site.
    let new_addr = m.consts.func_addr(new_fid);
    let void = m.types.void();
    for cid in m.func_ids().collect::<Vec<_>>() {
        let cf = m.func(cid);
        let mut patches: Vec<(InstId, Inst)> = Vec::new();
        for uid in cf.inst_ids_in_order() {
            let inst = cf.inst(uid);
            let (callee, args, dests) = match inst {
                Inst::Call { callee, args } => (*callee, args.clone(), None),
                Inst::Invoke {
                    callee,
                    args,
                    normal,
                    unwind,
                } => (*callee, args.clone(), Some((*normal, *unwind))),
                _ => continue,
            };
            if !is_addr_of(m, callee, fid) {
                continue;
            }
            let new_args: Vec<Value> = args
                .iter()
                .zip(used)
                .filter(|(_, &u)| u)
                .map(|(&a, _)| a)
                .collect();
            let new_inst = match dests {
                None => Inst::Call {
                    callee: Value::Const(new_addr),
                    args: new_args,
                },
                Some((normal, unwind)) => Inst::Invoke {
                    callee: Value::Const(new_addr),
                    args: new_args,
                    normal,
                    unwind,
                },
            };
            patches.push((uid, new_inst));
        }
        let cfm = m.func_mut(cid);
        for (uid, inst) in patches {
            *cfm.inst_mut(uid) = inst;
            if drop_ret {
                cfm.set_inst_ty(uid, void);
            }
        }
    }
    // The old function is now unreferenced; the caller batch-deletes it.
}

// ----------------------------------------------------------------------
// IPCP — interprocedural constant propagation
// ----------------------------------------------------------------------

/// Propagate constants into internal functions when every call site passes
/// the same constant for a parameter.
#[derive(Default)]
pub struct Ipcp {
    propagated: usize,
}

impl ModulePass for Ipcp {
    fn name(&self) -> &'static str {
        "ipcp"
    }
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let cg = cx.am.call_graph(m).clone();
        let n = run_ipcp_with(m, &cg);
        self.propagated += n;
        // Operand substitution only — but a propagated function address can
        // turn an indirect call direct, so don't keep the call graph.
        PassEffect::from_change(
            n > 0,
            PreservedAnalyses {
                cfg: true,
                call_graph: false,
            },
        )
    }
    fn stats(&self) -> String {
        format!("propagated {} constant arguments", self.propagated)
    }
}

/// Run IPCP once; returns number of parameters replaced by constants.
pub fn run_ipcp(m: &mut Module) -> usize {
    let cg = CallGraph::build(m);
    run_ipcp_with(m, &cg)
}

/// [`run_ipcp`] against a caller-provided (typically cached) call graph.
pub fn run_ipcp_with(m: &mut Module, cg: &CallGraph) -> usize {
    let mut count = 0;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func(fid);
        if f.is_declaration() || !matches!(f.linkage, Linkage::Internal) || cg.is_address_taken(fid)
        {
            continue;
        }
        // Gather, for each parameter, the set of constants passed.
        let nparams = f.num_params();
        let mut arg_consts: Vec<Option<ConstId>> = vec![None; nparams];
        let mut arg_bad = vec![false; nparams];
        let mut any_site = false;
        for (_, cf) in m.funcs() {
            for uid in cf.inst_ids_in_order() {
                let (callee, args) = match cf.inst(uid) {
                    Inst::Call { callee, args } => (*callee, args),
                    Inst::Invoke { callee, args, .. } => (*callee, args),
                    _ => continue,
                };
                if !is_addr_of(m, callee, fid) {
                    continue;
                }
                any_site = true;
                for (i, &a) in args.iter().enumerate().take(nparams) {
                    match a {
                        Value::Const(c) => match arg_consts[i] {
                            None => arg_consts[i] = Some(c),
                            Some(prev) if prev == c => {}
                            Some(_) => arg_bad[i] = true,
                        },
                        _ => arg_bad[i] = true,
                    }
                }
            }
        }
        if !any_site {
            continue;
        }
        for i in 0..nparams {
            if arg_bad[i] {
                continue;
            }
            if let Some(c) = arg_consts[i] {
                // Don't propagate undef or aggregates.
                if matches!(
                    m.consts.get(c),
                    Const::Undef(_) | Const::Array { .. } | Const::Struct { .. }
                ) {
                    continue;
                }
                m.func_mut(fid)
                    .replace_all_uses(Value::Arg(i as u32), Value::Const(c));
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn internalize_keeps_main() {
        let mut m = parse_module(
            "t",
            "
@data = global int 1
define void @helper() {
e:
  ret void
}
define int @main() {
e:
  ret int 0
}",
        )
        .unwrap();
        let mut p = Internalize::default();
        assert!(p.run(&mut m, &mut PassContext::default()).changed);
        assert!(matches!(
            m.func(m.func_by_name("helper").unwrap()).linkage,
            Linkage::Internal
        ));
        assert!(matches!(
            m.func(m.func_by_name("main").unwrap()).linkage,
            Linkage::External
        ));
        assert!(matches!(
            m.global(m.global_by_name("data").unwrap()).linkage,
            Linkage::Internal
        ));
    }

    #[test]
    fn dge_removes_dead_cycle() {
        let mut m = parse_module(
            "t",
            "
define internal void @a() {
e:
  call void @b()
  ret void
}
define internal void @b() {
e:
  call void @a()
  ret void
}
@dead_g = internal global int 7
define int @main() {
e:
  ret int 0
}",
        )
        .unwrap();
        let (f, g) = run_dge(&mut m);
        assert_eq!(f, 2, "mutually-recursive dead functions deleted");
        assert_eq!(g, 1);
        assert_eq!(m.num_funcs(), 1);
        m.verify().unwrap();
    }

    #[test]
    fn dge_keeps_vtable_referenced() {
        let mut m = parse_module(
            "t",
            "
define internal int @impl(int %x) {
e:
  ret int %x
}
@vt = constant [1 x int (int)*] [ int (int)* @impl ]
define int @main() {
e:
  ret int 0
}",
        )
        .unwrap();
        let (f, _) = run_dge(&mut m);
        assert_eq!(f, 0, "vtable keeps impl alive");
        m.verify().unwrap();
    }

    #[test]
    fn dae_removes_unused_arg_and_ret() {
        let mut m = parse_module(
            "t",
            "
define internal int @f(int %used, int %unused) {
e:
  %r = add int %used, 1
  ret int %r
}
define void @main() {
e:
  %x = call int @f(int 1, int 2)
  ret void
}",
        )
        .unwrap();
        let (a, r) = run_dae(&mut m);
        assert_eq!(a, 1);
        assert_eq!(r, 1);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let text = m.display();
        assert!(text.contains("define internal void @f(int %a0)"), "{text}");
        assert!(text.contains("call void @f(int 1)"), "{text}");
    }

    #[test]
    fn dae_keeps_used_returns() {
        let mut m = parse_module(
            "t",
            "
define internal int @f(int %x) {
e:
  ret int %x
}
define int @main() {
e:
  %v = call int @f(int 3)
  ret int %v
}",
        )
        .unwrap();
        let (a, r) = run_dae(&mut m);
        assert_eq!((a, r), (0, 0));
    }

    #[test]
    fn ipcp_propagates_common_constant() {
        let mut m = parse_module(
            "t",
            "
define internal int @f(int %x, int %y) {
e:
  %r = add int %x, %y
  ret int %r
}
define int @main(int %v) {
e:
  %a = call int @f(int 5, int %v)
  %b = call int @f(int 5, int 9)
  %c = add int %a, %b
  ret int %c
}",
        )
        .unwrap();
        let n = run_ipcp(&mut m);
        assert_eq!(n, 1, "only %x is constant at all sites");
        m.verify().unwrap();
        assert!(m.display().contains("add int 5, %a1"), "{}", m.display());
    }

    #[test]
    fn dae_rewrites_invoke_sites() {
        let mut m = parse_module(
            "t",
            "
define internal int @f(int %unused) {
e:
  ret int 0
}
define void @main() {
e:
  invoke void @wrap() to label %ok unwind label %h
ok:
  ret void
h:
  ret void
}
define internal void @wrap() {
e:
  %x = call int @f(int 9)
  ret void
}",
        )
        .unwrap();
        let (a, r) = run_dae(&mut m);
        assert!(a >= 1);
        assert!(r >= 1);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
    }
}
