//! CFG simplification: constant-fold terminators, delete unreachable
//! blocks, and merge straight-line block chains.

use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::{Const, FuncId, Inst, Module, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;
use crate::util::remove_unreachable_blocks;

/// The CFG simplification pass.
#[derive(Default)]
pub struct SimplifyCfg {
    folded: AtomicUsize,
    merged: AtomicUsize,
    removed: AtomicUsize,
}

impl FunctionPass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let mut changed = false;
        loop {
            let (f1, f2, f3) = simplify_cfg_unit(u);
            self.folded.fetch_add(f1, Ordering::Relaxed);
            self.removed.fetch_add(f2, Ordering::Relaxed);
            self.merged.fetch_add(f3, Ordering::Relaxed);
            if f1 + f2 + f3 == 0 {
                break;
            }
            changed = true;
        }
        // Any rewrite restructures the CFG and may delete blocks that
        // contained calls.
        PassEffect::from_change(changed, PreservedAnalyses::none())
    }
    fn stats(&self) -> String {
        format!(
            "folded {} branches, removed {} blocks, merged {} chains",
            self.folded.load(Ordering::Relaxed),
            self.removed.load(Ordering::Relaxed),
            self.merged.load(Ordering::Relaxed)
        )
    }
}

/// One round of CFG simplification; returns
/// `(branches folded, blocks removed, chains merged)`.
pub fn simplify_cfg_function(m: &mut Module, fid: FuncId) -> (usize, usize, usize) {
    crate::fpm::with_unit(m, fid, simplify_cfg_unit)
}

/// One round of CFG simplification against a [`FuncUnit`].
pub fn simplify_cfg_unit(u: &mut FuncUnit<'_>) -> (usize, usize, usize) {
    if u.func.is_declaration() {
        return (0, 0, 0);
    }
    let mut folded = 0;

    // 1. Constant-fold conditional branches and switches.
    {
        let f = &*u.func;
        let mut patches: Vec<(lpat_core::InstId, Inst)> = Vec::new();
        for b in f.block_ids() {
            let Some(t) = f.terminator(b) else { continue };
            match f.inst(t) {
                Inst::CondBr {
                    cond: Value::Const(c),
                    then_bb,
                    else_bb,
                } => {
                    if let Const::Bool(v) = u.consts.get(*c) {
                        let target = if *v { *then_bb } else { *else_bb };
                        let dropped = if *v { *else_bb } else { *then_bb };
                        patches.push((t, Inst::Br(target)));
                        // φ fix happens when the edge disappears; record by
                        // rewriting below.
                        let _ = dropped;
                    }
                }
                Inst::CondBr {
                    then_bb, else_bb, ..
                } if then_bb == else_bb => {
                    patches.push((t, Inst::Br(*then_bb)));
                }
                Inst::Switch {
                    val: Value::Const(c),
                    default,
                    cases,
                } => {
                    let target = cases
                        .iter()
                        .find(|(cc, _)| cc == c)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                    patches.push((t, Inst::Br(target)));
                }
                _ => {}
            }
        }
        if !patches.is_empty() {
            folded = patches.len();
            // Removing an edge b -> dropped requires dropping b's entry
            // from dropped's φs. Compute old edges per patch.
            let f = &*u.func;
            let mut phi_fixes: Vec<(lpat_core::BlockId, lpat_core::BlockId)> = Vec::new();
            for (t, new_term) in &patches {
                let old_succs = f.inst(*t).successors();
                let new_succs = new_term.successors();
                let block = f
                    .block_ids()
                    .find(|&b| f.terminator(b) == Some(*t))
                    .expect("terminator has a block");
                // One φ entry must go per lost edge *occurrence* (duplicate
                // edges count separately).
                let mut targets: Vec<lpat_core::BlockId> = old_succs.clone();
                for s in new_succs {
                    if let Some(pos) = targets.iter().position(|&x| x == s) {
                        targets.remove(pos);
                    }
                }
                for s in targets {
                    phi_fixes.push((s, block));
                }
            }
            let fm = &mut *u.func;
            for (t, new_term) in patches {
                *fm.inst_mut(t) = new_term;
            }
            for (s, pred) in phi_fixes {
                for &iid in fm.block_insts(s).to_vec().iter() {
                    if let Inst::Phi { incoming } = fm.inst_mut(iid) {
                        if let Some(pos) = incoming.iter().position(|(_, b)| *b == pred) {
                            incoming.remove(pos);
                        }
                    }
                }
            }
        }
    }

    // 2. Remove unreachable blocks.
    let before = u.func.num_blocks();
    remove_unreachable_blocks(u.func);
    let removed = before - u.func.num_blocks();

    // 3. Merge a block into its unique successor when that successor has a
    //    unique predecessor (splice the chain).
    let mut merged = 0;
    loop {
        let f = &*u.func;
        let preds = f.predecessors();
        let mut candidate = None;
        for b in f.block_ids() {
            let Some(t) = f.terminator(b) else { continue };
            if let Inst::Br(s) = f.inst(t) {
                let s = *s;
                if s != b && preds[s.index()].len() == 1 && s != f.entry() {
                    candidate = Some((b, t, s));
                    break;
                }
            }
        }
        let Some((b, t, s)) = candidate else { break };
        merged += 1;
        // φs in s have exactly one incoming (from b): replace by value.
        let f = &*u.func;
        let s_insts = f.block_insts(s).to_vec();
        let mut replacements: Vec<(lpat_core::InstId, Value)> = Vec::new();
        let mut keep: Vec<lpat_core::InstId> = Vec::new();
        for iid in s_insts {
            match f.inst(iid) {
                Inst::Phi { incoming } => {
                    assert_eq!(incoming.len(), 1, "single-pred block phi arity");
                    replacements.push((iid, incoming[0].0));
                }
                _ => keep.push(iid),
            }
        }
        let fm = &mut *u.func;
        for (iid, v) in &replacements {
            fm.replace_all_uses(Value::Inst(*iid), *v);
        }
        // Splice: b's insts minus terminator + s's kept insts.
        let mut b_insts = fm.block_insts(b).to_vec();
        b_insts.retain(|&i| i != t);
        b_insts.extend(keep);
        fm.set_block_insts(b, b_insts);
        fm.set_block_insts(s, Vec::new());
        // Successors of the old s now have pred b instead of s.
        let n = fm.num_inst_slots();
        for i in 0..n {
            let iid = lpat_core::InstId::from_index(i);
            if let Inst::Phi { incoming } = fm.inst_mut(iid) {
                for (_, pb) in incoming {
                    if *pb == s {
                        *pb = b;
                    }
                }
            }
        }
        // Drop the now-empty s.
        let keep_mask: Vec<bool> = (0..fm.num_blocks()).map(|i| i != s.index()).collect();
        fm.retain_blocks(&keep_mask);
    }

    (folded, removed, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn opt(src: &str) -> Module {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        loop {
            let (a, b, c) = simplify_cfg_function(&mut m, fid);
            if a + b + c == 0 {
                break;
            }
        }
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        m
    }

    #[test]
    fn folds_constant_branch_and_removes_dead_arm() {
        let m = opt("
define int @f() {
e:
  br bool true, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %p = phi int [ 1, %l ], [ 2, %r ]
  ret int %p
}");
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(m.func(fid).num_blocks(), 1);
        assert!(m.display().contains("ret int 1"), "{}", m.display());
    }

    #[test]
    fn folds_constant_switch() {
        let m = opt("
define int @f() {
e:
  switch int 2, label %d [ int 1, label %a int 2, label %b ]
a:
  ret int 10
b:
  ret int 20
d:
  ret int 30
}");
        assert!(m.display().contains("ret int 20"), "{}", m.display());
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(m.func(fid).num_blocks(), 1);
    }

    #[test]
    fn merges_chains() {
        let m = opt("
define int @f(int %x) {
e:
  %a = add int %x, 1
  br label %m1
m1:
  %b = add int %a, 2
  br label %m2
m2:
  %c = add int %b, 3
  ret int %c
}");
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(m.func(fid).num_blocks(), 1);
        assert_eq!(m.func(fid).num_insts(), 4);
    }

    #[test]
    fn keeps_loops_intact() {
        let src = "
define int @f(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %h ]
  %i2 = add int %i, 1
  %c = setlt int %i2, %n
  br bool %c, label %h, label %x
x:
  ret int %i2
}";
        let m = opt(src);
        let fid = m.func_by_name("f").unwrap();
        assert!(m.func(fid).num_blocks() >= 2);
        assert!(m.display().contains("phi"));
    }

    #[test]
    fn same_target_condbr_becomes_br() {
        let m = opt("
define int @f(bool %c) {
e:
  br bool %c, label %j, label %j
j:
  ret int 7
}");
        let text = m.display();
        assert!(!text.contains("br bool"), "{text}");
        assert!(text.contains("ret int 7"), "{text}");
    }
}
