//! Redundancy elimination: dominator-scoped value numbering of pure
//! expressions plus block-local load CSE and store-to-load forwarding.
//!
//! SSA form makes this a hash-and-dominate sweep — the "fast,
//! flow-insensitive algorithms achieve many of the benefits of
//! flow-sensitive ones" point of paper §2.1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::{BinOp, BlockId, CmpPred, FuncId, Inst, InstId, Module, TypeId, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;

/// The value-numbering pass.
#[derive(Default)]
pub struct Gvn {
    eliminated: AtomicUsize,
}

impl FunctionPass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let n = gvn_unit(u);
        self.eliminated.fetch_add(n, Ordering::Relaxed);
        // CFG untouched; only pure, non-call instructions are removed.
        PassEffect::from_change(n > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "eliminated {} redundant instructions",
            self.eliminated.load(Ordering::Relaxed)
        )
    }
}

#[derive(Hash, PartialEq, Eq, Clone)]
enum Key {
    Bin(BinOp, Value, Value),
    Cmp(CmpPred, Value, Value),
    Cast(Value, TypeId),
    Gep(Value, Vec<Value>),
}

/// Run value numbering on one function; returns eliminated count.
pub fn gvn_function(m: &mut Module, fid: FuncId) -> usize {
    crate::fpm::with_unit(m, fid, gvn_unit)
}

/// Value numbering against a [`FuncUnit`]; returns eliminated count.
pub fn gvn_unit(u: &mut FuncUnit<'_>) -> usize {
    if u.func.is_declaration() {
        return 0;
    }
    let dt = u.analyses.domtree(u.func);
    let mut exprs: HashMap<Key, (InstId, BlockId)> = HashMap::new();
    let mut repl: HashMap<InstId, Value> = HashMap::new();
    let resolve = |repl: &HashMap<InstId, Value>, mut v: Value| -> Value {
        while let Value::Inst(i) = v {
            match repl.get(&i) {
                Some(&n) => v = n,
                None => break,
            }
        }
        v
    };
    let rpo: Vec<BlockId> = dt.rpo().to_vec();
    for &b in &rpo {
        // Block-local memory state: last store value per pointer, and
        // loaded values per pointer. Any store or unknown call clobbers.
        let mut avail_loads: HashMap<Value, Value> = HashMap::new();
        for &iid in u.func.block_insts(b).to_vec().iter() {
            let inst = u.func.inst(iid).clone();
            let key = match &inst {
                Inst::Bin { op, lhs, rhs } => {
                    let (mut l, mut r) = (resolve(&repl, *lhs), resolve(&repl, *rhs));
                    if op.is_commutative() && r < l {
                        std::mem::swap(&mut l, &mut r);
                    }
                    Some(Key::Bin(*op, l, r))
                }
                Inst::Cmp { pred, lhs, rhs } => {
                    let (mut p, mut l, mut r) = (*pred, resolve(&repl, *lhs), resolve(&repl, *rhs));
                    if r < l {
                        std::mem::swap(&mut l, &mut r);
                        p = p.swapped();
                    }
                    Some(Key::Cmp(p, l, r))
                }
                Inst::Cast { val, to } => Some(Key::Cast(resolve(&repl, *val), *to)),
                Inst::Gep { ptr, indices } => Some(Key::Gep(
                    resolve(&repl, *ptr),
                    indices.iter().map(|&i| resolve(&repl, i)).collect(),
                )),
                Inst::Load { ptr } => {
                    let p = resolve(&repl, *ptr);
                    if let Some(&v) = avail_loads.get(&p) {
                        repl.insert(iid, v);
                    } else {
                        avail_loads.insert(p, Value::Inst(iid));
                    }
                    None
                }
                Inst::Store { val, ptr } => {
                    // A store invalidates every remembered load (it may
                    // alias), then makes its own value available.
                    avail_loads.clear();
                    avail_loads.insert(resolve(&repl, *ptr), resolve(&repl, *val));
                    None
                }
                Inst::Call { .. } | Inst::Invoke { .. } | Inst::Free(_) | Inst::VaArg { .. } => {
                    avail_loads.clear();
                    None
                }
                _ => None,
            };
            if let Some(key) = key {
                match exprs.get(&key) {
                    Some(&(def, db)) if dt.dominates(db, b) && def != iid => {
                        repl.insert(iid, Value::Inst(def));
                    }
                    _ => {
                        exprs.insert(key, (iid, b));
                    }
                }
            }
        }
    }
    if repl.is_empty() {
        return 0;
    }
    let count = repl.len();
    let fm = &mut *u.func;
    let n = fm.num_inst_slots();
    for i in 0..n {
        let iid = InstId::from_index(i);
        fm.inst_mut(iid).map_operands(|mut v| {
            while let Value::Inst(d) = v {
                match repl.get(&d) {
                    Some(&x) => v = x,
                    None => break,
                }
            }
            v
        });
    }
    let inst_blocks = fm.inst_blocks();
    for &iid in repl.keys() {
        if let Some(b) = inst_blocks[iid.index()] {
            fm.remove_inst(b, iid);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn opt(src: &str) -> (Module, usize) {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        let n = gvn_function(&mut m, fid);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        (m, n)
    }

    #[test]
    fn eliminates_common_subexpressions() {
        let (m, n) = opt("
define int @f(int %a, int %b) {
e:
  %x = add int %a, %b
  %y = add int %a, %b
  %z = add int %x, %y
  ret int %z
}");
        assert_eq!(n, 1);
        // %z becomes x + x.
        assert!(m.display().contains("add int %t0, %t0"), "{}", m.display());
    }

    #[test]
    fn commutative_canonicalization() {
        let (_, n) = opt("
define int @f(int %a, int %b) {
e:
  %x = add int %a, %b
  %y = add int %b, %a
  %z = add int %x, %y
  ret int %z
}");
        assert_eq!(n, 1);
    }

    #[test]
    fn dominating_expr_reused_across_blocks() {
        let (_, n) = opt("
define int @f(int %a, bool %c) {
e:
  %x = mul int %a, %a
  br bool %c, label %l, label %r
l:
  %y = mul int %a, %a
  ret int %y
r:
  ret int %x
}");
        assert_eq!(n, 1);
    }

    #[test]
    fn sibling_blocks_not_merged() {
        // Defs in sibling branches don't dominate each other.
        let (_, n) = opt("
define int @f(int %a, bool %c) {
e:
  br bool %c, label %l, label %r
l:
  %x = mul int %a, %a
  ret int %x
r:
  %y = mul int %a, %a
  ret int %y
}");
        assert_eq!(n, 0);
    }

    #[test]
    fn store_to_load_forwarding() {
        let (m, n) = opt("
define int @f(int* %p, int %v) {
e:
  store int %v, int* %p
  %x = load int* %p
  ret int %x
}");
        assert_eq!(n, 1);
        assert!(m.display().contains("ret int %a1"), "{}", m.display());
    }

    #[test]
    fn call_clobbers_loads() {
        let (_, n) = opt("
declare void @ext()
define int @f(int* %p) {
e:
  %x = load int* %p
  call void @ext()
  %y = load int* %p
  %z = add int %x, %y
  ret int %z
}");
        assert_eq!(n, 0, "call may write *p");
    }

    #[test]
    fn repeated_loads_cse_within_block() {
        let (_, n) = opt("
define int @f(int* %p) {
e:
  %x = load int* %p
  %y = load int* %p
  %z = add int %x, %y
  ret int %z
}");
        assert_eq!(n, 1);
    }

    #[test]
    fn gep_cse() {
        let (_, n) = opt("
%s = type { int, int }
define int @f(%s* %p) {
e:
  %a = getelementptr %s* %p, long 0, ubyte 1
  %b = getelementptr %s* %p, long 0, ubyte 1
  %x = load int* %a
  %y = load int* %b
  %z = add int %x, %y
  ret int %z
}");
        assert_eq!(n, 2, "gep + the second load");
    }
}
