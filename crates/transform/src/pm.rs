//! The two-level pass manager.
//!
//! Modeled on LLVM's new-pass-manager design, split into two layers:
//!
//! * [`ModulePass`] — a whole-module transformation. Interprocedural
//!   passes (internalize, inlining, DGE, ...) implement this directly.
//! * [`crate::fpm::FunctionPass`] — an intra-procedural transformation
//!   over one function, run across all functions (possibly in parallel)
//!   by [`crate::fpm::FunctionPassAdapter`], which itself is a
//!   `ModulePass`.
//!
//! Every pass returns a [`PassEffect`]: a change flag plus the
//! [`PreservedAnalyses`] set that drives the
//! [`lpat_analysis::AnalysisManager`] cache owned by the [`PassContext`].
//! The manager records a structured [`PipelineReport`] — per-pass and
//! per-function wall-clock, change flags, and analysis cache traffic —
//! which regenerates the paper's Table 2 and backs `lpatc --time-passes`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lpat_analysis::{AnalysisManager, CacheStats, PreservedAnalyses};
use lpat_core::Module;

/// What a pass did: whether it changed the module, and which analysis
/// classes survived it.
#[derive(Copy, Clone, Debug)]
pub struct PassEffect {
    /// Whether anything changed.
    pub changed: bool,
    /// Which cached analyses remain valid.
    pub preserved: PreservedAnalyses,
}

impl PassEffect {
    /// No change: everything preserved.
    pub fn unchanged() -> PassEffect {
        PassEffect {
            changed: false,
            preserved: PreservedAnalyses::all(),
        }
    }

    /// Changed, with the given preserved set.
    pub fn changed(preserved: PreservedAnalyses) -> PassEffect {
        PassEffect {
            changed: true,
            preserved,
        }
    }

    /// Convenience: changed-if with a preserved set used only on change
    /// (an unchanged pass preserves everything by definition).
    pub fn from_change(changed: bool, if_changed: PreservedAnalyses) -> PassEffect {
        if changed {
            PassEffect::changed(if_changed)
        } else {
            PassEffect::unchanged()
        }
    }
}

/// Shared state threaded through a pipeline run: the analysis cache and
/// the parallelism budget for function-pass stages.
pub struct PassContext {
    /// The analysis cache. Passes request analyses through this instead of
    /// recomputing them.
    pub am: AnalysisManager,
    /// Worker-thread budget for the function-pass executor (`>= 1`).
    pub jobs: usize,
}

impl PassContext {
    /// A context with an explicit job count, or the environment/default
    /// resolution when `None`: `LPAT_JOBS`, then available parallelism.
    pub fn new(jobs: Option<usize>) -> PassContext {
        PassContext {
            am: AnalysisManager::new(),
            jobs: jobs.unwrap_or_else(default_jobs).max(1),
        }
    }
}

impl Default for PassContext {
    fn default() -> PassContext {
        PassContext::new(None)
    }
}

/// The job count used when none is given explicitly: the `LPAT_JOBS`
/// environment variable, else `std::thread::available_parallelism`.
pub fn default_jobs() -> usize {
    std::env::var("LPAT_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A whole-module transformation.
pub trait ModulePass {
    /// Short, stable pass name (used in reports: `dge`, `dae`, `inline`).
    fn name(&self) -> &'static str;
    /// Run over the module.
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect;
    /// A human-readable statistics line (e.g. "eliminated 331 functions"),
    /// valid after `run`.
    fn stats(&self) -> String {
        String::new()
    }
    /// Structured sub-pass details of the last run, for composite passes
    /// (the function-pass adapter). Consumed by the pass manager.
    fn take_details(&mut self) -> PassDetails {
        PassDetails::default()
    }
}

/// Nested execution details a composite pass hands to the manager.
#[derive(Clone, Debug, Default)]
pub struct PassDetails {
    /// Per-sub-pass rows (durations summed across functions).
    pub sub: Vec<PassExecution>,
    /// Per-function rows (durations summed across sub-passes).
    pub functions: Vec<FuncTiming>,
}

/// Wall-clock attributed to one function by a function-pass stage.
#[derive(Clone, Debug)]
pub struct FuncTiming {
    /// Function name.
    pub name: String,
    /// Total time all sub-passes spent in this function.
    pub duration: Duration,
    /// Whether any sub-pass changed this function.
    pub changed: bool,
}

/// Record of one executed pass (possibly composite).
#[derive(Clone, Debug)]
pub struct PassExecution {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration. For a parallel function-pass stage the
    /// top-level row is elapsed time; its `sub` rows are CPU-time sums
    /// across functions and can exceed it.
    pub duration: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// The pass's statistics line.
    pub stats: String,
    /// Analysis cache traffic attributed to this pass.
    pub cache: CacheStats,
    /// Sub-pass rows for composite passes (empty otherwise).
    pub sub: Vec<PassExecution>,
    /// Per-function rows for function-pass stages (empty otherwise).
    pub functions: Vec<FuncTiming>,
}

/// Structured result of a pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// One row per executed pass, in order.
    pub passes: Vec<PassExecution>,
    /// Total analysis cache traffic of the run.
    pub cache: CacheStats,
    /// Elapsed wall-clock of the whole pipeline.
    pub total: Duration,
}

impl PipelineReport {
    /// Whether any pass reported a change.
    pub fn changed(&self) -> bool {
        self.passes.iter().any(|p| p.changed)
    }

    /// Render the report as the `--time-passes` table: one row per pass
    /// (sub-passes indented), with change flags and cache traffic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}  stats",
            "pass", "time", "chg", "hit", "miss", "inval"
        );
        for p in &self.passes {
            render_row(&mut out, p, 0);
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}",
            "TOTAL",
            format!("{:.1?}", self.total),
            if self.changed() { "*" } else { "" },
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
        );
        out
    }
}

fn render_row(out: &mut String, p: &PassExecution, depth: usize) {
    let name = format!("{:indent$}{}", "", p.name, indent = depth * 2);
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}  {}",
        name,
        format!("{:.1?}", p.duration),
        if p.changed { "*" } else { "" },
        p.cache.hits,
        p.cache.misses,
        p.cache.invalidations,
        p.stats,
    );
    for s in &p.sub {
        render_row(out, s, depth + 1);
    }
}

/// An ordered pipeline of module passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
    /// When set, the module is verified after every pass and the manager
    /// panics on the first verifier error — type mismatches are useful for
    /// detecting optimizer bugs (paper §2.2).
    pub verify_each: bool,
    /// Worker-thread budget for function-pass stages. `None` resolves via
    /// `LPAT_JOBS` / available parallelism at run time.
    pub jobs: Option<usize>,
}

impl PassManager {
    /// Create an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, p: impl ModulePass + 'static) -> &mut Self {
        self.passes.push(Box::new(p));
        self
    }

    /// Run all passes in order with a fresh [`PassContext`].
    ///
    /// # Panics
    ///
    /// Panics if `verify_each` is set and a pass breaks the module.
    pub fn run(&mut self, m: &mut Module) -> PipelineReport {
        let mut cx = PassContext::new(self.jobs);
        self.run_with(m, &mut cx)
    }

    /// Run all passes in order against an existing context, so analysis
    /// caches can persist across pipelines (the VM's reoptimizer reruns
    /// pipelines over its lifetime).
    pub fn run_with(&mut self, m: &mut Module, cx: &mut PassContext) -> PipelineReport {
        let run0 = Instant::now();
        let cache0 = cx.am.stats();
        let mut out = Vec::with_capacity(self.passes.len());
        for p in &mut self.passes {
            let pass_cache0 = cx.am.stats();
            let t0 = Instant::now();
            let effect = p.run(m, cx);
            let duration = t0.elapsed();
            cx.am.apply(&effect.preserved, m.num_funcs());
            if self.verify_each {
                if let Err(errs) = m.verify() {
                    panic!(
                        "verifier failed after pass '{}':\n{}",
                        p.name(),
                        errs.iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                }
            }
            let details = p.take_details();
            out.push(PassExecution {
                name: p.name(),
                duration,
                changed: effect.changed,
                stats: p.stats(),
                cache: cx.am.stats() - pass_cache0,
                sub: details.sub,
                functions: details.functions,
            });
        }
        PipelineReport {
            passes: out,
            cache: cx.am.stats() - cache0,
            total: run0.elapsed(),
        }
    }
}

/// Wrap a closure as a module pass (useful in tests and ad-hoc pipelines).
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F: FnMut(&mut Module) -> bool> FnPass<F> {
    /// Create a pass from a closure. The closure's change flag maps to a
    /// conservative `PreservedAnalyses::none()` when true.
    pub fn new(name: &'static str, f: F) -> FnPass<F> {
        FnPass { name, f }
    }
}

impl<F: FnMut(&mut Module) -> bool> ModulePass for FnPass<F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn run(&mut self, m: &mut Module, _cx: &mut PassContext) -> PassEffect {
        PassEffect::from_change((self.f)(m), PreservedAnalyses::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_order_and_times() {
        let mut m = Module::new("t");
        let mut pm = PassManager::new();
        pm.add(FnPass::new("a", |m: &mut Module| {
            m.name.push('a');
            true
        }));
        pm.add(FnPass::new("b", |m: &mut Module| {
            m.name.push('b');
            false
        }));
        let report = pm.run(&mut m);
        assert_eq!(m.name, "tab");
        assert_eq!(report.passes.len(), 2);
        assert!(report.passes[0].changed);
        assert!(!report.passes[1].changed);
        assert_eq!(report.passes[0].name, "a");
        assert!(report.changed());
        assert!(report.render().contains("TOTAL"));
    }

    #[test]
    fn jobs_resolution_prefers_explicit() {
        let cx = PassContext::new(Some(3));
        assert_eq!(cx.jobs, 3);
        assert!(PassContext::new(None).jobs >= 1);
    }
}
