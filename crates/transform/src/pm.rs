//! The two-level pass manager.
//!
//! Modeled on LLVM's new-pass-manager design, split into two layers:
//!
//! * [`ModulePass`] — a whole-module transformation. Interprocedural
//!   passes (internalize, inlining, DGE, ...) implement this directly.
//! * [`crate::fpm::FunctionPass`] — an intra-procedural transformation
//!   over one function, run across all functions (possibly in parallel)
//!   by [`crate::fpm::FunctionPassAdapter`], which itself is a
//!   `ModulePass`.
//!
//! Every pass returns a [`PassEffect`]: a change flag plus the
//! [`PreservedAnalyses`] set that drives the
//! [`lpat_analysis::AnalysisManager`] cache owned by the [`PassContext`].
//! The manager records a structured [`PipelineReport`] — per-pass and
//! per-function wall-clock, change flags, and analysis cache traffic —
//! which regenerates the paper's Table 2 and backs `lpatc --time-passes`.
//!
//! # Fault isolation
//!
//! The lifelong-optimization model (paper §3.6) runs the optimizer
//! against live programs, so a crashing or runaway pass must degrade
//! gracefully rather than take the process down. By default every module
//! pass executes under [`std::panic::catch_unwind`] against a snapshot of
//! the module; on a panic, a `--verify-each` failure, or a blown per-pass
//! wall-clock budget the snapshot is restored, every cached analysis is
//! invalidated (the restored functions reuse version numbers, so stale
//! entries could otherwise ABA-collide), a structured [`PassFault`] is
//! appended to the report, and the pipeline continues with the remaining
//! passes. Strict mode ([`PassManager::degrade`]` = false`,
//! `--no-degrade`) propagates the failure instead. Deterministic fault
//! *injection* — [`lpat_core::fault::FaultPlan`] — drives the whole
//! machinery from tests and from `LPAT_FAULTS`/`--inject-faults`.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use lpat_analysis::{AnalysisManager, CacheStats, PreservedAnalyses};
use lpat_core::fault::{self, FaultAction, FaultPlan};
use lpat_core::trace;
use lpat_core::Module;

/// What a pass did: whether it changed the module, and which analysis
/// classes survived it.
#[derive(Copy, Clone, Debug)]
pub struct PassEffect {
    /// Whether anything changed.
    pub changed: bool,
    /// Which cached analyses remain valid.
    pub preserved: PreservedAnalyses,
}

impl PassEffect {
    /// No change: everything preserved.
    pub fn unchanged() -> PassEffect {
        PassEffect {
            changed: false,
            preserved: PreservedAnalyses::all(),
        }
    }

    /// Changed, with the given preserved set.
    pub fn changed(preserved: PreservedAnalyses) -> PassEffect {
        PassEffect {
            changed: true,
            preserved,
        }
    }

    /// Convenience: changed-if with a preserved set used only on change
    /// (an unchanged pass preserves everything by definition).
    pub fn from_change(changed: bool, if_changed: PreservedAnalyses) -> PassEffect {
        if changed {
            PassEffect::changed(if_changed)
        } else {
            PassEffect::unchanged()
        }
    }
}

/// Shared state threaded through a pipeline run: the analysis cache, the
/// parallelism budget for function-pass stages, and the fault-isolation
/// policy the managers apply.
pub struct PassContext {
    /// The analysis cache. Passes request analyses through this instead of
    /// recomputing them.
    pub am: AnalysisManager,
    /// Worker-thread budget for the function-pass executor (`>= 1`).
    pub jobs: usize,
    /// Active fault-injection plan, if any. [`PassManager::run_with`]
    /// resolves this from the manager's own plan or the process-wide one.
    pub faults: Option<Arc<FaultPlan>>,
    /// Per-pass (and per-function-unit) wall-clock budget. A pass that
    /// exceeds it is rolled back with [`FaultCause::Timeout`].
    pub budget: Option<Duration>,
    /// Degrade mode: isolate faults via snapshot + rollback and continue
    /// (`true`, the default), or propagate them (`false`, `--no-degrade`).
    pub degrade: bool,
}

impl PassContext {
    /// A context with an explicit job count, or the environment/default
    /// resolution when `None`: `LPAT_JOBS`, then available parallelism.
    pub fn new(jobs: Option<usize>) -> PassContext {
        PassContext {
            am: AnalysisManager::new(),
            jobs: jobs.unwrap_or_else(default_jobs).max(1),
            faults: None,
            budget: None,
            degrade: true,
        }
    }
}

impl Default for PassContext {
    fn default() -> PassContext {
        PassContext::new(None)
    }
}

/// The job count used when none is given explicitly: the `LPAT_JOBS`
/// environment variable, else `std::thread::available_parallelism`.
pub fn default_jobs() -> usize {
    std::env::var("LPAT_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A whole-module transformation.
pub trait ModulePass {
    /// Short, stable pass name (used in reports: `dge`, `dae`, `inline`).
    fn name(&self) -> &'static str;
    /// Run over the module.
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect;
    /// A human-readable statistics line (e.g. "eliminated 331 functions"),
    /// valid after `run`.
    fn stats(&self) -> String {
        String::new()
    }
    /// Structured sub-pass details of the last run, for composite passes
    /// (the function-pass adapter). Consumed by the pass manager.
    fn take_details(&mut self) -> PassDetails {
        PassDetails::default()
    }
}

/// Why a pass (or one per-function unit of a function-pass stage) was
/// rolled back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// The pass panicked; the payload message is captured.
    Panic(String),
    /// `--verify-each` found the module broken after the pass.
    VerifyFailed(String),
    /// The pass exceeded the per-pass wall-clock budget.
    Timeout {
        /// The budget that was exceeded.
        budget: Duration,
    },
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCause::Panic(msg) => write!(f, "panic: {msg}"),
            FaultCause::VerifyFailed(msg) => write!(f, "verifier: {msg}"),
            FaultCause::Timeout { budget } => write!(f, "exceeded {budget:.1?} budget"),
        }
    }
}

/// Record of one isolated fault: the pass was rolled back and the
/// pipeline continued without its effect.
#[derive(Clone, Debug)]
pub struct PassFault {
    /// Name of the faulting pass.
    pub pass: String,
    /// The function whose unit faulted, for per-function stages
    /// (`None` for module-level faults).
    pub function: Option<String>,
    /// What went wrong.
    pub cause: FaultCause,
    /// Wall-clock spent in the pass before the rollback.
    pub elapsed: Duration,
}

impl std::fmt::Display for PassFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass '{}'", self.pass)?;
        if let Some(func) = &self.function {
            write!(f, " on @{func}")?;
        }
        write!(
            f,
            ": {} (rolled back after {:.1?})",
            self.cause, self.elapsed
        )
    }
}

/// Nested execution details a composite pass hands to the manager.
#[derive(Clone, Debug, Default)]
pub struct PassDetails {
    /// Per-sub-pass rows (durations summed across functions).
    pub sub: Vec<PassExecution>,
    /// Per-function rows (durations summed across sub-passes).
    pub functions: Vec<FuncTiming>,
    /// Per-function-unit faults isolated inside the composite pass.
    pub faults: Vec<PassFault>,
}

/// Wall-clock attributed to one function by a function-pass stage.
#[derive(Clone, Debug)]
pub struct FuncTiming {
    /// Function name.
    pub name: String,
    /// Total time all sub-passes spent in this function.
    pub duration: Duration,
    /// Whether any sub-pass changed this function.
    pub changed: bool,
}

/// Record of one executed pass (possibly composite).
#[derive(Clone, Debug)]
pub struct PassExecution {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration. For a parallel function-pass stage the
    /// top-level row is elapsed time; its `sub` rows are CPU-time sums
    /// across functions and can exceed it.
    pub duration: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// The pass's statistics line.
    pub stats: String,
    /// Analysis cache traffic attributed to this pass.
    pub cache: CacheStats,
    /// Sub-pass rows for composite passes (empty otherwise).
    pub sub: Vec<PassExecution>,
    /// Per-function rows for function-pass stages (empty otherwise).
    pub functions: Vec<FuncTiming>,
}

/// Structured result of a pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// One row per executed pass, in order.
    pub passes: Vec<PassExecution>,
    /// Total analysis cache traffic of the run.
    pub cache: CacheStats,
    /// Elapsed wall-clock of the whole pipeline.
    pub total: Duration,
    /// Faults isolated during the run (empty on a clean run). Each one
    /// means a pass was rolled back and the pipeline degraded to the
    /// remaining passes.
    pub faults: Vec<PassFault>,
}

impl PipelineReport {
    /// Whether any pass reported a change.
    pub fn changed(&self) -> bool {
        self.passes.iter().any(|p| p.changed)
    }

    /// Whether any pass was rolled back — the output is valid but some
    /// optimization was skipped.
    pub fn degraded(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Render the report as the `--time-passes` table: one row per pass
    /// (sub-passes indented), with change flags and cache traffic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}  stats",
            "pass", "time", "chg", "hit", "miss", "inval"
        );
        for p in &self.passes {
            render_row(&mut out, p, 0);
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}",
            "TOTAL",
            format!("{:.1?}", self.total),
            if self.changed() { "*" } else { "" },
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
        );
        if self.degraded() {
            let _ = writeln!(out, "faults ({} isolated):", self.faults.len());
            for f in &self.faults {
                let _ = writeln!(out, "  {f}");
            }
        }
        out
    }
}

fn render_row(out: &mut String, p: &PassExecution, depth: usize) {
    let name = format!("{:indent$}{}", "", p.name, indent = depth * 2);
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>3}  {:>6} {:>6} {:>6}  {}",
        name,
        format!("{:.1?}", p.duration),
        if p.changed { "*" } else { "" },
        p.cache.hits,
        p.cache.misses,
        p.cache.invalidations,
        p.stats,
    );
    for s in &p.sub {
        render_row(out, s, depth + 1);
    }
}

/// An ordered pipeline of module passes.
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
    /// When set, the module is verified after every pass. In degrade mode
    /// a verifier error rolls the pass back ([`FaultCause::VerifyFailed`]);
    /// in strict mode the manager panics — type mismatches are useful for
    /// detecting optimizer bugs (paper §2.2).
    pub verify_each: bool,
    /// Worker-thread budget for function-pass stages. `None` resolves via
    /// `LPAT_JOBS` / available parallelism at run time.
    pub jobs: Option<usize>,
    /// Degrade mode (default `true`): faulting passes are rolled back from
    /// a snapshot and the pipeline continues. `false` (`--no-degrade`)
    /// propagates panics and aborts on verifier/budget failures instead,
    /// and skips the snapshot cost.
    pub degrade: bool,
    /// Per-pass wall-clock budget. `None` resolves `LPAT_PASS_BUDGET_MS`
    /// at run time (unset ⇒ no budget).
    pub budget: Option<Duration>,
    /// Explicit fault-injection plan. `None` resolves the process-wide
    /// plan ([`fault::global`], i.e. `--inject-faults` / `LPAT_FAULTS`).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager {
            passes: Vec::new(),
            verify_each: false,
            jobs: None,
            degrade: true,
            budget: None,
            faults: None,
        }
    }
}

impl PassManager {
    /// Create an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, p: impl ModulePass + 'static) -> &mut Self {
        self.passes.push(Box::new(p));
        self
    }

    /// Run all passes in order with a fresh [`PassContext`].
    ///
    /// # Panics
    ///
    /// In strict mode (`degrade = false`): propagates pass panics and
    /// panics on verifier or budget failures. In degrade mode faults are
    /// isolated and reported instead.
    pub fn run(&mut self, m: &mut Module) -> PipelineReport {
        let mut cx = PassContext::new(self.jobs);
        self.run_with(m, &mut cx)
    }

    /// Run all passes in order against an existing context, so analysis
    /// caches can persist across pipelines (the VM's reoptimizer reruns
    /// pipelines over its lifetime).
    pub fn run_with(&mut self, m: &mut Module, cx: &mut PassContext) -> PipelineReport {
        cx.degrade = self.degrade;
        cx.budget = self.budget.or_else(env_budget);
        cx.faults = self.faults.clone().or_else(fault::global);
        let mut run_sp = trace::span("pipeline", "run");
        let cache0 = cx.am.stats();
        let mut out = Vec::with_capacity(self.passes.len());
        let mut faults = Vec::new();
        for p in &mut self.passes {
            let name = p.name();
            let pass_cache0 = cx.am.stats();
            // The rollback point. Strict mode skips the clone: a fault
            // aborts the process anyway, so the module never survives it.
            let snapshot = cx.degrade.then(|| m.clone());
            let injected = cx.faults.as_deref().and_then(|pl| pl.next(name));
            // One stopwatch: the report's per-pass duration *is* this
            // span's duration, so `--time-passes` and `--trace-out` can
            // never disagree.
            let mut sp = trace::span("pass", name);
            let outcome = if cx.degrade {
                catch_unwind(AssertUnwindSafe(|| run_pass(p.as_mut(), m, cx, injected)))
            } else {
                Ok(run_pass(p.as_mut(), m, cx, injected))
            };
            let duration = sp.stop();
            let mut fault = None;
            let mut changed = false;
            match outcome {
                Ok(effect) => {
                    changed = effect.changed;
                    cx.am.apply(&effect.preserved, m.num_funcs());
                    if injected == Some(FaultAction::Corrupt) {
                        // Simulate a miscompiling pass: break the module
                        // *after* the pass so --verify-each has something
                        // real to catch. Without --verify-each the damage
                        // flows downstream — exactly the failure mode the
                        // flag exists to detect.
                        corrupt_module(m);
                    }
                    if self.verify_each {
                        if let Err(errs) = m.verify() {
                            let msg = errs
                                .iter()
                                .map(|e| e.to_string())
                                .collect::<Vec<_>>()
                                .join("; ");
                            if cx.degrade {
                                fault = Some(FaultCause::VerifyFailed(msg));
                            } else {
                                panic!("verifier failed after pass '{name}':\n{msg}");
                            }
                        }
                    }
                    if fault.is_none() {
                        if let Some(budget) = cx.budget {
                            if duration > budget {
                                if cx.degrade {
                                    fault = Some(FaultCause::Timeout { budget });
                                } else {
                                    panic!(
                                        "pass '{name}' exceeded its {budget:.1?} budget \
                                         (ran {duration:.1?})"
                                    );
                                }
                            }
                        }
                    }
                }
                Err(payload) => fault = Some(FaultCause::Panic(panic_message(payload.as_ref()))),
            }
            let details = p.take_details();
            if let Some(cause) = fault {
                *m = snapshot.expect("degrade mode always snapshots");
                // The restored functions reuse version numbers the faulted
                // pass already bumped past, so any entry cached during it
                // could ABA-collide with a future version. Drop everything.
                cx.am.invalidate_all();
                let cache = cx.am.stats() - pass_cache0;
                fold_cache_counters(&cache);
                sp.arg("changed", "false");
                sp.arg("fault", cause.to_string());
                drop(sp);
                trace::instant_args("fault", name, vec![("cause", cause.to_string())]);
                faults.push(PassFault {
                    pass: name.to_string(),
                    function: None,
                    cause,
                    elapsed: duration,
                });
                out.push(PassExecution {
                    name,
                    duration,
                    changed: false,
                    stats: "faulted; rolled back".to_string(),
                    cache,
                    sub: Vec::new(),
                    functions: Vec::new(),
                });
                continue;
            }
            let cache = cx.am.stats() - pass_cache0;
            fold_cache_counters(&cache);
            sp.arg("changed", if changed { "true" } else { "false" });
            drop(sp);
            // Per-function units isolated inside a composite pass surface
            // here; the stage itself completed. Their fault events are
            // emitted serially, in function order, so ordinals stay
            // deterministic under any --jobs.
            if trace::enabled() {
                for f in &details.faults {
                    let mut args = vec![("cause", f.cause.to_string())];
                    if let Some(func) = &f.function {
                        args.push(("function", func.clone()));
                    }
                    trace::instant_args("fault", f.pass.clone(), args);
                }
            }
            faults.extend(details.faults);
            out.push(PassExecution {
                name,
                duration,
                changed,
                stats: p.stats(),
                cache,
                sub: details.sub,
                functions: details.functions,
            });
        }
        PipelineReport {
            passes: out,
            cache: cx.am.stats() - cache0,
            total: run_sp.stop(),
            faults,
        }
    }
}

/// Execute one pass, manifesting any injected fault first: `panic` panics
/// here (inside the `catch_unwind`), `delay` sleeps inside the timed
/// region so budgets see it. `corrupt` is handled by the caller after the
/// pass runs.
fn run_pass(
    p: &mut dyn ModulePass,
    m: &mut Module,
    cx: &mut PassContext,
    injected: Option<FaultAction>,
) -> PassEffect {
    match injected {
        // Abort can reach here only via the parallel fires_at path (the
        // serial path aborts inside FaultPlan::next); treat it as a panic
        // so the rollback machinery still gets exercised deterministically.
        Some(FaultAction::Panic) | Some(FaultAction::Abort) => {
            panic!("injected fault at pass '{}'", p.name())
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Corrupt) | Some(FaultAction::Io) | None => {}
    }
    p.run(m, cx)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Break the module in a way the verifier reliably flags: append an empty
/// (terminator-less) block to the first defined function.
fn corrupt_module(m: &mut Module) {
    if let Some(id) = m.func_ids().find(|&id| !m.func(id).is_declaration()) {
        m.func_mut(id).add_block();
    }
}

/// Fold one pass's analysis-cache delta into the trace counters. Counter
/// sums commute, so per-pass folding adds up to the run totals no matter
/// how stages interleave.
fn fold_cache_counters(delta: &CacheStats) {
    if !trace::enabled() {
        return;
    }
    trace::counter("analysis.cache.hits", delta.hits);
    trace::counter("analysis.cache.misses", delta.misses);
    trace::counter("analysis.cache.invalidations", delta.invalidations);
}

/// The `LPAT_PASS_BUDGET_MS` environment fallback for [`PassManager::budget`].
fn env_budget() -> Option<Duration> {
    std::env::var("LPAT_PASS_BUDGET_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// Wrap a closure as a module pass (useful in tests and ad-hoc pipelines).
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F: FnMut(&mut Module) -> bool> FnPass<F> {
    /// Create a pass from a closure. The closure's change flag maps to a
    /// conservative `PreservedAnalyses::none()` when true.
    pub fn new(name: &'static str, f: F) -> FnPass<F> {
        FnPass { name, f }
    }
}

impl<F: FnMut(&mut Module) -> bool> ModulePass for FnPass<F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn run(&mut self, m: &mut Module, _cx: &mut PassContext) -> PassEffect {
        PassEffect::from_change((self.f)(m), PreservedAnalyses::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_order_and_times() {
        let mut m = Module::new("t");
        let mut pm = PassManager::new();
        pm.add(FnPass::new("a", |m: &mut Module| {
            m.name.push('a');
            true
        }));
        pm.add(FnPass::new("b", |m: &mut Module| {
            m.name.push('b');
            false
        }));
        let report = pm.run(&mut m);
        assert_eq!(m.name, "tab");
        assert_eq!(report.passes.len(), 2);
        assert!(report.passes[0].changed);
        assert!(!report.passes[1].changed);
        assert_eq!(report.passes[0].name, "a");
        assert!(report.changed());
        assert!(report.render().contains("TOTAL"));
    }

    #[test]
    fn jobs_resolution_prefers_explicit() {
        let cx = PassContext::new(Some(3));
        assert_eq!(cx.jobs, 3);
        assert!(PassContext::new(None).jobs >= 1);
    }
}
