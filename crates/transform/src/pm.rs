//! The pass manager.
//!
//! Runs ordered pipelines of module passes, records per-pass wall-clock
//! timings and change statistics. The timing report is what regenerates the
//! paper's Table 2 (interprocedural optimization timings).

use std::time::{Duration, Instant};

use lpat_core::Module;

/// A module transformation.
pub trait Pass {
    /// Short, stable pass name (used in reports: `dge`, `dae`, `inline`).
    fn name(&self) -> &'static str;
    /// Run over the module; returns whether anything changed.
    fn run(&mut self, m: &mut Module) -> bool;
    /// A human-readable statistics line (e.g. "eliminated 331 functions"),
    /// valid after `run`.
    fn stats(&self) -> String {
        String::new()
    }
}

/// Timing record of one executed pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// The pass's statistics line.
    pub stats: String,
}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// When set, the module is verified after every pass and the manager
    /// panics on the first verifier error — type mismatches are useful for
    /// detecting optimizer bugs (paper §2.2).
    pub verify_each: bool,
}

impl PassManager {
    /// Create an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, p: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(p));
        self
    }

    /// Run all passes in order; returns per-pass timings.
    ///
    /// # Panics
    ///
    /// Panics if `verify_each` is set and a pass breaks the module.
    pub fn run(&mut self, m: &mut Module) -> Vec<PassTiming> {
        let mut out = Vec::with_capacity(self.passes.len());
        for p in &mut self.passes {
            let t0 = Instant::now();
            let changed = p.run(m);
            let duration = t0.elapsed();
            if self.verify_each {
                if let Err(errs) = m.verify() {
                    panic!(
                        "verifier failed after pass '{}':\n{}",
                        p.name(),
                        errs.iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                }
            }
            out.push(PassTiming {
                name: p.name(),
                duration,
                changed,
                stats: p.stats(),
            });
        }
        out
    }
}

/// Wrap a closure as a pass (useful in tests and ad-hoc pipelines).
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F: FnMut(&mut Module) -> bool> FnPass<F> {
    /// Create a pass from a closure.
    pub fn new(name: &'static str, f: F) -> FnPass<F> {
        FnPass { name, f }
    }
}

impl<F: FnMut(&mut Module) -> bool> Pass for FnPass<F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn run(&mut self, m: &mut Module) -> bool {
        (self.f)(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_order_and_times() {
        let mut m = Module::new("t");
        let mut pm = PassManager::new();
        pm.add(FnPass::new("a", |m: &mut Module| {
            m.name.push('a');
            true
        }));
        pm.add(FnPass::new("b", |m: &mut Module| {
            m.name.push('b');
            false
        }));
        let timings = pm.run(&mut m);
        assert_eq!(m.name, "tab");
        assert_eq!(timings.len(), 2);
        assert!(timings[0].changed);
        assert!(!timings[1].changed);
        assert_eq!(timings[0].name, "a");
    }
}
