//! Scalar expansion (SROA): split local structures into per-field allocas
//! (paper §3.2).
//!
//! Runs before stack promotion so that structure fields can be mapped to
//! SSA registers as well: `sroa` turns `alloca {int, float}` whose uses are
//! all constant-field GEPs into one alloca per field, and `mem2reg` then
//! promotes those.

use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::{FuncId, Inst, InstId, Module, Type, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;

/// The scalar-expansion pass.
#[derive(Default)]
pub struct Sroa {
    expanded: AtomicUsize,
}

impl FunctionPass for Sroa {
    fn name(&self) -> &'static str {
        "sroa"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        // Iterate: splitting a struct of structs exposes new candidates.
        let mut total = 0;
        loop {
            let n = expand_unit(u);
            total += n;
            if n == 0 {
                break;
            }
        }
        self.expanded.fetch_add(total, Ordering::Relaxed);
        // Rewrites allocas and GEPs only; CFG and calls untouched.
        PassEffect::from_change(total > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "expanded {} aggregate allocas",
            self.expanded.load(Ordering::Relaxed)
        )
    }
}

/// Expand eligible struct allocas once; returns how many were split.
pub fn expand_function(m: &mut Module, fid: FuncId) -> usize {
    crate::fpm::with_unit(m, fid, expand_unit)
}

/// One scalar-expansion round against a [`FuncUnit`]; returns how many
/// allocas were split.
pub fn expand_unit(u: &mut FuncUnit<'_>) -> usize {
    if u.func.is_declaration() {
        return 0;
    }
    let f = &*u.func;
    // Candidates: alloca of struct type, every use a GEP
    // `[0, const-field, ...]`.
    let mut candidates: Vec<(InstId, Vec<lpat_core::TypeId>)> = Vec::new();
    'cand: for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            let Inst::Alloca {
                elem_ty,
                count: None,
            } = f.inst(iid)
            else {
                continue;
            };
            let fields = match u.types.ty(*elem_ty) {
                Type::Struct { fields, .. } => fields.clone(),
                _ => continue,
            };
            let av = Value::Inst(iid);
            for uid in f.inst_ids_in_order() {
                let inst = f.inst(uid);
                let mut uses_it = false;
                inst.for_each_operand(|v| uses_it |= v == av);
                if !uses_it {
                    continue;
                }
                match inst {
                    Inst::Gep { ptr, indices } if *ptr == av && indices.len() >= 2 => {
                        let zero_first = matches!(
                            indices[0],
                            Value::Const(c) if u.consts.as_int(c).map(|(_, v)| v) == Some(0)
                        );
                        let const_field = matches!(
                            indices[1],
                            Value::Const(c) if u.consts.as_int(c).is_some()
                        );
                        if !zero_first || !const_field {
                            continue 'cand;
                        }
                    }
                    _ => continue 'cand,
                }
            }
            candidates.push((iid, fields));
        }
    }
    if candidates.is_empty() {
        return 0;
    }
    let count = candidates.len();
    for (alloca, fields) in candidates {
        split_alloca(u, alloca, &fields);
    }
    count
}

fn split_alloca(u: &mut FuncUnit<'_>, alloca: InstId, fields: &[lpat_core::TypeId]) {
    // Create one alloca per field, inserted where the original lived.
    let inst_blocks = u.func.inst_blocks();
    let home = inst_blocks[alloca.index()].expect("linked alloca");
    let pos = u
        .func
        .block_insts(home)
        .iter()
        .position(|&i| i == alloca)
        .expect("alloca in its block");
    let mut field_allocas = Vec::with_capacity(fields.len());
    for (i, &fty) in fields.iter().enumerate() {
        let pty = u.types.ptr(fty);
        let fm = &mut *u.func;
        let id = fm.new_inst(
            Inst::Alloca {
                elem_ty: fty,
                count: None,
            },
            pty,
        );
        fm.insert_inst(home, pos + i, id);
        field_allocas.push(id);
    }
    // Rewrite GEP uses.
    let f = &*u.func;
    let av = Value::Inst(alloca);
    let mut gep_rewrites: Vec<(InstId, usize, Vec<Value>)> = Vec::new();
    for uid in f.inst_ids_in_order() {
        if let Inst::Gep { ptr, indices } = f.inst(uid) {
            if *ptr == av {
                let fidx = match indices[1] {
                    Value::Const(c) => u.consts.as_int(c).unwrap().1 as usize,
                    _ => unreachable!("checked constant field index"),
                };
                gep_rewrites.push((uid, fidx, indices[2..].to_vec()));
            }
        }
    }
    let zero = u.consts.i64(0);
    let fm = &mut *u.func;
    let inst_blocks = fm.inst_blocks();
    for (uid, fidx, rest) in gep_rewrites {
        let base = Value::Inst(field_allocas[fidx]);
        if rest.is_empty() {
            // `&s[0].f` is exactly the field alloca.
            fm.replace_all_uses(Value::Inst(uid), base);
            if let Some(b) = inst_blocks[uid.index()] {
                fm.remove_inst(b, uid);
            }
        } else {
            let mut indices = vec![Value::Const(zero)];
            indices.extend(rest);
            *fm.inst_mut(uid) = Inst::Gep { ptr: base, indices };
        }
    }
    fm.remove_inst(home, alloca);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem2reg::promote_function;
    use lpat_asm::parse_module;

    #[test]
    fn splits_struct_then_promotes() {
        let mut m = parse_module(
            "t",
            "
define int @f(int %x) {
e:
  %s = alloca { int, int }
  %p0 = getelementptr { int, int }* %s, long 0, ubyte 0
  %p1 = getelementptr { int, int }* %s, long 0, ubyte 1
  store int %x, int* %p0
  store int 7, int* %p1
  %a = load int* %p0
  %b = load int* %p1
  %r = add int %a, %b
  ret int %r
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let n = expand_function(&mut m, fid);
        assert_eq!(n, 1);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let (p, _) = promote_function(&mut m, fid);
        assert_eq!(p, 2, "both field allocas promote");
        m.verify().unwrap();
        assert!(!m.display().contains("alloca"), "{}", m.display());
    }

    #[test]
    fn nested_struct_needs_two_rounds() {
        let mut m = parse_module(
            "t",
            "
%in = type { int, int }
define int @f() {
e:
  %s = alloca { %in, int }
  %pi = getelementptr { %in, int }* %s, long 0, ubyte 0, ubyte 1
  store int 3, int* %pi
  %v = load int* %pi
  ret int %v
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(expand_function(&mut m, fid), 1);
        m.verify().unwrap();
        // Round 2: the inner struct alloca.
        assert_eq!(expand_function(&mut m, fid), 1);
        m.verify().unwrap();
        assert_eq!(expand_function(&mut m, fid), 0);
        let (p, _) = promote_function(&mut m, fid);
        assert!(p >= 1);
    }

    #[test]
    fn escaping_struct_not_split() {
        let mut m = parse_module(
            "t",
            "
declare void @ext({ int, int }*)
define void @f() {
e:
  %s = alloca { int, int }
  call void @ext({ int, int }* %s)
  ret void
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(expand_function(&mut m, fid), 0);
    }

    #[test]
    fn whole_struct_gep_blocks_split() {
        let mut m = parse_module(
            "t",
            "
define void @f() {
e:
  %s = alloca { int, int }
  %alias = getelementptr { int, int }* %s, long 0
  %p = getelementptr { int, int }* %alias, long 0, ubyte 0
  store int 1, int* %p
  ret void
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert_eq!(expand_function(&mut m, fid), 0);
    }
}
