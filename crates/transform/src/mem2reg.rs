//! Stack promotion: `alloca` → SSA registers (paper §3.2).
//!
//! Front-ends do not construct SSA; they allocate mutable variables on the
//! stack and this pass promotes them to SSA registers, inserting φ-nodes on
//! the iterated dominance frontier of the stores and renaming along the
//! dominator tree. An alloca is promotable when its address never escapes:
//! every use is a direct load or store through it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::{BlockId, FuncId, Inst, InstId, Module, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;
use crate::util::remove_unreachable_blocks;

/// The stack-promotion (SSA construction) pass.
#[derive(Default)]
pub struct Mem2Reg {
    promoted: AtomicUsize,
    phis: AtomicUsize,
}

impl FunctionPass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        if u.func.is_declaration() {
            return PassEffect::unchanged();
        }
        let removed = remove_unreachable_blocks(u.func);
        // Declare the dominator-tree dependency up front, after the
        // unreachable blocks are gone: the tree is computed (and cached)
        // for the final CFG even when nothing promotes, so downstream
        // passes that keep the CFG intact reuse it instead of recomputing.
        let _ = u.analyses.domtree(u.func);
        let (p, ph) = promote_unit(u);
        self.promoted.fetch_add(p, Ordering::Relaxed);
        self.phis.fetch_add(ph, Ordering::Relaxed);
        // The cached tree post-dates every CFG edit this pass makes
        // (promotion adds no blocks or edges), so CFG-derived analyses are
        // preserved; removed blocks may have contained calls, though.
        PassEffect::from_change(
            removed || p > 0,
            PreservedAnalyses {
                cfg: true,
                call_graph: !removed,
            },
        )
    }
    fn stats(&self) -> String {
        format!(
            "promoted {} allocas, inserted {} phis",
            self.promoted.load(Ordering::Relaxed),
            self.phis.load(Ordering::Relaxed)
        )
    }
}

/// Promote all eligible allocas of one function. Returns
/// `(promoted allocas, φ-nodes inserted)`.
pub fn promote_function(m: &mut Module, fid: FuncId) -> (usize, usize) {
    crate::fpm::with_unit(m, fid, promote_unit)
}

/// Stack promotion against a [`FuncUnit`]; returns
/// `(promoted allocas, φ-nodes inserted)`.
pub fn promote_unit(u: &mut FuncUnit<'_>) -> (usize, usize) {
    let f = &*u.func;
    // 1. Find promotable allocas.
    let mut candidates: Vec<InstId> = Vec::new();
    for iid in f.inst_ids_in_order() {
        if let Inst::Alloca {
            elem_ty,
            count: None,
        } = f.inst(iid)
        {
            if u.types.is_first_class(*elem_ty) {
                candidates.push(iid);
            }
        }
    }
    if candidates.is_empty() {
        return (0, 0);
    }
    let mut promotable: HashMap<InstId, usize> = HashMap::new();
    'cand: for &a in &candidates {
        let av = Value::Inst(a);
        for iid in f.inst_ids_in_order() {
            match f.inst(iid) {
                Inst::Load { ptr } if *ptr == av => {}
                Inst::Store { val, ptr } if *ptr == av && *val != av => {}
                other => {
                    let mut escapes = false;
                    other.for_each_operand(|v| {
                        if v == av {
                            escapes = true;
                        }
                    });
                    if escapes {
                        continue 'cand;
                    }
                }
            }
        }
        let idx = promotable.len();
        promotable.insert(a, idx);
    }
    if promotable.is_empty() {
        return (0, 0);
    }
    let n_allocas = promotable.len();
    let elem_tys: Vec<lpat_core::TypeId> = {
        let mut v = vec![u.types.void(); n_allocas];
        for (&a, &i) in &promotable {
            if let Inst::Alloca { elem_ty, .. } = f.inst(a) {
                v[i] = *elem_ty;
            }
        }
        v
    };

    // 2. φ placement on the iterated dominance frontier of the def blocks.
    let dt = u.analyses.domtree(f);
    let inst_blocks = f.inst_blocks();
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); n_allocas];
    for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            if let Inst::Store {
                ptr: Value::Inst(p),
                ..
            } = f.inst(iid)
            {
                if let Some(&idx) = promotable.get(p) {
                    def_blocks[idx].push(b);
                }
            }
        }
    }
    let _ = inst_blocks;
    // phi_at[(block, alloca)] -> phi inst id
    let mut phi_at: HashMap<(BlockId, usize), InstId> = HashMap::new();
    let mut phi_count = 0usize;
    {
        let f = &mut *u.func;
        for idx in 0..n_allocas {
            for b in dt.iterated_frontier(&def_blocks[idx]) {
                phi_at.entry((b, idx)).or_insert_with(|| {
                    phi_count += 1;
                    f.new_inst(Inst::Phi { incoming: vec![] }, elem_tys[idx])
                });
            }
        }
        // Link the φs at the head of their blocks.
        let mut by_block: HashMap<BlockId, Vec<InstId>> = HashMap::new();
        for (&(b, _), &p) in &phi_at {
            by_block.entry(b).or_default().push(p);
        }
        for (b, mut phis) in by_block {
            phis.sort();
            let mut insts = phis;
            insts.extend_from_slice(f.block_insts(b));
            f.set_block_insts(b, insts);
        }
    }

    // 3. Renaming along the dominator tree.
    let undef: Vec<Value> = elem_tys
        .iter()
        .map(|&t| Value::Const(u.consts.undef(t)))
        .collect();
    let f = &*u.func;
    let phi_idx: HashMap<InstId, usize> = phi_at.iter().map(|(&(_, i), &p)| (p, i)).collect();
    let mut repl: HashMap<InstId, Value> = HashMap::new();
    let mut dead: Vec<InstId> = Vec::new();
    // Stack of (block, current values) to process in dominator-tree
    // preorder.
    let mut phi_incoming: HashMap<InstId, Vec<(Value, BlockId)>> = HashMap::new();
    let mut stack: Vec<(BlockId, Vec<Value>)> = vec![(f.entry(), undef.clone())];
    let resolve = |repl: &HashMap<InstId, Value>, mut v: Value| -> Value {
        while let Value::Inst(i) = v {
            match repl.get(&i) {
                Some(&n) => v = n,
                None => break,
            }
        }
        v
    };
    while let Some((b, mut cur)) = stack.pop() {
        for &iid in f.block_insts(b) {
            match f.inst(iid) {
                Inst::Phi { .. } => {
                    if let Some(&idx) = phi_idx.get(&iid) {
                        cur[idx] = Value::Inst(iid);
                    }
                }
                Inst::Load {
                    ptr: Value::Inst(p),
                } => {
                    if let Some(&idx) = promotable.get(p) {
                        repl.insert(iid, cur[idx]);
                        dead.push(iid);
                    }
                }
                Inst::Store {
                    val,
                    ptr: Value::Inst(p),
                } => {
                    if let Some(&idx) = promotable.get(p) {
                        cur[idx] = resolve(&repl, *val);
                        dead.push(iid);
                    }
                }
                Inst::Alloca { .. } if promotable.contains_key(&iid) => {
                    dead.push(iid);
                }
                _ => {}
            }
        }
        // Feed successor φs.
        for s in f.successors(b) {
            for (idx, &v) in cur.iter().enumerate() {
                if let Some(&p) = phi_at.get(&(s, idx)) {
                    phi_incoming.entry(p).or_default().push((v, b));
                }
            }
        }
        for &c in dt.children(b) {
            stack.push((c, cur.clone()));
        }
        // `cur` is moved into the last child push; avoid clone for it.
        let _ = &mut cur;
    }

    // 4. Apply: set φ incoming lists, rewrite uses, unlink dead insts.
    let fm = &mut *u.func;
    for (p, mut inc) in phi_incoming {
        // A block can be a duplicate predecessor (e.g. both switch arms);
        // incoming entries must match predecessor multiset. Our collection
        // walks successors once per CFG edge via `successors()`, which
        // already yields duplicates, so `inc` is correct as-is.
        for (v, _) in inc.iter_mut() {
            let mut x = *v;
            while let Value::Inst(i) = x {
                match repl.get(&i) {
                    Some(&n) => x = n,
                    None => break,
                }
            }
            *v = x;
        }
        if let Inst::Phi { incoming } = fm.inst_mut(p) {
            *incoming = inc;
        }
    }
    let n_slots = fm.num_inst_slots();
    for i in 0..n_slots {
        let iid = InstId::from_index(i);
        fm.inst_mut(iid).map_operands(|mut v| {
            while let Value::Inst(d) = v {
                match repl.get(&d) {
                    Some(&n) => v = n,
                    None => break,
                }
            }
            v
        });
    }
    let inst_blocks = fm.inst_blocks();
    for d in dead {
        if let Some(b) = inst_blocks[d.index()] {
            fm.remove_inst(b, d);
        }
    }
    (n_allocas, phi_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn promote(src: &str) -> (Module, FuncId, usize, usize) {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        let (p, ph) = promote_function(&mut m, fid);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        (m, fid, p, ph)
    }

    #[test]
    fn straight_line_promotion_no_phis() {
        let (m, _, p, ph) = promote(
            "
define int @f(int %x) {
e:
  %v = alloca int
  store int %x, int* %v
  %a = load int* %v
  %b = add int %a, 1
  store int %b, int* %v
  %c = load int* %v
  ret int %c
}",
        );
        assert_eq!(p, 1);
        assert_eq!(ph, 0);
        let text = m.display();
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("load"), "{text}");
        assert!(text.contains("ret int %t3"), "{text}");
    }

    #[test]
    fn diamond_inserts_phi() {
        let (m, _, p, ph) = promote(
            "
define int @f(bool %c, int %x, int %y) {
e:
  %v = alloca int
  br bool %c, label %l, label %r
l:
  store int %x, int* %v
  br label %j
r:
  store int %y, int* %v
  br label %j
j:
  %o = load int* %v
  ret int %o
}",
        );
        assert_eq!(p, 1);
        assert_eq!(ph, 1);
        let text = m.display();
        assert!(text.contains("phi int"), "{text}");
        assert!(!text.contains("alloca"), "{text}");
    }

    #[test]
    fn loop_counter_promotes_with_phi() {
        let (m, _, p, ph) = promote(
            "
define int @f(int %n) {
e:
  %i = alloca int
  %s = alloca int
  store int 0, int* %i
  store int 0, int* %s
  br label %h
h:
  %iv = load int* %i
  %c = setlt int %iv, %n
  br bool %c, label %b, label %x
b:
  %sv = load int* %s
  %s2 = add int %sv, %iv
  store int %s2, int* %s
  %i2 = add int %iv, 1
  store int %i2, int* %i
  br label %h
x:
  %r = load int* %s
  ret int %r
}",
        );
        assert_eq!(p, 2);
        assert!(ph >= 2, "need loop-carried phis, got {ph}");
        assert!(!m.display().contains("alloca"));
    }

    #[test]
    fn escaping_alloca_not_promoted() {
        let (m, _, p, _) = promote(
            "
declare void @ext(int*)
define int @f() {
e:
  %v = alloca int
  store int 1, int* %v
  call void @ext(int* %v)
  %r = load int* %v
  ret int %r
}",
        );
        assert_eq!(p, 0);
        assert!(m.display().contains("alloca"));
    }

    #[test]
    fn aggregate_alloca_not_promoted() {
        let (_, _, p, _) = promote(
            "
define int @f() {
e:
  %v = alloca { int, int }
  %p = getelementptr { int, int }* %v, long 0, ubyte 0
  store int 1, int* %p
  %r = load int* %p
  ret int %r
}",
        );
        assert_eq!(p, 0);
    }

    #[test]
    fn load_before_store_becomes_undef() {
        let (m, _, p, _) = promote(
            "
define int @f() {
e:
  %v = alloca int
  %r = load int* %v
  ret int %r
}",
        );
        assert_eq!(p, 1);
        assert!(m.display().contains("ret int undef"), "{}", m.display());
    }
}
