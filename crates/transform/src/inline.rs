//! Function integration (inlining) — one of the three link-time IPO passes
//! timed in the paper's Table 2.
//!
//! Works bottom-up over the call graph. Besides the usual size-based
//! policy, two exception-handling interactions from paper §2.4 are
//! implemented:
//!
//! * inlining a callee that `unwind`s into an **invoke** site turns the
//!   stack-unwinding operation into a **direct branch** to the invoke's
//!   unwind destination ("this often occurs due to inlining");
//! * inlining at ordinary call sites leaves `unwind` instructions intact,
//!   which is semantics-preserving: the unwind continues into the caller's
//!   dynamic context exactly as it would have at run time.

use std::collections::HashMap;

use lpat_analysis::{CallGraph, PreservedAnalyses};
use lpat_core::{BlockId, Const, FuncId, Function, Inst, InstId, Module, Value};

use crate::pm::{ModulePass, PassContext, PassEffect};

/// The inlining pass.
pub struct Inline {
    /// Callees at most this many instructions are always eligible.
    pub threshold: usize,
    /// Callers are not grown beyond this many instructions.
    pub caller_cap: usize,
    inlined: usize,
    deleted: usize,
}

impl Default for Inline {
    fn default() -> Self {
        Inline {
            threshold: 40,
            caller_cap: 10_000,
            inlined: 0,
            deleted: 0,
        }
    }
}

impl ModulePass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let cg = cx.am.call_graph(m).clone();
        let roots: Vec<FuncId> = m.func_ids().collect();
        let order = cg.post_order(&roots);
        let mut any = false;
        for f in order {
            loop {
                let did = inline_one_call(m, f, &cg, self.threshold, self.caller_cap);
                if !did {
                    break;
                }
                self.inlined += 1;
                any = true;
            }
        }
        // Delete internal functions that no longer have any references
        // ("... deleting 438 which are no longer referenced" — §4.1.4).
        // Inlining rewrote call sites, so the cached graph is stale now.
        if any {
            cx.am.invalidate_call_graph();
        }
        let cg = cx.am.call_graph(m).clone();
        let mut dead = Vec::new();
        for (fid, f) in m.funcs() {
            if matches!(f.linkage, lpat_core::Linkage::Internal)
                && !f.is_declaration()
                && cg.direct_call_sites(fid) == 0
                && !cg.is_address_taken(fid)
            {
                dead.push(fid);
            }
        }
        if !dead.is_empty() {
            self.deleted += dead.len();
            m.retain_functions(|f| !dead.contains(&f));
            any = true;
        }
        // Splicing callee bodies rewrites CFGs, and deletions renumber ids.
        PassEffect::from_change(any, PreservedAnalyses::none())
    }
    fn stats(&self) -> String {
        format!(
            "inlined {} call sites, deleted {} functions",
            self.inlined, self.deleted
        )
    }
}

/// Find and inline one eligible call site in `caller`. Returns whether a
/// site was inlined.
fn inline_one_call(
    m: &mut Module,
    caller: FuncId,
    cg: &CallGraph,
    threshold: usize,
    caller_cap: usize,
) -> bool {
    let f = m.func(caller);
    if f.is_declaration() || f.num_insts() >= caller_cap {
        return false;
    }
    let mut site: Option<(BlockId, InstId, FuncId)> = None;
    'outer: for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            let callee_val = match f.inst(iid) {
                Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => *callee,
                _ => continue,
            };
            let callee = match callee_val {
                Value::Const(c) => match m.consts.get(c) {
                    Const::FuncAddr(t) => *t,
                    _ => continue,
                },
                _ => continue,
            };
            if callee == caller {
                continue; // no self-inlining
            }
            let target = m.func(callee);
            if target.is_declaration() || target.is_varargs() {
                continue;
            }
            let size = target.num_insts();
            let single_site = matches!(target.linkage, lpat_core::Linkage::Internal)
                && cg.direct_call_sites(callee) == 1
                && !cg.is_address_taken(callee);
            if !(size <= threshold || (single_site && size <= threshold * 16)) {
                continue;
            }
            // Invoke sites: only callees free of calls/invokes (so the
            // only exceptional exit is a literal `unwind`, which becomes a
            // branch), and the result must be unused or the normal dest
            // single-predecessor (for the φ insertion to be well-formed).
            if let Inst::Invoke { normal, .. } = f.inst(iid) {
                let has_calls = target
                    .inst_ids_in_order()
                    .any(|i| matches!(target.inst(i), Inst::Call { .. } | Inst::Invoke { .. }));
                if has_calls {
                    continue;
                }
                let result_used = f.use_counts()[iid.index()] > 0;
                if result_used && f.predecessors()[normal.index()].len() != 1 {
                    continue;
                }
            }
            site = Some((b, iid, callee));
            break 'outer;
        }
    }
    let Some((b, iid, callee)) = site else {
        return false;
    };
    inline_site(m, caller, b, iid, callee);
    true
}

/// Splice `callee`'s body into `caller` at call/invoke `site` in block `b`.
pub fn inline_site(m: &mut Module, caller: FuncId, b: BlockId, site: InstId, callee_id: FuncId) {
    let callee: Function = m.func(callee_id).clone();
    let (args, invoke_dests) = match m.func(caller).inst(site) {
        Inst::Call { args, .. } => (args.clone(), None),
        Inst::Invoke {
            args,
            normal,
            unwind,
            ..
        } => (args.clone(), Some((*normal, *unwind))),
        other => panic!("inline_site on non-call {other:?}"),
    };
    let ret_ty = m.func(caller).inst_ty(site);
    let is_void = ret_ty == m.types.void();

    // 1. Instruction & block id maps for the copied body.
    let base_inst = m.func(caller).num_inst_slots();
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for (k, old) in callee.inst_ids_in_order().enumerate() {
        inst_map.insert(old, InstId::from_index(base_inst + k));
    }
    // 2. Continuation: where control goes after an inlined `ret`.
    //    Call sites split the block; invoke sites branch to `normal`.
    let (cont, split_moved): (BlockId, Vec<InstId>) = match invoke_dests {
        Some((normal, _)) => (normal, Vec::new()),
        None => {
            let fm = m.func_mut(caller);
            let cont = fm.add_block();
            let insts = fm.block_insts(b).to_vec();
            let pos = insts.iter().position(|&i| i == site).expect("site in b");
            let before = insts[..pos].to_vec();
            let after = insts[pos + 1..].to_vec();
            fm.set_block_insts(b, before);
            fm.set_block_insts(cont, after.clone());
            (cont, after)
        }
    };
    let _ = split_moved;
    // Copied callee blocks start after everything created so far
    // (including the continuation split above).
    let base_block = m.func(caller).num_blocks();
    let block_map = |old: BlockId| BlockId::from_index(base_block + old.index());

    // φs in the successors of the moved terminator must re-point from `b`
    // to `cont` (call case only: the terminator moved there).
    if invoke_dests.is_none() {
        let succs: Vec<BlockId> = m.func(caller).successors(cont);
        let fm = m.func_mut(caller);
        for s in succs {
            for &pid in fm.block_insts(s).to_vec().iter() {
                if let Inst::Phi { incoming } = fm.inst_mut(pid) {
                    for (_, pb) in incoming {
                        if *pb == b {
                            *pb = cont;
                        }
                    }
                }
            }
        }
    }

    // 3. Copy blocks & instructions.
    let mut ret_edges: Vec<(Option<Value>, BlockId)> = Vec::new();
    let mut unwind_edges: Vec<BlockId> = Vec::new();
    {
        let remap_val = |v: Value| -> Value {
            match v {
                Value::Arg(i) => args[i as usize],
                Value::Inst(d) => Value::Inst(inst_map[&d]),
                c => c,
            }
        };
        for ob in callee.block_ids() {
            let fm = m.func_mut(caller);
            let nb = fm.add_block();
            debug_assert_eq!(nb, block_map(ob));
        }
        for ob in callee.block_ids() {
            let nb = block_map(ob);
            for &oi in callee.block_insts(ob) {
                let mut inst = callee.inst(oi).clone();
                let ty = callee.inst_ty(oi);
                let new_inst = match &mut inst {
                    Inst::Ret(v) => {
                        ret_edges.push((v.map(remap_val), nb));
                        Inst::Br(cont)
                    }
                    Inst::Unwind if invoke_dests.is_some() => {
                        // The paper's unwind→branch conversion: the unwind
                        // target is now in the same function.
                        let (_, uw) = invoke_dests.unwrap();
                        unwind_edges.push(nb);
                        Inst::Br(uw)
                    }
                    other => {
                        other.map_operands(remap_val);
                        other.map_successors(block_map);
                        other.clone()
                    }
                };
                let fm = m.func_mut(caller);
                let made = fm.new_inst(new_inst, ty);
                debug_assert_eq!(Some(&made), inst_map.get(&oi));
                let mut insts = fm.block_insts(nb).to_vec();
                insts.push(made);
                fm.set_block_insts(nb, insts);
            }
        }
    }

    // 4. Patch destination φs.
    match invoke_dests {
        None => {
            // `cont`'s only preds are the ret blocks (it is freshly split,
            // so it has no φs of its own yet). Build the result value.
            let result: Option<Value> = if is_void {
                None
            } else if ret_edges.len() == 1 {
                ret_edges[0].0
            } else if ret_edges.is_empty() {
                Some(Value::Const(m.consts.undef(ret_ty)))
            } else {
                let fm = m.func_mut(caller);
                let phi = fm.new_inst(
                    Inst::Phi {
                        incoming: ret_edges
                            .iter()
                            .map(|(v, bb)| (v.expect("typed ret"), *bb))
                            .collect(),
                    },
                    ret_ty,
                );
                fm.insert_inst(cont, 0, phi);
                Some(Value::Inst(phi))
            };
            if let Some(r) = result {
                m.func_mut(caller).replace_all_uses(Value::Inst(site), r);
            }
        }
        Some((normal, unwind)) => {
            // Every φ entry `(v, b)` in `normal` becomes one entry per ret
            // block; in `unwind`, one per unwind block.
            let fix = |m: &mut Module, dest: BlockId, new_preds: &[BlockId]| {
                let fm = m.func_mut(caller);
                for &pid in fm.block_insts(dest).to_vec().iter() {
                    if let Inst::Phi { incoming } = fm.inst_mut(pid) {
                        let mut out = Vec::with_capacity(incoming.len());
                        for (v, pb) in incoming.iter() {
                            if *pb == b {
                                for &np in new_preds {
                                    out.push((*v, np));
                                }
                            } else {
                                out.push((*v, *pb));
                            }
                        }
                        *incoming = out;
                    }
                }
            };
            let ret_blocks: Vec<BlockId> = ret_edges.iter().map(|(_, bb)| *bb).collect();
            fix(m, normal, &ret_blocks);
            fix(m, unwind, &unwind_edges);
            // Result value (policy guarantees single-pred normal dest when
            // used).
            if !is_void {
                let result = if ret_edges.len() == 1 {
                    ret_edges[0].0.expect("typed ret")
                } else if ret_edges.is_empty() {
                    Value::Const(m.consts.undef(ret_ty))
                } else {
                    let fm = m.func_mut(caller);
                    let phi = fm.new_inst(
                        Inst::Phi {
                            incoming: ret_edges
                                .iter()
                                .map(|(v, bb)| (v.expect("typed ret"), *bb))
                                .collect(),
                        },
                        ret_ty,
                    );
                    fm.insert_inst(normal, 0, phi);
                    Value::Inst(phi)
                };
                m.func_mut(caller)
                    .replace_all_uses(Value::Inst(site), result);
            }
        }
    }

    // 5. Replace the call site with a branch into the inlined entry.
    let entry_new = block_map(callee.entry());
    let void = m.types.void();
    let fm = m.func_mut(caller);
    fm.remove_inst(b, site);
    let br = fm.new_inst(Inst::Br(entry_new), void);
    let mut insts = fm.block_insts(b).to_vec();
    insts.push(br);
    fm.set_block_insts(b, insts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn run_inline(src: &str) -> (Module, Inline) {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let mut p = Inline::default();
        p.run(&mut m, &mut PassContext::default());
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        (m, p)
    }

    #[test]
    fn inlines_small_leaf() {
        let (m, p) = run_inline(
            "
define internal int @sq(int %x) {
e:
  %r = mul int %x, %x
  ret int %r
}
define int @main(int %a) {
e:
  %v = call int @sq(int %a)
  %w = add int %v, 1
  ret int %w
}",
        );
        assert_eq!(p.inlined, 1);
        assert_eq!(p.deleted, 1, "sq no longer referenced");
        let text = m.display();
        assert!(!text.contains("call"), "{text}");
        assert!(text.contains("mul int %a0, %a0"), "{text}");
    }

    #[test]
    fn inlines_multi_return_with_phi() {
        let (m, _) = run_inline(
            "
define internal int @pick(bool %c) {
e:
  br bool %c, label %l, label %r
l:
  ret int 1
r:
  ret int 2
}
define int @main(bool %c) {
e:
  %v = call int @pick(bool %c)
  ret int %v
}",
        );
        let text = m.display();
        assert!(text.contains("phi int"), "{text}");
        assert!(!text.contains("call"), "{text}");
    }

    #[test]
    fn unwind_becomes_branch_at_invoke_site() {
        let (m, p) = run_inline(
            "
define internal void @thrower(bool %c) {
e:
  br bool %c, label %t, label %ok
t:
  unwind
ok:
  ret void
}
define int @main(bool %c) {
e:
  invoke void @thrower(bool %c) to label %fine unwind label %handler
fine:
  ret int 0
handler:
  ret int 1
}",
        );
        assert_eq!(p.inlined, 1);
        let text = m.display();
        assert!(!text.contains("invoke"), "{text}");
        assert!(
            !text.contains("unwind"),
            "unwind must become a branch: {text}"
        );
    }

    #[test]
    fn does_not_inline_recursive() {
        let (m, p) = run_inline(
            "
define int @fact(int %n) {
e:
  %c = setle int %n, 1
  br bool %c, label %base, label %rec
base:
  ret int 1
rec:
  %n1 = sub int %n, 1
  %r = call int @fact(int %n1)
  %v = mul int %n, %r
  ret int %v
}",
        );
        assert_eq!(p.inlined, 0);
        assert!(m.display().contains("call int @fact"));
    }

    #[test]
    fn keeps_unwind_at_plain_call_site() {
        // Inlining a thrower at a *call* site keeps the unwind: it will
        // continue into the caller's dynamic context at run time.
        let (m, _) = run_inline(
            "
define internal void @thrower() {
e:
  unwind
}
define void @main() {
e:
  call void @thrower()
  ret void
}",
        );
        let text = m.display();
        assert!(!text.contains("call"), "{text}");
        assert!(text.contains("unwind"), "{text}");
    }

    #[test]
    fn single_site_large_internal_inlined() {
        let mut body = String::new();
        for i in 0..60 {
            body.push_str(&format!("  %v{i} = add int %x, {i}\n"));
        }
        let src = format!(
            "
define internal int @big(int %x) {{
e:
{body}  ret int %v59
}}
define int @main(int %a) {{
e:
  %v = call int @big(int %a)
  ret int %v
}}"
        );
        let (m, p) = run_inline(&src);
        assert_eq!(p.inlined, 1, "{}", m.display());
    }

    #[test]
    fn args_in_loop_preserved() {
        // Inline inside a loop: φs around the continuation must stay
        // consistent.
        let (m, _) = run_inline(
            "
define internal int @inc(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define int @main(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %h ]
  %i2 = call int @inc(int %i)
  %c = setlt int %i2, %n
  br bool %c, label %h, label %x
x:
  ret int %i2
}",
        );
        let text = m.display();
        assert!(!text.contains("call"), "{text}");
    }
}
