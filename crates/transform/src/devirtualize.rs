//! Virtual-method call resolution (paper §4.1.1).
//!
//! C++ virtual tables map onto the representation as *constant* global
//! arrays of typed function pointers; the paper notes that with this
//! representation "virtual method call resolution can be performed by the
//! optimizer as effectively as by a typical source compiler". This pass
//! does exactly that: an indirect call through a value loaded from a
//! constant global at a constant index is rewritten into a direct call,
//! which then unlocks inlining and the other IPO passes.
//!
//! The pattern recognized (possibly through pointer casts):
//!
//! ```text
//! %slot = getelementptr [N x ty*]* @vtable, long 0, long K   ; K constant
//! %fp   = load ty** %slot
//! call %fp(...)
//! ```
//!
//! where `@vtable` is a `constant` global whose initializer supplies slot
//! `K`.

use lpat_analysis::PreservedAnalyses;
use lpat_core::{Const, ConstId, FuncId, Inst, InstId, Module, Value};

use crate::pm::{ModulePass, PassContext, PassEffect};

/// The devirtualization pass.
#[derive(Default)]
pub struct Devirtualize {
    resolved: usize,
}

impl ModulePass for Devirtualize {
    fn name(&self) -> &'static str {
        "devirtualize"
    }
    fn run(&mut self, m: &mut Module, _cx: &mut PassContext) -> PassEffect {
        let n = run_devirtualize(m);
        self.resolved += n;
        // Callee operands flip from indirect to direct: the CFG is intact
        // but the call graph gains edges.
        PassEffect::from_change(
            n > 0,
            PreservedAnalyses {
                cfg: true,
                call_graph: false,
            },
        )
    }
    fn stats(&self) -> String {
        format!("resolved {} indirect calls", self.resolved)
    }
}

/// Resolve indirect calls through constant tables; returns how many call
/// sites were devirtualized.
pub fn run_devirtualize(m: &mut Module) -> usize {
    let mut resolved = 0;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        let mut patches: Vec<(InstId, FuncId)> = Vec::new();
        for iid in f.inst_ids_in_order() {
            let callee = match f.inst(iid) {
                Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => *callee,
                _ => continue,
            };
            let Value::Inst(src) = callee else { continue };
            if let Some(target) = resolve_loaded_fn(m, fid, src) {
                // The target's signature must match the call's function
                // type for the rewrite to be well-typed.
                let ct = m.value_type(f, callee);
                if m.types.pointee(ct) == Some(m.func(target).fn_type()) {
                    patches.push((iid, target));
                }
            }
        }
        if patches.is_empty() {
            continue;
        }
        resolved += patches.len();
        for (iid, target) in patches {
            let addr = m.consts.func_addr(target);
            let fm = m.func_mut(fid);
            match fm.inst_mut(iid) {
                Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => {
                    *callee = Value::Const(addr);
                }
                _ => unreachable!(),
            }
        }
    }
    resolved
}

/// Trace `v` back through casts to a load from a constant-global GEP with
/// constant indices, and evaluate the initializer at that position.
fn resolve_loaded_fn(m: &Module, fid: FuncId, v: InstId) -> Option<FuncId> {
    let f = m.func(fid);
    let mut cur = v;
    loop {
        match f.inst(cur) {
            Inst::Cast {
                val: Value::Inst(i),
                ..
            } => cur = *i,
            Inst::Load { ptr } => return resolve_slot(m, fid, *ptr),
            _ => return None,
        }
    }
}

/// Resolve a pointer operand to `(constant global, element path)` and read
/// the function address out of the initializer.
fn resolve_slot(m: &Module, fid: FuncId, ptr: Value) -> Option<FuncId> {
    let f = m.func(fid);
    let (base, indices): (ConstId, Vec<i64>) = match ptr {
        // Direct load of a constant global holding one function pointer.
        Value::Const(c) => match m.consts.get(c) {
            Const::GlobalAddr(g) => {
                let gl = m.global(*g);
                if !gl.is_const {
                    return None;
                }
                return const_elem(m, gl.init?, &[]);
            }
            _ => return None,
        },
        Value::Inst(i) => match f.inst(i) {
            Inst::Gep { ptr, indices } => {
                let g = match ptr {
                    Value::Const(c) => match m.consts.get(*c) {
                        Const::GlobalAddr(g) => *g,
                        _ => return None,
                    },
                    _ => return None,
                };
                let gl = m.global(g);
                if !gl.is_const {
                    return None;
                }
                let mut path = Vec::with_capacity(indices.len());
                for idx in indices {
                    match idx {
                        Value::Const(c) => path.push(m.consts.as_int(*c)?.1),
                        _ => return None, // dynamic index: not resolvable
                    }
                }
                if path.first() != Some(&0) {
                    return None; // stepping off the global itself
                }
                (gl.init?, path[1..].to_vec())
            }
            _ => return None,
        },
        _ => return None,
    };
    const_elem(m, base, &indices)
}

/// Walk a constant initializer along an index path to a function address.
fn const_elem(m: &Module, c: ConstId, path: &[i64]) -> Option<FuncId> {
    let mut cur = c;
    for &i in path {
        cur = match m.consts.get(cur) {
            Const::Array { elems, .. } => *elems.get(i as usize)?,
            Const::Struct { fields, .. } => *fields.get(i as usize)?,
            _ => return None,
        };
    }
    match m.consts.get(cur) {
        Const::FuncAddr(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn resolves_vtable_dispatch() {
        let mut m = parse_module(
            "t",
            "
define internal int @meth_a(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal int @meth_b(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
@vt = constant [2 x int (int)*] [ int (int)* @meth_a, int (int)* @meth_b ]
define int @dispatch(int %x) {
e:
  %slot = getelementptr [2 x int (int)*]* @vt, long 0, long 1
  %fp = load int (int)** %slot
  %r = call int %fp(int %x)
  ret int %r
}",
        )
        .unwrap();
        m.verify().unwrap();
        let n = run_devirtualize(&mut m);
        assert_eq!(n, 1);
        m.verify().unwrap();
        assert!(m.display().contains("call int @meth_b"), "{}", m.display());
        // And now inlining can finish the job.
        let mut inliner = crate::inline::Inline::default();
        inliner.run(&mut m, &mut PassContext::default());
        assert!(!m.display().contains("call int @meth_b"), "{}", m.display());
    }

    #[test]
    fn dynamic_index_not_resolved() {
        let mut m = parse_module(
            "t",
            "
define internal int @meth(int %x) {
e:
  ret int %x
}
@vt = constant [1 x int (int)*] [ int (int)* @meth ]
define int @dispatch(int %x, long %i) {
e:
  %slot = getelementptr [1 x int (int)*]* @vt, long 0, long %i
  %fp = load int (int)** %slot
  %r = call int %fp(int %x)
  ret int %r
}",
        )
        .unwrap();
        assert_eq!(run_devirtualize(&mut m), 0);
    }

    #[test]
    fn mutable_table_not_resolved() {
        let mut m = parse_module(
            "t",
            "
define internal int @meth(int %x) {
e:
  ret int %x
}
@vt = global [1 x int (int)*] [ int (int)* @meth ]
define int @dispatch(int %x) {
e:
  %slot = getelementptr [1 x int (int)*]* @vt, long 0, long 0
  %fp = load int (int)** %slot
  %r = call int %fp(int %x)
  ret int %r
}",
        )
        .unwrap();
        assert_eq!(
            run_devirtualize(&mut m),
            0,
            "writable tables may be repatched at run time"
        );
    }

    #[test]
    fn struct_vtable_with_cast() {
        // C++-style: vtable is a struct of pointers; the call site casts.
        let mut m = parse_module(
            "t",
            "
define internal int @area(int %x) {
e:
  %r = mul int %x, %x
  ret int %r
}
define internal int @peri(int %x) {
e:
  %r = mul int %x, 4
  ret int %r
}
%vtbl = type { int (int)*, int (int)* }
@shape_vt = constant %vtbl { int (int)* @area, int (int)* @peri }
define int @call_area(int %x) {
e:
  %slot = getelementptr %vtbl* @shape_vt, long 0, ubyte 0
  %fp = load int (int)** %slot
  %r = call int %fp(int %x)
  ret int %r
}",
        )
        .unwrap();
        m.verify().unwrap();
        assert_eq!(run_devirtualize(&mut m), 1);
        assert!(m.display().contains("call int @area"), "{}", m.display());
        m.verify().unwrap();
    }
}
