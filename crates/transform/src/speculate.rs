//! Speculative profile-guided optimization with guard-based side exits
//! (paper §3.5–§3.6).
//!
//! The paper's lifelong thesis is that the offline and runtime optimizers
//! may transform *speculatively*, because runtime evidence can revoke a
//! transformation that turned out to be wrong. This module is the
//! speculative half of our PGO split: where [`crate::devirtualize`] and
//! the reoptimizer's hot inlining are strictly safe (they only rewrite
//! what analysis proves), the [`speculate`] entry point emits **guarded**
//! rewrites justified by profile evidence alone:
//!
//! * **speculative devirtualization** — a hot *indirect* call site whose
//!   profile strongly suggests one callee is rewritten to
//!   `if (fp == @target) call @target(...) else call fp(...)`;
//! * **constant-argument specialization** — a hot function observed to
//!   receive one constant argument value gets a cloned body with that
//!   argument folded in, entered through `if (arg == C)` at the top.
//!
//! Guards are ordinary IR — a `seteq` compare plus a conditional branch —
//! so the verifier, the interpreter, and the JIT all handle them with no
//! new opcode. What makes them *guards* is the [`SpecMap`] overlay: each
//! carries a stable numeric id under which the engine counts executions
//! and failures ([misspeculations]) into the lifetime profile, and at
//! which the tiered engine deoptimizes a JIT frame back to the
//! interpreter. The map is ephemeral: it is re-derived deterministically
//! from `(module, profile, options)` on every run and never persisted, so
//! the stored module stays unspeculated and the profile stays attributed
//! to it.
//!
//! **Retraction** closes the loop: a guard whose accumulated
//! misspeculation rate exceeds the threshold is simply not re-emitted.
//! The decision function is pure integer arithmetic over the merged
//! lifetime counters, so the offline reoptimizer and the in-memory run
//! reach byte-identical [`SpecPlan`]s at any `--jobs`.
//!
//! [misspeculations]: SpecProfile::guard_misspec

use std::collections::HashMap;

use lpat_analysis::{CallGraph, Dsa, DsaOptions};
use lpat_core::trace;
use lpat_core::{BlockId, CmpPred, FuncId, Inst, InstId, IntKind, Module, Value};

/// Thresholds and caps for speculation.
#[derive(Clone, Debug)]
pub struct SpecOptions {
    /// Minimum profile count for a call site (devirtualization) or a
    /// specialization weight (constant arguments) to be speculated on.
    pub hot_threshold: u64,
    /// Retract a guard once `misspec/exec` reaches this percentage.
    pub misspec_threshold_pct: u32,
    /// Minimum guard executions before the retraction test applies
    /// (prevents one cold-start failure from retracting forever).
    pub min_samples: u64,
    /// Ceiling on plan entries per module (deterministic: sorted by id).
    pub max_guards: usize,
    /// Ceiling on function size for constant-argument cloning.
    pub max_clone_insts: usize,
}

impl Default for SpecOptions {
    fn default() -> Self {
        SpecOptions {
            hot_threshold: 64,
            misspec_threshold_pct: 25,
            min_samples: 16,
            max_guards: 64,
            max_clone_insts: 400,
        }
    }
}

/// The profile slice speculation decisions read. The VM's `ProfileData`
/// lives above this crate, so callers project it down to the four tables
/// the planner needs.
#[derive(Clone, Debug, Default)]
pub struct SpecProfile {
    /// Times each call site executed (caller, site instruction).
    pub callsite_counts: HashMap<(FuncId, InstId), u64>,
    /// Times each function was called.
    pub call_counts: HashMap<FuncId, u64>,
    /// Times each guard executed, from prior runs.
    pub guard_exec: HashMap<u32, u64>,
    /// Times each guard failed, from prior runs.
    pub guard_misspec: HashMap<u32, u64>,
}

impl SpecProfile {
    fn exec(&self, id: u32) -> u64 {
        self.guard_exec.get(&id).copied().unwrap_or(0)
    }
    fn misspec(&self, id: u32) -> u64 {
        self.guard_misspec.get(&id).copied().unwrap_or(0)
    }
}

/// What one guard speculates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecAction {
    /// Rewrite indirect call `site` in `func` to a guarded direct call.
    Devirt {
        /// Caller containing the indirect site.
        func: FuncId,
        /// The indirect `Call` instruction.
        site: InstId,
        /// Predicted callee.
        target: FuncId,
    },
    /// Clone `func`'s body with argument `arg` folded to `value`.
    ConstArg {
        /// Function to specialize.
        func: FuncId,
        /// Argument index.
        arg: u32,
        /// Integer kind of the argument.
        kind: IntKind,
        /// Observed constant value.
        value: i64,
    },
}

/// One planned guard: the decision record the offline reoptimizer and the
/// in-memory run must agree on byte-for-byte.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    /// Stable guard id (a pure function of the pre-speculation module
    /// position, independent of the profile).
    pub id: u32,
    /// The speculation.
    pub action: SpecAction,
    /// Human-readable description (canonical; used in the rendered plan).
    pub desc: String,
    /// Prior-run executions of this guard.
    pub exec: u64,
    /// Prior-run failures of this guard.
    pub misspec: u64,
    /// `true` = emit the guard; `false` = retracted by misspec rate.
    pub emit: bool,
}

/// The full speculation plan for one `(module, profile)` pair.
#[derive(Clone, Debug, Default)]
pub struct SpecPlan {
    /// Entries sorted by guard id.
    pub entries: Vec<PlanEntry>,
}

impl SpecPlan {
    /// Entries that will be emitted.
    pub fn emitted(&self) -> usize {
        self.entries.iter().filter(|e| e.emit).count()
    }

    /// Entries retracted by their misspeculation rate.
    pub fn retracted(&self) -> usize {
        self.entries.len() - self.emitted()
    }

    /// Canonical one-line-per-guard rendering. The offline reoptimizer
    /// and `run --speculate` both print exactly this, so tests can
    /// compare the two decision sets byte-for-byte.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "guard {:08x} {} exec={} misspec={} -> {}\n",
                e.id,
                e.desc,
                e.exec,
                e.misspec,
                if e.emit { "emit" } else { "retract" }
            ));
        }
        out
    }
}

/// One emitted guard: the runtime overlay entry the engine keys counters
/// and deoptimization on.
#[derive(Clone, Debug)]
pub struct GuardInfo {
    /// Stable guard id.
    pub id: u32,
    /// Function containing the guard.
    pub func: FuncId,
    /// The guard's `seteq` compare.
    pub cmp: InstId,
    /// The guard's conditional branch (`then` = speculated fast path).
    pub br: InstId,
    /// Canonical description.
    pub desc: String,
}

/// The ephemeral guard overlay for a speculated module. Never persisted:
/// re-derived from `(module, profile, options)` each run.
#[derive(Clone, Debug, Default)]
pub struct SpecMap {
    /// Emitted guards, in application order.
    pub guards: Vec<GuardInfo>,
    by_br: HashMap<(FuncId, InstId), usize>,
}

impl SpecMap {
    /// The guard whose conditional branch is `br` in `func`, if any.
    pub fn guard_at(&self, func: FuncId, br: InstId) -> Option<&GuardInfo> {
        self.by_br.get(&(func, br)).map(|&i| &self.guards[i])
    }

    /// Number of emitted guards.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Whether no guards were emitted.
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    fn push(&mut self, g: GuardInfo) {
        self.by_br.insert((g.func, g.br), self.guards.len());
        self.guards.push(g);
    }
}

/// The retraction decision: pure integer arithmetic so the offline and
/// in-memory evaluations can never diverge (no floats, no ordering
/// sensitivity, saturation-safe at `u64::MAX`).
pub fn should_retract(exec: u64, misspec: u64, opts: &SpecOptions) -> bool {
    exec >= opts.min_samples
        && (misspec as u128) * 100 >= (exec as u128) * (opts.misspec_threshold_pct as u128)
}

// Guard ids pack the pre-speculation module position so they are stable
// across runs and independent of which guards are emitted:
//   bit 31     — kind (0 = devirt at a call site, 1 = const-arg)
//   bits 16-30 — function index (< 2^15)
//   bits 0-15  — site instruction index / argument index (< 2^16)
fn devirt_id(f: FuncId, site: InstId) -> Option<u32> {
    if f.index() < (1 << 15) && site.index() < (1 << 16) {
        Some(((f.index() as u32) << 16) | site.index() as u32)
    } else {
        None
    }
}

fn constarg_id(f: FuncId, arg: u32) -> Option<u32> {
    if f.index() < (1 << 15) && arg < (1 << 16) {
        Some((1 << 31) | ((f.index() as u32) << 16) | arg)
    } else {
        None
    }
}

/// Compute the speculation plan for `(m, profile)` without mutating `m`.
///
/// Deterministic: candidates are enumerated in `(function, instruction)`
/// order, ties broken by index, and the result is sorted by guard id and
/// capped at [`SpecOptions::max_guards`]. Both `lpatc run --speculate`
/// and the offline reoptimizer call exactly this.
pub fn compute_plan(m: &Module, profile: &SpecProfile, opts: &SpecOptions) -> SpecPlan {
    let mut sp = trace::span("spec", "plan");
    let cg = CallGraph::build(m);
    let dsa = Dsa::analyze(m, &cg, &DsaOptions::default());
    let mut entries = Vec::new();
    devirt_candidates(m, &cg, &dsa, profile, opts, &mut entries);
    constarg_candidates(m, &cg, profile, opts, &mut entries);
    entries.sort_by_key(|e: &PlanEntry| e.id);
    entries.truncate(opts.max_guards);
    sp.arg("entries", entries.len().to_string());
    SpecPlan { entries }
}

fn devirt_candidates(
    m: &Module,
    cg: &CallGraph,
    dsa: &Dsa,
    profile: &SpecProfile,
    opts: &SpecOptions,
    out: &mut Vec<PlanEntry>,
) {
    let mut sites: Vec<((FuncId, InstId), u64)> = profile
        .callsite_counts
        .iter()
        .filter(|(_, &c)| c >= opts.hot_threshold)
        .map(|(&k, &c)| (k, c))
        .collect();
    sites.sort_by_key(|&((f, i), _)| (f.index(), i.index()));
    for ((fid, site), _count) in sites {
        if fid.index() >= m.num_funcs() {
            continue;
        }
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        if f.inst_blocks()
            .get(site.index())
            .copied()
            .flatten()
            .is_none()
        {
            continue;
        }
        // Only plain indirect calls: invoke sites keep their two-successor
        // shape and are left to the safe devirtualizer.
        let callee = match f.inst(site) {
            Inst::Call { callee, .. } if !matches!(callee, Value::Const(_)) => *callee,
            _ => continue,
        };
        let Some(id) = devirt_id(fid, site) else {
            continue;
        };
        let fn_ty = match m.types.pointee(m.value_type(f, callee)) {
            Some(t) => t,
            None => continue,
        };
        // Candidate targets: address-taken definitions of the right type
        // (the call graph's conservative indirect-call target set).
        let candidates: Vec<FuncId> = m
            .func_ids()
            .filter(|&g| {
                cg.is_address_taken(g)
                    && !m.func(g).is_declaration()
                    && m.func(g).fn_type() == fn_ty
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        // DSA narrows trust: a collapsed or externally-reachable
        // points-to node for the function pointer means the value may
        // come from code the analysis never saw, so a single-candidate
        // shortcut is not justified and profile evidence is required.
        let trusted = dsa
            .node_of(m, fid, callee)
            .map(|n| !dsa.is_collapsed(n) && !dsa.node_flags(n).external)
            .unwrap_or(false);
        let target = if candidates.len() == 1 && trusted {
            candidates[0]
        } else {
            let best = candidates
                .iter()
                .map(|&g| (profile.call_counts.get(&g).copied().unwrap_or(0), g))
                .max_by_key(|&(c, g)| (c, std::cmp::Reverse(g.index())));
            match best {
                Some((c, g)) if c > 0 => g,
                _ => continue,
            }
        };
        let (exec, misspec) = (profile.exec(id), profile.misspec(id));
        out.push(PlanEntry {
            id,
            desc: format!(
                "devirt {}@{} => {}",
                f.name,
                site.index(),
                m.func(target).name
            ),
            action: SpecAction::Devirt {
                func: fid,
                site,
                target,
            },
            exec,
            misspec,
            emit: !should_retract(exec, misspec, opts),
        });
    }
}

fn constarg_candidates(
    m: &Module,
    cg: &CallGraph,
    profile: &SpecProfile,
    opts: &SpecOptions,
    out: &mut Vec<PlanEntry>,
) {
    // Gather, per callee, the constant-argument evidence from every
    // direct call site in the module.
    // (arg index, kind, value) -> summed hot-site weight
    let mut weights: HashMap<(FuncId, u32, IntKind, i64), u64> = HashMap::new();
    // arg positions seeing a non-constant or conflicting value
    let mut varying: HashMap<(FuncId, u32), bool> = HashMap::new();
    for (caller, cf) in m.funcs() {
        if cf.is_declaration() {
            continue;
        }
        for iid in cf.inst_ids_in_order() {
            let (callee, args) = match cf.inst(iid) {
                Inst::Call { callee, args } | Inst::Invoke { callee, args, .. } => (callee, args),
                _ => continue,
            };
            let target = match callee {
                Value::Const(c) => match m.consts.get(*c) {
                    lpat_core::Const::FuncAddr(t) => *t,
                    _ => continue,
                },
                _ => continue,
            };
            let w = profile
                .callsite_counts
                .get(&(caller, iid))
                .copied()
                .unwrap_or(0);
            for (j, &a) in args.iter().enumerate() {
                let j = j as u32;
                match a {
                    Value::Const(c) => match m.consts.as_int(c) {
                        Some((kind, v)) => {
                            *weights.entry((target, j, kind, v)).or_insert(0) += w;
                        }
                        None => {
                            varying.insert((target, j), true);
                        }
                    },
                    _ => {
                        varying.insert((target, j), true);
                    }
                }
            }
        }
    }
    let mut fids: Vec<FuncId> = m.func_ids().collect();
    fids.sort_by_key(|f| f.index());
    for fid in fids {
        let f = m.func(fid);
        if f.is_declaration()
            || f.is_varargs()
            || f.num_insts() > opts.max_clone_insts
            || f.params().is_empty()
        {
            continue;
        }
        // An entry block with φs (a looping CFG edge back to the entry)
        // cannot be split safely; skip.
        if f.block_insts(f.entry())
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Phi { .. }))
        {
            continue;
        }
        // Pick the hottest (arg, value); ties break toward the lowest
        // argument index, then the smallest value.
        let mut best: Option<(u64, u32, IntKind, i64)> = None;
        for (&(g, j, kind, v), &w) in &weights {
            if g != fid || w < opts.hot_threshold {
                continue;
            }
            // The observed kind must be the declared parameter kind.
            if m.types.int_kind(f.params()[j as usize]) != Some(kind) {
                continue;
            }
            let cand = (w, j, kind, v);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if (cand.0, std::cmp::Reverse(cand.1), std::cmp::Reverse(cand.3))
                        > (b.0, std::cmp::Reverse(b.1), std::cmp::Reverse(b.3))
                    {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let Some((_, arg, kind, value)) = best else {
            continue;
        };
        // If no call can disagree — not address-taken and every direct
        // site passes this same constant — interprocedural constant
        // propagation handles it without a guard; speculation would only
        // add overhead.
        let can_vary =
            cg.is_address_taken(fid) || varying.get(&(fid, arg)).copied().unwrap_or(false) || {
                weights
                    .iter()
                    .any(|(&(g, j, k, v), _)| g == fid && j == arg && (k, v) != (kind, value))
            };
        if !can_vary {
            continue;
        }
        let Some(id) = constarg_id(fid, arg) else {
            continue;
        };
        let (exec, misspec) = (profile.exec(id), profile.misspec(id));
        out.push(PlanEntry {
            id,
            desc: format!("constarg {} arg{} == {}", f.name, arg, value),
            action: SpecAction::ConstArg {
                func: fid,
                arg,
                kind,
                value,
            },
            exec,
            misspec,
            emit: !should_retract(exec, misspec, opts),
        });
    }
}

/// Compute the plan and apply every emitted entry to `m`, returning the
/// guard overlay plus the plan. The module is mutated in place; callers
/// that need the unspeculated module (hash keying, the lifelong store)
/// must take it before calling this.
pub fn speculate(m: &mut Module, profile: &SpecProfile, opts: &SpecOptions) -> (SpecMap, SpecPlan) {
    let plan = compute_plan(m, profile, opts);
    let mut sp = trace::span("spec", "apply");
    let mut map = SpecMap::default();
    for e in &plan.entries {
        if !e.emit {
            continue;
        }
        let applied = match e.action {
            SpecAction::Devirt { func, site, target } => apply_devirt(m, func, site, target),
            SpecAction::ConstArg {
                func,
                arg,
                kind,
                value,
            } => apply_constarg(m, func, arg, kind, value),
        };
        if let Some((cmp, br)) = applied {
            let func = match e.action {
                SpecAction::Devirt { func, .. } | SpecAction::ConstArg { func, .. } => func,
            };
            if trace::enabled() {
                trace::instant_args(
                    "spec",
                    "guard",
                    vec![("id", format!("{:08x}", e.id)), ("desc", e.desc.clone())],
                );
            }
            map.push(GuardInfo {
                id: e.id,
                func,
                cmp,
                br,
                desc: e.desc.clone(),
            });
        }
    }
    sp.arg("guards", map.len().to_string());
    (map, plan)
}

/// Rewrite indirect call `site` into
/// `%g = seteq fp, @target; br %g, fast, slow` with a direct call on the
/// fast path, the original call on the slow path, and a φ merging the
/// result. Returns the guard's `(cmp, br)` on success.
fn apply_devirt(
    m: &mut Module,
    fid: FuncId,
    site: InstId,
    target: FuncId,
) -> Option<(InstId, InstId)> {
    let f = m.func(fid);
    let b = f.inst_blocks().get(site.index()).copied().flatten()?;
    let (callee, args) = match f.inst(site) {
        Inst::Call { callee, args } if !matches!(callee, Value::Const(_)) => {
            (*callee, args.clone())
        }
        _ => return None,
    };
    // The rewrite must be well-typed: the pointer's function type must be
    // exactly the target's.
    if m.types.pointee(m.value_type(f, callee)) != Some(m.func(target).fn_type()) {
        return None;
    }
    let ret_ty = f.inst_ty(site);
    let result_used = f.use_counts()[site.index()] > 0;
    let void = m.types.void();
    let is_void = ret_ty == void;
    let bool_ty = m.types.bool_();
    let addr = m.consts.func_addr(target);

    let fm = m.func_mut(fid);
    let insts = fm.block_insts(b).to_vec();
    let pos = insts.iter().position(|&i| i == site)?;
    let before = insts[..pos].to_vec();
    let after = insts[pos + 1..].to_vec();
    let fast = fm.add_block();
    let slow = fm.add_block();
    let cont = fm.add_block();
    // b keeps the prefix and gains the guard.
    fm.set_block_insts(b, before);
    let cmp = fm.append_inst(
        b,
        Inst::Cmp {
            pred: CmpPred::Eq,
            lhs: callee,
            rhs: Value::Const(addr),
        },
        bool_ty,
    );
    let br = fm.append_inst(
        b,
        Inst::CondBr {
            cond: Value::Inst(cmp),
            then_bb: fast,
            else_bb: slow,
        },
        void,
    );
    // Fast path: the direct call.
    let direct = fm.append_inst(
        fast,
        Inst::Call {
            callee: Value::Const(addr),
            args,
        },
        ret_ty,
    );
    fm.append_inst(fast, Inst::Br(cont), void);
    // Slow path: the original indirect call, moved.
    fm.set_block_insts(slow, vec![site]);
    fm.append_inst(slow, Inst::Br(cont), void);
    // Continuation: the rest of the split block.
    fm.set_block_insts(cont, after);
    // The split moved b's terminator into cont: φs in its successors
    // must re-point their incoming edge.
    let succs = fm.successors(cont);
    for s in succs {
        for pid in fm.block_insts(s).to_vec() {
            if let Inst::Phi { incoming } = fm.inst_mut(pid) {
                for (_, pb) in incoming {
                    if *pb == b {
                        *pb = cont;
                    }
                }
            }
        }
    }
    // Merge the two results.
    if !is_void && result_used {
        let phi = fm.new_inst(
            Inst::Phi {
                incoming: Vec::new(),
            },
            ret_ty,
        );
        fm.insert_inst(cont, 0, phi);
        fm.replace_all_uses(Value::Inst(site), Value::Inst(phi));
        *fm.inst_mut(phi) = Inst::Phi {
            incoming: vec![(Value::Inst(direct), fast), (Value::Inst(site), slow)],
        };
    }
    Some((cmp, br))
}

/// Clone `fid`'s body with `Arg(arg)` folded to `value`, and split the
/// entry into `%g = seteq arg, C; br %g, clone_entry, original_entry`.
/// Returns the guard's `(cmp, br)` on success.
fn apply_constarg(
    m: &mut Module,
    fid: FuncId,
    arg: u32,
    kind: IntKind,
    value: i64,
) -> Option<(InstId, InstId)> {
    {
        let f = m.func(fid);
        if f.is_declaration() || m.types.int_kind(*f.params().get(arg as usize)?) != Some(kind) {
            return None;
        }
        if f.block_insts(f.entry())
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Phi { .. }))
        {
            return None;
        }
    }
    let cval = Value::Const(m.consts.int(kind, value));
    let bool_ty = m.types.bool_();
    let void = m.types.void();
    let snapshot = m.func(fid).clone();
    let fm = m.func_mut(fid);
    // Allocate clone ids: instructions first (arena append order), then
    // blocks.
    let base_inst = fm.num_inst_slots();
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for (k, old) in snapshot.inst_ids_in_order().enumerate() {
        inst_map.insert(old, InstId::from_index(base_inst + k));
    }
    let base_block = fm.num_blocks();
    let block_map = |old: BlockId| BlockId::from_index(base_block + old.index());
    for _ in snapshot.block_ids() {
        fm.add_block();
    }
    for ob in snapshot.block_ids() {
        let nb = block_map(ob);
        for &oi in snapshot.block_insts(ob) {
            let mut inst = snapshot.inst(oi).clone();
            inst.map_operands(|v| match v {
                Value::Arg(i) if i == arg => cval,
                Value::Inst(d) => Value::Inst(inst_map[&d]),
                other => other,
            });
            inst.map_successors(block_map);
            let made = fm.new_inst(inst, snapshot.inst_ty(oi));
            debug_assert_eq!(Some(&made), inst_map.get(&oi));
            let mut list = fm.block_insts(nb).to_vec();
            list.push(made);
            fm.set_block_insts(nb, list);
        }
    }
    // Split the entry: its contents move to `cold`, and the entry becomes
    // the guard. Back-edges into the old entry (and φ incoming records in
    // the *original* body) re-point to `cold`; the clone's references were
    // already remapped and are untouched.
    let entry = snapshot.entry();
    let cold = fm.add_block();
    let moved = fm.block_insts(entry).to_vec();
    fm.set_block_insts(entry, Vec::new());
    fm.set_block_insts(cold, moved);
    for ob in snapshot.block_ids() {
        for iid in fm.block_insts(ob).to_vec() {
            fm.inst_mut(iid)
                .map_successors(|s| if s == entry { cold } else { s });
        }
    }
    let cmp = fm.append_inst(
        entry,
        Inst::Cmp {
            pred: CmpPred::Eq,
            lhs: Value::Arg(arg),
            rhs: cval,
        },
        bool_ty,
    );
    let br = fm.append_inst(
        entry,
        Inst::CondBr {
            cond: Value::Inst(cmp),
            then_bb: block_map(entry),
            else_bb: cold,
        },
        void,
    );
    Some((cmp, br))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn find_indirect_site(m: &Module, fname: &str) -> (FuncId, InstId) {
        for (fid, f) in m.funcs() {
            if f.name != fname {
                continue;
            }
            for iid in f.inst_ids_in_order() {
                if let Inst::Call { callee, .. } = f.inst(iid) {
                    if !matches!(callee, Value::Const(_)) {
                        return (fid, iid);
                    }
                }
            }
        }
        panic!("no indirect site in {fname}");
    }

    const DISPATCH: &str = "
define internal int @alpha(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal int @beta(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @disp(int (int)* %fp, int %x) {
e:
  %r = call int %fp(int %x)
  %s = add int %r, 0
  ret int %s
}
define int @main() {
e:
  %a = call int @disp(int (int)* @alpha, int 5)
  %b = call int @disp(int (int)* @beta, int 5)
  %r = add int %a, %b
  ret int %r
}";

    fn dispatch_profile(m: &Module) -> SpecProfile {
        let (disp, site) = find_indirect_site(m, "disp");
        let alpha = m
            .funcs()
            .find(|(_, f)| f.name == "alpha")
            .map(|(id, _)| id)
            .unwrap();
        let mut p = SpecProfile::default();
        p.callsite_counts.insert((disp, site), 100);
        p.call_counts.insert(alpha, 90);
        p
    }

    #[test]
    fn devirt_guard_emitted_and_verifies() {
        let mut m = parse_module("t", DISPATCH).unwrap();
        m.verify().unwrap();
        let p = dispatch_profile(&m);
        let (map, plan) = speculate(&mut m, &p, &SpecOptions::default());
        assert_eq!(map.len(), 1, "{}", plan.render());
        assert_eq!(plan.emitted(), 1);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let text = m.display().to_string();
        assert!(text.contains("seteq"), "{text}");
        assert!(text.contains("call int @alpha"), "{text}");
        // The overlay keys the guard by its branch.
        let g = &map.guards[0];
        assert!(map.guard_at(g.func, g.br).is_some());
        assert!(g.desc.contains("devirt disp@"), "{}", g.desc);
    }

    #[test]
    fn plan_is_deterministic_and_pure() {
        let m = parse_module("t", DISPATCH).unwrap();
        let p = dispatch_profile(&m);
        let before = m.display().to_string();
        let a = compute_plan(&m, &p, &SpecOptions::default());
        let b = compute_plan(&m, &p, &SpecOptions::default());
        assert_eq!(a.render(), b.render());
        assert_eq!(m.display().to_string(), before, "plan must not mutate");
    }

    #[test]
    fn misspec_rate_retracts_guard() {
        let mut m = parse_module("t", DISPATCH).unwrap();
        let mut p = dispatch_profile(&m);
        let opts = SpecOptions::default();
        let id = compute_plan(&m, &p, &opts).entries[0].id;
        // Half the executions failed: way past the 25% threshold.
        p.guard_exec.insert(id, 100);
        p.guard_misspec.insert(id, 50);
        let (map, plan) = speculate(&mut m, &p, &opts);
        assert!(map.is_empty());
        assert_eq!(plan.retracted(), 1);
        assert!(plan.render().contains("-> retract"), "{}", plan.render());
        // Below min_samples the rate test must not fire.
        assert!(!should_retract(2, 2, &opts));
        assert!(should_retract(u64::MAX, u64::MAX, &opts), "saturation-safe");
    }

    #[test]
    fn constarg_specialization_clones_and_verifies() {
        let mut m = parse_module(
            "t",
            "
define internal int @poly(int %n, int %k) {
e:
  %c = setgt int %n, 0
  br bool %c, label %l, label %d
l:
  %r = mul int %n, %k
  ret int %r
d:
  ret int 0
}
@tbl = constant [1 x int (int, int)*] [ int (int, int)* @poly ]
define int @main(int %x) {
e:
  %a = call int @poly(int %x, int 7)
  ret int %a
}",
        )
        .unwrap();
        m.verify().unwrap();
        let poly = m
            .funcs()
            .find(|(_, f)| f.name == "poly")
            .map(|(id, _)| id)
            .unwrap();
        let (main, site) = {
            let (mid, f) = m.funcs().find(|(_, f)| f.name == "main").unwrap();
            let site = f
                .inst_ids_in_order()
                .find(|&i| matches!(f.inst(i), Inst::Call { .. }))
                .unwrap();
            (mid, site)
        };
        let mut p = SpecProfile::default();
        p.callsite_counts.insert((main, site), 500);
        p.call_counts.insert(poly, 500);
        let (map, plan) = speculate(&mut m, &p, &SpecOptions::default());
        assert!(
            plan.entries
                .iter()
                .any(|e| e.desc.contains("constarg poly arg1 == 7")),
            "{}",
            plan.render()
        );
        assert_eq!(map.len(), plan.emitted());
        assert!(!map.is_empty(), "{}", plan.render());
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        // The clone folded the argument (printer names: args are %aN) and
        // the guard compares it at entry.
        let text = m.display().to_string();
        assert!(text.contains("mul int %a0, 7"), "{text}");
        assert!(text.contains("seteq int %a1, 7"), "{text}");
    }

    #[test]
    fn cold_profile_emits_nothing() {
        let mut m = parse_module("t", DISPATCH).unwrap();
        let before = m.display().to_string();
        let (map, plan) = speculate(&mut m, &SpecProfile::default(), &SpecOptions::default());
        assert!(map.is_empty());
        assert!(plan.entries.is_empty());
        assert_eq!(m.display().to_string(), before);
    }
}
