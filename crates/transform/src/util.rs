//! Shared CFG utilities for transforms.

use lpat_core::{Function, Module};

/// Remove blocks unreachable from the entry, fixing φ-nodes.
///
/// Returns whether anything was removed. No-op on declarations.
pub fn remove_unreachable_blocks(f: &mut Function) -> bool {
    if f.is_declaration() {
        return false;
    }
    let n = f.num_blocks();
    let mut reach = vec![false; n];
    let mut work = vec![f.entry()];
    reach[f.entry().index()] = true;
    while let Some(b) = work.pop() {
        for s in f.successors(b) {
            if !reach[s.index()] {
                reach[s.index()] = true;
                work.push(s);
            }
        }
    }
    if reach.iter().all(|&r| r) {
        return false;
    }
    f.retain_blocks(&reach);
    true
}

/// Count the linked instructions of every function (a convenient change
/// metric for tests).
pub fn inst_count(m: &Module) -> usize {
    m.total_insts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn removes_unreachable_and_fixes_phis() {
        let mut m = parse_module(
            "t",
            "
define int @f(int %x) {
e:
  br label %live
dead:
  br label %join
live:
  br label %join
join:
  %p = phi int [ 1, %dead ], [ 2, %live ]
  ret int %p
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert!(remove_unreachable_blocks(m.func_mut(fid)));
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let f = m.func(fid);
        assert_eq!(f.num_blocks(), 3);
        // The phi lost its dead incoming edge.
        let text = m.display();
        assert!(!text.contains("[ 1,"), "{text}");
        assert!(text.contains("[ 2,"), "{text}");
    }

    #[test]
    fn no_change_when_all_reachable() {
        let mut m = parse_module("t", "define void @f() {\ne:\n  ret void\n}").unwrap();
        let fid = m.func_by_name("f").unwrap();
        assert!(!remove_unreachable_blocks(m.func_mut(fid)));
    }
}
