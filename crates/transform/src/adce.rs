//! Aggressive dead-code elimination.
//!
//! Liveness is computed from roots (terminators, stores, calls) backwards
//! through operands; everything unmarked is deleted. Unlike the simple
//! [`crate::scalar::Dce`] fixpoint, this removes *cyclic* dead code —
//! e.g. a dead loop-carried φ chain — in one pass, and also deletes dead
//! loads and allocations.

use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::{FuncId, Inst, InstId, Module, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;

/// The aggressive DCE pass.
#[derive(Default)]
pub struct Adce {
    removed: AtomicUsize,
}

impl FunctionPass for Adce {
    fn name(&self) -> &'static str {
        "adce"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let n = adce_unit(u);
        self.removed.fetch_add(n, Ordering::Relaxed);
        // Only instructions with no observable effect are deleted; blocks
        // and calls survive.
        PassEffect::from_change(n > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "removed {} dead instructions",
            self.removed.load(Ordering::Relaxed)
        )
    }
}

/// Whether an instruction is a liveness root (its execution is observable
/// regardless of whether its result is used).
fn is_root(inst: &Inst) -> bool {
    match inst {
        Inst::Store { .. }
        | Inst::Call { .. }
        | Inst::Invoke { .. }
        | Inst::Free(_)
        | Inst::VaArg { .. } => true,
        t => t.is_terminator(),
    }
}

/// Run aggressive DCE on one function; returns removed count.
pub fn adce_function(m: &mut Module, fid: FuncId) -> usize {
    crate::fpm::with_unit(m, fid, adce_unit)
}

/// Aggressive DCE against a [`FuncUnit`]; returns removed count.
pub fn adce_unit(u: &mut FuncUnit<'_>) -> usize {
    let f = &*u.func;
    if f.is_declaration() {
        return 0;
    }
    let n = f.num_inst_slots();
    let mut live = vec![false; n];
    let mut work: Vec<InstId> = Vec::new();
    for iid in f.inst_ids_in_order() {
        if is_root(f.inst(iid)) {
            live[iid.index()] = true;
            work.push(iid);
        }
    }
    while let Some(iid) = work.pop() {
        f.inst(iid).for_each_operand(|v| {
            if let Value::Inst(d) = v {
                if !live[d.index()] {
                    live[d.index()] = true;
                    work.push(d);
                }
            }
        });
    }
    let mut dead = Vec::new();
    for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            if !live[iid.index()] {
                dead.push((b, iid));
            }
        }
    }
    let removed = dead.len();
    let fm = &mut *u.func;
    for (b, iid) in dead {
        fm.remove_inst(b, iid);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn opt(src: &str) -> (Module, usize) {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        let n = adce_function(&mut m, fid);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        (m, n)
    }

    #[test]
    fn removes_cyclic_dead_phis() {
        // A dead induction chain: the φ and its increment feed only each
        // other; the loop itself stays (its branch is a root).
        let (m, n) = opt("
define int @f(int %n) {
e:
  br label %h
h:
  %dead = phi int [ 0, %e ], [ %dead2, %h ]
  %i = phi int [ 0, %e ], [ %i2, %h ]
  %dead2 = add int %dead, 7
  %i2 = add int %i, 1
  %c = setlt int %i2, %n
  br bool %c, label %h, label %x
x:
  ret int %i2
}");
        assert_eq!(n, 2);
        let text = m.display();
        assert!(!text.contains(", 7"), "dead add survived: {text}");
        assert!(text.contains("%t2 = phi"), "{text}");
    }

    #[test]
    fn removes_dead_loads_and_allocs() {
        let (m, n) = opt("
define void @f(int* %p) {
e:
  %x = load int* %p
  %a = malloc int
  %s = alloca int
  ret void
}");
        assert_eq!(n, 3);
        assert_eq!(m.func(m.func_by_name("f").unwrap()).num_insts(), 1);
    }

    #[test]
    fn keeps_observable_effects() {
        let (m, n) = opt("
declare void @ext(int)
define void @f() {
e:
  %x = add int 1, 2
  call void @ext(int %x)
  ret void
}");
        assert_eq!(n, 0);
        assert!(m.display().contains("call void @ext"));
    }
}
