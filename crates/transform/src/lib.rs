//! # lpat-transform — scalar and interprocedural transformations
//!
//! The optimizer library of the framework. Front-ends invoke the
//! compile-time pipeline (SSA construction + scalar cleanups, paper §3.2);
//! the linker invokes the interprocedural pipeline (internalize, IPCP, DAE,
//! DGE, inlining, EH pruning — paper §3.3). The [`pm::PassManager`] records
//! per-pass timings, which regenerate the paper's Table 2.
//!
//! Passes:
//!
//! | pass | module | paper hook |
//! |------|--------|------------|
//! | stack promotion | [`mem2reg`] | §3.2 SSA construction |
//! | scalar expansion | [`sroa`] | §3.2 |
//! | const fold / identities | [`scalar`] | §2.2 |
//! | reassociation | [`reassociate`] | §2.2 (explicit address arithmetic) |
//! | CFG simplification | [`simplifycfg`] | — |
//! | redundancy elimination | [`gvn`] | §2.1 (SSA benefits) |
//! | aggressive DCE | [`adce`] | footnote 9 |
//! | inlining | [`inline`] | Table 2, §2.4 unwind→branch |
//! | devirtualization | [`devirtualize`] | §4.1.1 virtual-call resolution |
//! | internalize / DGE / DAE / IPCP | [`ipo`] | §3.3, Table 2 |
//! | EH pruning | [`prune_eh`] | §2.4, §4.1.2 |

#![warn(missing_docs)]

pub mod adce;
pub mod devirtualize;
pub mod fpm;
pub mod gvn;
pub mod inline;
pub mod ipo;
pub mod mem2reg;
pub mod pipelines;
pub mod pm;
pub mod prune_eh;
pub mod reassociate;
pub mod scalar;
pub mod simplifycfg;
pub mod speculate;
pub mod sroa;
pub mod util;

pub use fpm::{FuncUnit, FunctionPass, FunctionPassAdapter};
pub use pipelines::{function_pipeline, link_time_pipeline};
pub use pm::{
    default_jobs, FaultCause, FuncTiming, ModulePass, PassContext, PassDetails, PassEffect,
    PassExecution, PassFault, PassManager, PipelineReport,
};
pub use speculate::{SpecMap, SpecOptions, SpecPlan, SpecProfile};
