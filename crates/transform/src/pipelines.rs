//! Standard pass pipelines.
//!
//! * [`function_pipeline`] — the per-module "static optimizer" a front-end
//!   invokes at compile time (paper §3.2): SSA construction (scalar
//!   expansion + stack promotion) followed by scalar cleanups.
//! * [`link_time_pipeline`] — the whole-program interprocedural pipeline
//!   run by the linker (paper §3.3): internalize, IPCP, DAE, DGE,
//!   inlining, EH pruning, then scalar cleanup of the inlined code.

use crate::adce::Adce;
use crate::devirtualize::Devirtualize;
use crate::fpm::FunctionPassAdapter;
use crate::gvn::Gvn;
use crate::inline::Inline;
use crate::ipo::{Dae, Dge, Internalize, Ipcp};
use crate::mem2reg::Mem2Reg;
use crate::pm::PassManager;
use crate::prune_eh::PruneEh;
use crate::reassociate::Reassociate;
use crate::scalar::{Dce, InstSimplify};
use crate::simplifycfg::SimplifyCfg;
use crate::sroa::Sroa;

/// The per-module (compile-time) optimization pipeline.
///
/// All passes are function passes, so the whole pipeline runs as one
/// [`FunctionPassAdapter`] stage: each function flows through every pass
/// (sharing cached analyses), and independent functions run on worker
/// threads.
pub fn function_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(
        FunctionPassAdapter::new("function-opts")
            .add(Sroa::default())
            .add(Mem2Reg::default())
            .add(InstSimplify::default())
            .add(Reassociate::default())
            .add(InstSimplify::default())
            .add(Gvn::default())
            .add(SimplifyCfg::default())
            .add(Adce::default())
            .add(SimplifyCfg::default()),
    );
    pm
}

/// The link-time interprocedural pipeline.
pub fn link_time_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(Internalize::default());
    pm.add(Devirtualize::default());
    pm.add(Ipcp::default());
    pm.add(Dae::default());
    pm.add(Dge::default());
    pm.add(Inline::default());
    pm.add(PruneEh::default());
    // Clean up what inlining exposed: callee allocas promote again, then
    // scalar folding (twice: GVN's store-to-load forwarding feeds the
    // second round).
    pm.add(
        FunctionPassAdapter::new("cleanup")
            .add(Sroa::default())
            .add(Mem2Reg::default())
            .add(InstSimplify::default())
            .add(Gvn::default())
            .add(InstSimplify::default())
            .add(SimplifyCfg::default())
            .add(Adce::default())
            .add(SimplifyCfg::default())
            .add(Dce::default()),
    );
    pm.add(Dge::default());
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn full_pipeline_on_realistic_module() {
        // A miniature whole program: helper functions, a global, a loop
        // written through allocas (front-end style, pre-SSA).
        let mut m = parse_module(
            "t",
            "
@limit = global int 10
define int @square(int %x) {
e:
  %r = mul int %x, %x
  ret int %r
}
define int @sum_squares() {
e:
  %i = alloca int
  %s = alloca int
  store int 0, int* %i
  store int 0, int* %s
  br label %h
h:
  %iv = load int* %i
  %lim = load int* @limit
  %c = setlt int %iv, %lim
  br bool %c, label %b, label %x
b:
  %sq = call int @square(int %iv)
  %sv = load int* %s
  %s2 = add int %sv, %sq
  store int %s2, int* %s
  %i2 = add int %iv, 1
  store int %i2, int* %i
  br label %h
x:
  %r = load int* %s
  ret int %r
}
define int @unused_helper(int %a) {
e:
  ret int %a
}
define int @main() {
e:
  %v = call int @sum_squares()
  ret int %v
}",
        )
        .unwrap();
        m.verify().unwrap();
        let mut pm = function_pipeline();
        pm.verify_each = true;
        pm.run(&mut m);
        let mut pm = link_time_pipeline();
        pm.verify_each = true;
        let report = pm.run(&mut m);
        assert!(report.changed());
        let text = m.display();
        // Allocas promoted, unused helper removed, square inlined.
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("unused_helper"), "{text}");
        assert!(!text.contains("call int @square"), "{text}");
        assert!(m.func_by_name("main").is_some());
    }
}
