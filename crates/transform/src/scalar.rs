//! Scalar simplifications: constant folding, algebraic identities, and
//! dead-instruction elimination.
//!
//! `InstSimplify` is the workhorse run repeatedly between the structural
//! passes; `Dce` removes unused side-effect-free instructions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use lpat_analysis::PreservedAnalyses;
use lpat_core::fold::{fold_bin, fold_cast, fold_cmp};
use lpat_core::{BinOp, Const, FuncId, Inst, InstId, Module, Value};

use crate::fpm::{FuncUnit, FunctionPass};
use crate::pm::PassEffect;

/// Constant folding plus algebraic identity simplification.
#[derive(Default)]
pub struct InstSimplify {
    simplified: AtomicUsize,
}

impl FunctionPass for InstSimplify {
    fn name(&self) -> &'static str {
        "instsimplify"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let mut rounds = 0;
        while simplify_unit(u) {
            rounds += 1;
        }
        self.simplified.fetch_add(rounds, Ordering::Relaxed);
        // Only pure instructions are replaced; CFG and calls untouched.
        PassEffect::from_change(rounds > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "{} simplification rounds",
            self.simplified.load(Ordering::Relaxed)
        )
    }
}

/// One simplification sweep over a function; returns whether anything
/// changed (callers iterate to a fixpoint).
pub fn simplify_function(m: &mut Module, fid: FuncId) -> bool {
    crate::fpm::with_unit(m, fid, simplify_unit)
}

/// One simplification sweep against a [`FuncUnit`].
pub fn simplify_unit(u: &mut FuncUnit<'_>) -> bool {
    if u.func.is_declaration() {
        return false;
    }
    let mut repl: HashMap<InstId, Value> = HashMap::new();
    let ids: Vec<InstId> = u.func.inst_ids_in_order().collect();
    for iid in ids {
        if let Some(v) = simplify_inst(u, iid) {
            repl.insert(iid, v);
        }
    }
    if repl.is_empty() {
        return false;
    }
    let fm = &mut *u.func;
    let n = fm.num_inst_slots();
    for i in 0..n {
        let iid = InstId::from_index(i);
        fm.inst_mut(iid).map_operands(|mut v| {
            while let Value::Inst(d) = v {
                match repl.get(&d) {
                    Some(&x) => v = x,
                    None => break,
                }
            }
            v
        });
    }
    // The replaced instructions are now dead; drop them.
    let inst_blocks = fm.inst_blocks();
    for &iid in repl.keys() {
        if let Some(b) = inst_blocks[iid.index()] {
            fm.remove_inst(b, iid);
        }
    }
    true
}

/// Try to simplify one instruction to an existing value.
fn simplify_inst(u: &mut FuncUnit<'_>, iid: InstId) -> Option<Value> {
    let inst = u.func.inst(iid).clone();
    fn as_const(u: &FuncUnit<'_>, v: Value) -> Option<Const> {
        match v {
            Value::Const(c) => Some(u.consts.get(c).clone()),
            _ => None,
        }
    }
    fn int_val(u: &FuncUnit<'_>, v: Value) -> Option<i64> {
        match as_const(u, v)? {
            Const::Int { value, .. } => Some(value),
            _ => None,
        }
    }
    fn vty(u: &FuncUnit<'_>, v: Value) -> lpat_core::TypeId {
        u.value_type(v)
    }
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            // Constant folding.
            if let (Some(a), Some(b)) = (as_const(u, lhs), as_const(u, rhs)) {
                if let Some(c) = fold_bin(u.consts, op, &a, &b) {
                    let id = u.consts.intern(c);
                    return Some(Value::Const(id));
                }
            }
            let ty = vty(u, lhs);
            let is_int = u.types.is_int(ty);
            // Identities (integer only: float identities are unsound under
            // NaN/-0.0).
            if is_int {
                match op {
                    BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                        if int_val(u, rhs) == Some(0) {
                            return Some(lhs);
                        }
                        if matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor)
                            && int_val(u, lhs) == Some(0)
                        {
                            return Some(rhs);
                        }
                    }
                    BinOp::Sub => {
                        if int_val(u, rhs) == Some(0) {
                            return Some(lhs);
                        }
                        if lhs == rhs {
                            let k = u.types.int_kind(ty)?;
                            return Some(Value::Const(u.consts.int(k, 0)));
                        }
                    }
                    BinOp::Mul => {
                        if int_val(u, rhs) == Some(1) {
                            return Some(lhs);
                        }
                        if int_val(u, lhs) == Some(1) {
                            return Some(rhs);
                        }
                        if int_val(u, rhs) == Some(0) || int_val(u, lhs) == Some(0) {
                            let k = u.types.int_kind(ty)?;
                            return Some(Value::Const(u.consts.int(k, 0)));
                        }
                    }
                    BinOp::Div if int_val(u, rhs) == Some(1) => {
                        return Some(lhs);
                    }
                    BinOp::And => {
                        if lhs == rhs {
                            return Some(lhs);
                        }
                        if int_val(u, rhs) == Some(0) {
                            return Some(rhs);
                        }
                    }
                    _ => {}
                }
                if op == BinOp::Or && lhs == rhs {
                    return Some(lhs);
                }
                if op == BinOp::Xor && lhs == rhs {
                    let k = u.types.int_kind(ty)?;
                    return Some(Value::Const(u.consts.int(k, 0)));
                }
            }
            None
        }
        Inst::Cmp { pred, lhs, rhs } => {
            if let (Some(a), Some(b)) = (as_const(u, lhs), as_const(u, rhs)) {
                if let Some(r) = fold_cmp(pred, &a, &b) {
                    return Some(Value::Const(u.consts.bool_(r)));
                }
            }
            if lhs == rhs && u.types.is_int(vty(u, lhs)) {
                use lpat_core::CmpPred::*;
                let r = matches!(pred, Eq | Le | Ge);
                return Some(Value::Const(u.consts.bool_(r)));
            }
            None
        }
        Inst::Cast { val, to } => {
            // Identity cast.
            if vty(u, val) == to {
                return Some(val);
            }
            if let Some(c) = as_const(u, val) {
                if let Some(folded) = fold_cast(u.types, &c, to) {
                    let id = u.consts.intern(folded);
                    return Some(Value::Const(id));
                }
            }
            // cast (cast x to A) to B where both casts are pointer casts:
            // collapse to a single cast.
            if let Value::Inst(src) = val {
                if let Inst::Cast { val: inner, .. } = u.func.inst(src).clone() {
                    let it = vty(u, inner);
                    if u.types.is_ptr(it) && u.types.is_ptr(to) && it == to {
                        return Some(inner);
                    }
                }
            }
            None
        }
        Inst::Phi { incoming } => {
            // φ with all-equal incoming values (ignoring self-references).
            let me = Value::Inst(iid);
            let mut uniq: Option<Value> = None;
            for (v, _) in &incoming {
                if *v == me {
                    continue;
                }
                match uniq {
                    None => uniq = Some(*v),
                    Some(u) if u == *v => {}
                    Some(_) => return None,
                }
            }
            uniq
        }
        Inst::Gep { ptr, indices } => {
            // gep p, 0 (and any all-zero constant index list) = p.
            let all_zero = indices.iter().all(|&i| int_val(u, i) == Some(0));
            if all_zero && vty(u, Value::Inst(iid)) == vty(u, ptr) {
                return Some(ptr);
            }
            None
        }
        _ => None,
    }
}

/// Dead-code elimination: unlink side-effect-free instructions whose
/// results are unused, iterating to a fixpoint.
#[derive(Default)]
pub struct Dce {
    removed: AtomicUsize,
}

impl FunctionPass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
        let n = dce_unit(u);
        self.removed.fetch_add(n, Ordering::Relaxed);
        // Removed instructions have no side effects, so no calls are lost.
        PassEffect::from_change(n > 0, PreservedAnalyses::all())
    }
    fn stats(&self) -> String {
        format!(
            "removed {} dead instructions",
            self.removed.load(Ordering::Relaxed)
        )
    }
}

/// Remove dead instructions from one function; returns how many.
pub fn dce_function(m: &mut Module, fid: FuncId) -> usize {
    crate::fpm::with_unit(m, fid, dce_unit)
}

/// Dead-code elimination against a [`FuncUnit`]; returns removed count.
pub fn dce_unit(u: &mut FuncUnit<'_>) -> usize {
    if u.func.is_declaration() {
        return 0;
    }
    let mut removed = 0;
    loop {
        let f = &*u.func;
        let uses = f.use_counts();
        let mut dead = Vec::new();
        for b in f.block_ids() {
            for &iid in f.block_insts(b) {
                if uses[iid.index()] == 0 && !f.inst(iid).has_side_effects() {
                    dead.push((b, iid));
                }
            }
        }
        if dead.is_empty() {
            break;
        }
        removed += dead.len();
        let fm = &mut *u.func;
        for (b, iid) in dead {
            fm.remove_inst(b, iid);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn opt(src: &str) -> Module {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        while simplify_function(&mut m, fid) {}
        dce_function(&mut m, fid);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        m
    }

    #[test]
    fn folds_constant_chain() {
        let m = opt("
define int @f() {
e:
  %a = add int 2, 3
  %b = mul int %a, 4
  %c = sub int %b, 20
  ret int %c
}");
        assert!(m.display().contains("ret int 0"), "{}", m.display());
        assert_eq!(m.func(m.func_by_name("f").unwrap()).num_insts(), 1);
    }

    #[test]
    fn applies_identities() {
        let m = opt("
define int @f(int %x) {
e:
  %a = add int %x, 0
  %b = mul int %a, 1
  %c = xor int %b, %b
  %d = or int %b, %c
  ret int %d
}");
        assert!(m.display().contains("ret int %a0"), "{}", m.display());
    }

    #[test]
    fn folds_comparisons_and_casts() {
        let m = opt("
define bool @f(int %x) {
e:
  %c = setlt int 3, 5
  %i = cast bool %c to int
  %d = seteq int %i, 1
  ret bool %d
}");
        assert!(m.display().contains("ret bool true"), "{}", m.display());
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let m = opt("
define int @f() {
e:
  %a = div int 1, 0
  ret int %a
}");
        assert!(m.display().contains("div int 1, 0"), "{}", m.display());
    }

    #[test]
    fn phi_with_single_value_simplifies() {
        let m = opt("
define int @f(bool %c, int %x) {
e:
  br bool %c, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %p = phi int [ %x, %l ], [ %x, %r ]
  ret int %p
}");
        assert!(m.display().contains("ret int %a1"), "{}", m.display());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let m = opt("
declare int @ext()
define void @f() {
e:
  %unused = call int @ext()
  %dead = add int 1, 2
  ret void
}");
        let text = m.display();
        assert!(text.contains("call int @ext()"), "{text}");
        assert!(!text.contains("add"), "{text}");
    }

    #[test]
    fn float_identities_not_applied() {
        // x + 0.0 is not x for -0.0; the pass must leave it.
        let m = opt("
define double @f(double %x) {
e:
  %a = add double %x, 0x0000000000000000
  ret double %a
}");
        assert!(m.display().contains("add double"), "{}", m.display());
    }
}
