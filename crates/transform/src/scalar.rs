//! Scalar simplifications: constant folding, algebraic identities, and
//! dead-instruction elimination.
//!
//! `InstSimplify` is the workhorse run repeatedly between the structural
//! passes; `Dce` removes unused side-effect-free instructions.

use std::collections::HashMap;

use lpat_core::fold::{fold_bin, fold_cast, fold_cmp};
use lpat_core::{BinOp, Const, FuncId, Inst, InstId, Module, Value};

use crate::pm::Pass;

/// Constant folding plus algebraic identity simplification.
#[derive(Default)]
pub struct InstSimplify {
    simplified: usize,
}

impl Pass for InstSimplify {
    fn name(&self) -> &'static str {
        "instsimplify"
    }
    fn run(&mut self, m: &mut Module) -> bool {
        let mut changed = false;
        for fid in m.func_ids().collect::<Vec<_>>() {
            while simplify_function(m, fid) {
                self.simplified += 1;
                changed = true;
            }
        }
        changed
    }
    fn stats(&self) -> String {
        format!("{} simplification rounds", self.simplified)
    }
}

/// One simplification sweep over a function; returns whether anything
/// changed (callers iterate to a fixpoint).
pub fn simplify_function(m: &mut Module, fid: FuncId) -> bool {
    if m.func(fid).is_declaration() {
        return false;
    }
    let mut repl: HashMap<InstId, Value> = HashMap::new();
    let f = m.func(fid).clone();
    for iid in f.inst_ids_in_order() {
        if let Some(v) = simplify_inst(m, fid, iid) {
            repl.insert(iid, v);
        }
    }
    if repl.is_empty() {
        return false;
    }
    let fm = m.func_mut(fid);
    let n = fm.num_inst_slots();
    for i in 0..n {
        let iid = InstId::from_index(i);
        fm.inst_mut(iid).map_operands(|mut v| {
            while let Value::Inst(d) = v {
                match repl.get(&d) {
                    Some(&x) => v = x,
                    None => break,
                }
            }
            v
        });
    }
    // The replaced instructions are now dead; drop them.
    let inst_blocks = fm.inst_blocks();
    for (&iid, _) in &repl {
        if let Some(b) = inst_blocks[iid.index()] {
            fm.remove_inst(b, iid);
        }
    }
    true
}

/// Try to simplify one instruction to an existing value.
fn simplify_inst(m: &mut Module, fid: FuncId, iid: InstId) -> Option<Value> {
    let inst = m.func(fid).inst(iid).clone();
    fn as_const(m: &Module, v: Value) -> Option<Const> {
        match v {
            Value::Const(c) => Some(m.consts.get(c).clone()),
            _ => None,
        }
    }
    fn int_val(m: &Module, v: Value) -> Option<i64> {
        match as_const(m, v)? {
            Const::Int { value, .. } => Some(value),
            _ => None,
        }
    }
    fn vty(m: &Module, fid: FuncId, v: Value) -> lpat_core::TypeId {
        m.value_type(m.func(fid), v)
    }
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            // Constant folding.
            if let (Some(a), Some(b)) = (as_const(m, lhs), as_const(m, rhs)) {
                if let Some(c) = fold_bin(&mut m.consts, op, &a, &b) {
                    let id = m.consts.intern(c);
                    return Some(Value::Const(id));
                }
            }
            let ty = vty(m, fid, lhs);
            let is_int = m.types.is_int(ty);
            // Identities (integer only: float identities are unsound under
            // NaN/-0.0).
            if is_int {
                match op {
                    BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                        if int_val(m, rhs) == Some(0) {
                            return Some(lhs);
                        }
                        if matches!(op, BinOp::Add | BinOp::Or | BinOp::Xor)
                            && int_val(m, lhs) == Some(0)
                        {
                            return Some(rhs);
                        }
                    }
                    BinOp::Sub => {
                        if int_val(m, rhs) == Some(0) {
                            return Some(lhs);
                        }
                        if lhs == rhs {
                            let k = m.types.int_kind(ty)?;
                            return Some(Value::Const(m.consts.int(k, 0)));
                        }
                    }
                    BinOp::Mul => {
                        if int_val(m, rhs) == Some(1) {
                            return Some(lhs);
                        }
                        if int_val(m, lhs) == Some(1) {
                            return Some(rhs);
                        }
                        if int_val(m, rhs) == Some(0) || int_val(m, lhs) == Some(0) {
                            let k = m.types.int_kind(ty)?;
                            return Some(Value::Const(m.consts.int(k, 0)));
                        }
                    }
                    BinOp::Div => {
                        if int_val(m, rhs) == Some(1) {
                            return Some(lhs);
                        }
                    }
                    BinOp::And => {
                        if lhs == rhs {
                            return Some(lhs);
                        }
                        if int_val(m, rhs) == Some(0) {
                            return Some(rhs);
                        }
                    }
                    _ => {}
                }
                if op == BinOp::Or && lhs == rhs {
                    return Some(lhs);
                }
                if op == BinOp::Xor && lhs == rhs {
                    let k = m.types.int_kind(ty)?;
                    return Some(Value::Const(m.consts.int(k, 0)));
                }
            }
            None
        }
        Inst::Cmp { pred, lhs, rhs } => {
            if let (Some(a), Some(b)) = (as_const(m, lhs), as_const(m, rhs)) {
                if let Some(r) = fold_cmp(pred, &a, &b) {
                    return Some(Value::Const(m.consts.bool_(r)));
                }
            }
            if lhs == rhs && m.types.is_int(vty(m, fid, lhs)) {
                use lpat_core::CmpPred::*;
                let r = matches!(pred, Eq | Le | Ge);
                return Some(Value::Const(m.consts.bool_(r)));
            }
            None
        }
        Inst::Cast { val, to } => {
            // Identity cast.
            if vty(m, fid, val) == to {
                return Some(val);
            }
            if let Some(c) = as_const(m, val) {
                if let Some(folded) = fold_cast(&m.types, &c, to) {
                    let id = m.consts.intern(folded);
                    return Some(Value::Const(id));
                }
            }
            // cast (cast x to A) to B where both casts are pointer casts:
            // collapse to a single cast.
            if let Value::Inst(src) = val {
                if let Inst::Cast { val: inner, .. } = m.func(fid).inst(src).clone() {
                    let it = vty(m, fid, inner);
                    if m.types.is_ptr(it) && m.types.is_ptr(to) && it == to {
                        return Some(inner);
                    }
                }
            }
            None
        }
        Inst::Phi { incoming } => {
            // φ with all-equal incoming values (ignoring self-references).
            let me = Value::Inst(iid);
            let mut uniq: Option<Value> = None;
            for (v, _) in &incoming {
                if *v == me {
                    continue;
                }
                match uniq {
                    None => uniq = Some(*v),
                    Some(u) if u == *v => {}
                    Some(_) => return None,
                }
            }
            uniq
        }
        Inst::Gep { ptr, indices } => {
            // gep p, 0 (and any all-zero constant index list) = p.
            let all_zero = indices.iter().all(|&i| int_val(m, i) == Some(0));
            if all_zero && vty(m, fid, Value::Inst(iid)) == vty(m, fid, ptr) {
                return Some(ptr);
            }
            None
        }
        _ => None,
    }
}

/// Dead-code elimination: unlink side-effect-free instructions whose
/// results are unused, iterating to a fixpoint.
#[derive(Default)]
pub struct Dce {
    removed: usize,
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&mut self, m: &mut Module) -> bool {
        let mut changed = false;
        for fid in m.func_ids().collect::<Vec<_>>() {
            let n = dce_function(m, fid);
            self.removed += n;
            changed |= n > 0;
        }
        changed
    }
    fn stats(&self) -> String {
        format!("removed {} dead instructions", self.removed)
    }
}

/// Remove dead instructions from one function; returns how many.
pub fn dce_function(m: &mut Module, fid: FuncId) -> usize {
    if m.func(fid).is_declaration() {
        return 0;
    }
    let mut removed = 0;
    loop {
        let f = m.func(fid);
        let uses = f.use_counts();
        let mut dead = Vec::new();
        for b in f.block_ids() {
            for &iid in f.block_insts(b) {
                if uses[iid.index()] == 0 && !f.inst(iid).has_side_effects() {
                    dead.push((b, iid));
                }
            }
        }
        if dead.is_empty() {
            break;
        }
        removed += dead.len();
        let fm = m.func_mut(fid);
        for (b, iid) in dead {
            fm.remove_inst(b, iid);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn opt(src: &str) -> Module {
        let mut m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let fid = m.func_by_name("f").unwrap();
        while simplify_function(&mut m, fid) {}
        dce_function(&mut m, fid);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        m
    }

    #[test]
    fn folds_constant_chain() {
        let m = opt(
            "
define int @f() {
e:
  %a = add int 2, 3
  %b = mul int %a, 4
  %c = sub int %b, 20
  ret int %c
}",
        );
        assert!(m.display().contains("ret int 0"), "{}", m.display());
        assert_eq!(m.func(m.func_by_name("f").unwrap()).num_insts(), 1);
    }

    #[test]
    fn applies_identities() {
        let m = opt(
            "
define int @f(int %x) {
e:
  %a = add int %x, 0
  %b = mul int %a, 1
  %c = xor int %b, %b
  %d = or int %b, %c
  ret int %d
}",
        );
        assert!(m.display().contains("ret int %a0"), "{}", m.display());
    }

    #[test]
    fn folds_comparisons_and_casts() {
        let m = opt(
            "
define bool @f(int %x) {
e:
  %c = setlt int 3, 5
  %i = cast bool %c to int
  %d = seteq int %i, 1
  ret bool %d
}",
        );
        assert!(m.display().contains("ret bool true"), "{}", m.display());
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let m = opt(
            "
define int @f() {
e:
  %a = div int 1, 0
  ret int %a
}",
        );
        assert!(m.display().contains("div int 1, 0"), "{}", m.display());
    }

    #[test]
    fn phi_with_single_value_simplifies() {
        let m = opt(
            "
define int @f(bool %c, int %x) {
e:
  br bool %c, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %p = phi int [ %x, %l ], [ %x, %r ]
  ret int %p
}",
        );
        assert!(m.display().contains("ret int %a1"), "{}", m.display());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let m = opt(
            "
declare int @ext()
define void @f() {
e:
  %unused = call int @ext()
  %dead = add int 1, 2
  ret void
}",
        );
        let text = m.display();
        assert!(text.contains("call int @ext()"), "{text}");
        assert!(!text.contains("add"), "{text}");
    }

    #[test]
    fn float_identities_not_applied() {
        // x + 0.0 is not x for -0.0; the pass must leave it.
        let m = opt(
            "
define double @f(double %x) {
e:
  %a = add double %x, 0x0000000000000000
  ret double %a
}",
        );
        assert!(m.display().contains("add double"), "{}", m.display());
    }
}
