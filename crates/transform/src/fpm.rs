//! The function-pass layer: per-function transformations and the
//! (optionally parallel) executor that runs them over a whole module.
//!
//! A [`FunctionPass`] sees one function at a time through a [`FuncUnit`] —
//! the function body plus the module's type/constant pools and the cached
//! analyses of that function. Because the unit holds everything a
//! function-local transformation may touch, a [`FunctionPassAdapter`] can
//! run the same pipeline over different functions on different threads.
//!
//! # Determinism: the snapshot / truncate / merge protocol
//!
//! Pools are interning tables: the *id* a value receives depends on
//! insertion order, and passes (e.g. GVN's commutative canonicalization)
//! order values by id. Naively sharing pools across threads would make
//! output depend on scheduling. Instead, every worker clones the pools at
//! stage start, and for **each** function: runs the pipeline against the
//! snapshot, captures the entries the function added (index `>= base`),
//! and truncates back to the snapshot. Afterwards the adapter merges each
//! function's captured overlay into the master pools **in function-index
//! order**, structurally re-interning and rewriting overlay ids in the
//! function body via [`Function::remap_pool_ids`].
//!
//! Every function therefore observes exactly the stage-start pool state,
//! and the master pools grow in function order — so the result is
//! byte-identical for any `--jobs` value (`jobs = 1` uses the same
//! protocol, not a separate code path).
//!
//! # Fault isolation
//!
//! Each per-function unit is its own isolation domain: the worker
//! snapshots the function (and the pool lengths) before every sub-pass
//! and runs it under `catch_unwind`; a panic or blown budget restores the
//! snapshot, truncates the pools, invalidates the function's analysis
//! slot, and records a [`PassFault`] — the other functions and the rest
//! of the pipeline are unaffected. Injected faults stay deterministic
//! under parallelism because the adapter *reserves* hit ordinals per
//! sub-pass up front ([`lpat_core::fault::FaultPlan::reserve`]) and each
//! unit evaluates `base + function_index`, so fault placement depends
//! only on function order, never on thread scheduling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use lpat_analysis::{CacheStats, FuncAnalyses, PreservedAnalyses};
use lpat_core::fault::{FaultAction, FaultPlan};
use lpat_core::trace;
use lpat_core::{
    AddrTypeTable, Const, ConstId, ConstPool, Function, Module, Type, TypeCtx, TypeId, Value,
};

use crate::pm::{
    panic_message, FaultCause, FuncTiming, ModulePass, PassContext, PassDetails, PassEffect,
    PassExecution, PassFault,
};

/// Everything a function-local transformation may read or write: the
/// function body, the module's interning pools, the address-type side
/// table, and the function's cached analyses.
pub struct FuncUnit<'a> {
    /// The module's type context (shared interner; a worker snapshot when
    /// running under the parallel executor).
    pub types: &'a mut TypeCtx,
    /// The module's constant pool (ditto).
    pub consts: &'a mut ConstPool,
    /// The function being transformed.
    pub func: &'a mut Function,
    /// Types of global/function addresses (immutable during a stage).
    pub info: &'a AddrTypeTable,
    /// This function's analysis cache slot.
    pub analyses: &'a mut FuncAnalyses,
}

impl FuncUnit<'_> {
    /// The type of `v` in this function (the unit-level counterpart of
    /// `Module::value_type`).
    pub fn value_type(&self, v: Value) -> TypeId {
        self.info.value_type(self.types, self.consts, self.func, v)
    }

    /// The type of constant `c` (resolving global/function addresses).
    pub fn const_type(&self, c: ConstId) -> TypeId {
        self.info.const_type(self.types, self.consts, c)
    }
}

/// Build a one-off [`FuncUnit`] for `fid` — master pools, a fresh analysis
/// slot — and run `body` against it. This is the module-level
/// compatibility entry the `*_function(m, fid)` helpers use; unlike the
/// adapter it interns directly into the master pools.
pub fn with_unit<R>(
    m: &mut Module,
    fid: lpat_core::FuncId,
    body: impl FnOnce(&mut FuncUnit<'_>) -> R,
) -> R {
    let info = m.addr_type_table();
    let idx = fid.index();
    let (types, consts, funcs) = m.split_mut();
    let mut fa = FuncAnalyses::default();
    let mut u = FuncUnit {
        types,
        consts,
        func: &mut funcs[idx],
        info: &info,
        analyses: &mut fa,
    };
    body(&mut u)
}

/// An intra-procedural transformation.
///
/// `run_on` takes `&self` (not `&mut`) because one pass instance runs over
/// many functions concurrently; accumulate statistics in atomics.
pub trait FunctionPass: Sync {
    /// Short, stable pass name (`gvn`, `mem2reg`, ...).
    fn name(&self) -> &'static str;
    /// Transform one function.
    fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect;
    /// A human-readable statistics line aggregated over all functions.
    fn stats(&self) -> String {
        String::new()
    }
}

/// What one function produced under a worker: its pool overlay and the
/// per-pass measurements.
struct FuncResult {
    idx: usize,
    new_types: Vec<Type>,
    new_consts: Vec<Const>,
    /// Per pass: `(duration, changed, cache delta, call graph preserved)`.
    rows: Vec<(Duration, bool, CacheStats, bool)>,
    /// Isolated faults: `(sub-pass index, cause, elapsed)`.
    faults: Vec<(usize, FaultCause, Duration)>,
}

/// Fault-isolation inputs each per-function unit runs under.
#[derive(Clone, Copy)]
struct UnitExec<'a> {
    plan: Option<&'a FaultPlan>,
    /// Reserved 1-based hit-ordinal base per sub-pass (aligned with the
    /// pass list; empty when no plan is active).
    bases: &'a [u64],
    /// Reserved trace-span ordinal base per sub-pass (aligned with the
    /// pass list; empty when tracing is off). Unit `idx` of pass `pi`
    /// records with ordinal `tr[pi] + idx` — the same serial-reservation
    /// protocol as fault sites, so the trace is `--jobs`-independent.
    tr: &'a [u64],
    budget: Option<Duration>,
    degrade: bool,
}

/// Runs a pipeline of [`FunctionPass`]es over every function of a module,
/// in parallel across functions when the [`PassContext`] allows more than
/// one job. Implements [`ModulePass`], so it slots into a
/// [`crate::pm::PassManager`] between interprocedural passes.
pub struct FunctionPassAdapter {
    name: &'static str,
    passes: Vec<Box<dyn FunctionPass>>,
    details: PassDetails,
}

impl FunctionPassAdapter {
    /// An empty adapter with a display name for reports.
    pub fn new(name: &'static str) -> FunctionPassAdapter {
        FunctionPassAdapter {
            name,
            passes: Vec::new(),
            details: PassDetails::default(),
        }
    }

    /// Append a function pass (builder style; named after LLVM's
    /// `PassManager::add`, not `std::ops::Add`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, p: impl FunctionPass + 'static) -> FunctionPassAdapter {
        self.passes.push(Box::new(p));
        self
    }

    /// Number of function passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }
}

impl ModulePass for FunctionPassAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let jobs = cx.jobs.max(1);
        let info = m.addr_type_table();
        let num = m.num_funcs();
        let names: Vec<String> = m.func_ids().map(|f| m.func(f).name.clone()).collect();
        let slots = cx.am.func_slots(num);
        let (types, consts, funcs) = m.split_mut();
        let ty_base = types.len();
        let c_base = consts.len();

        // Round-robin distribution keeps the load roughly even without
        // affecting the output (the merge below is ordered by index).
        let mut work: Vec<Vec<(usize, &mut Function, &mut FuncAnalyses)>> =
            (0..jobs).map(|_| Vec::new()).collect();
        for (i, (f, fa)) in funcs.iter_mut().zip(slots.iter_mut()).enumerate() {
            work[i % jobs].push((i, f, fa));
        }

        // Reserve a contiguous hit-ordinal block per sub-pass *before*
        // spawning workers: unit `idx` of pass `pi` always evaluates
        // ordinal `bases[pi] + idx`, so which unit a `@N` spec hits is a
        // pure function of function order — identical at any job count.
        let plan = cx.faults.clone();
        let bases: Vec<u64> = match plan.as_deref() {
            Some(pl) => self
                .passes
                .iter()
                .map(|p| pl.reserve(p.name(), num as u64))
                .collect(),
            None => Vec::new(),
        };
        // Same reservation trick for trace-span ordinals: one serial
        // block per sub-pass, indexed by function number.
        let tr: Vec<u64> = if trace::enabled() {
            let base = trace::reserve((self.passes.len() * num) as u64);
            (0..self.passes.len())
                .map(|pi| base + (pi * num) as u64)
                .collect()
        } else {
            Vec::new()
        };
        let exec = UnitExec {
            plan: plan.as_deref(),
            bases: &bases,
            tr: &tr,
            budget: cx.budget,
            degrade: cx.degrade,
        };

        let passes = &self.passes;
        let info_ref = &info;
        let types_snapshot: &TypeCtx = &*types;
        let consts_snapshot: &ConstPool = &*consts;
        let results: Vec<Vec<FuncResult>> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut my_types = types_snapshot.clone();
                        let mut my_consts = consts_snapshot.clone();
                        let mut out = Vec::with_capacity(chunk.len());
                        for (idx, f, fa) in chunk {
                            out.push(run_pipeline_on(
                                passes,
                                &mut my_types,
                                &mut my_consts,
                                f,
                                info_ref,
                                fa,
                                idx,
                                ty_base,
                                c_base,
                                exec,
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Only reachable in strict mode (degrade catches unit
                    // panics in the worker); re-raise the original payload.
                    Err(payload) => resume_unwind(payload),
                })
                .collect()
        });

        // Merge overlays into the master pools in function-index order.
        let mut per_func: Vec<Option<FuncResult>> = (0..num).map(|_| None).collect();
        for r in results.into_iter().flatten() {
            let i = r.idx;
            per_func[i] = Some(r);
        }
        for (idx, fr) in per_func.iter().enumerate() {
            let Some(fr) = fr else { continue };
            let ty_map = merge_types(types, &fr.new_types, ty_base);
            let c_map = merge_consts(consts, &fr.new_consts, ty_base, &ty_map, c_base);
            if !ty_map.is_empty() || !c_map.is_empty() {
                funcs[idx].remap_pool_ids(ty_base, &ty_map, c_base, &c_map);
            }
        }

        // Aggregate per-pass and per-function rows for the report.
        let mut sub: Vec<PassExecution> = passes
            .iter()
            .map(|p| PassExecution {
                name: p.name(),
                duration: Duration::ZERO,
                changed: false,
                stats: String::new(),
                cache: CacheStats::default(),
                sub: Vec::new(),
                functions: Vec::new(),
            })
            .collect();
        let mut functions = Vec::new();
        let mut faults = Vec::new();
        let mut any_changed = false;
        let mut cg_preserved = true;
        for (idx, fr) in per_func.iter().enumerate() {
            let Some(fr) = fr else { continue };
            let mut fdur = Duration::ZERO;
            let mut fchanged = false;
            for (pi, (d, ch, cs, cg)) in fr.rows.iter().enumerate() {
                sub[pi].duration += *d;
                sub[pi].changed |= *ch;
                sub[pi].cache.add(*cs);
                fdur += *d;
                fchanged |= *ch;
                cg_preserved &= *cg;
            }
            for (pi, cause, elapsed) in &fr.faults {
                faults.push(PassFault {
                    pass: passes[*pi].name().to_string(),
                    function: Some(names[idx].clone()),
                    cause: cause.clone(),
                    elapsed: *elapsed,
                });
            }
            any_changed |= fchanged;
            functions.push(FuncTiming {
                name: names[idx].clone(),
                duration: fdur,
                changed: fchanged,
            });
        }
        for (pi, p) in passes.iter().enumerate() {
            sub[pi].stats = p.stats();
        }
        self.details = PassDetails {
            sub,
            functions,
            faults,
        };

        // `cfg: true` here means "the manager's per-function slots are
        // already consistent": each slot was updated (re-stamped or
        // dropped) by the per-pass `FuncAnalyses::apply` inside the run.
        PassEffect::from_change(
            any_changed,
            PreservedAnalyses {
                cfg: true,
                call_graph: cg_preserved,
            },
        )
    }

    fn stats(&self) -> String {
        format!("{} function passes", self.passes.len())
    }

    fn take_details(&mut self) -> PassDetails {
        std::mem::take(&mut self.details)
    }
}

/// Run the whole pass pipeline over one function against a worker's pool
/// snapshot, capture the pool overlay it created, and reset the snapshot.
/// Each sub-pass is an isolation domain: in degrade mode a panic or blown
/// budget rolls the function (and the pool tail the pass added) back and
/// records a fault row instead of unwinding the worker.
#[allow(clippy::too_many_arguments)]
fn run_pipeline_on(
    passes: &[Box<dyn FunctionPass>],
    types: &mut TypeCtx,
    consts: &mut ConstPool,
    f: &mut Function,
    info: &AddrTypeTable,
    fa: &mut FuncAnalyses,
    idx: usize,
    ty_base: usize,
    c_base: usize,
    exec: UnitExec<'_>,
) -> FuncResult {
    let mut rows = Vec::with_capacity(passes.len());
    let mut faults = Vec::new();
    for (pi, p) in passes.iter().enumerate() {
        // `bases` is only indexed under an active plan, where it is
        // aligned with `passes`.
        let injected = exec
            .plan
            .and_then(|pl| pl.fires_at(p.name(), exec.bases[pi] + idx as u64));
        let s0 = fa.stats();
        let snapshot = exec.degrade.then(|| f.clone());
        let ty_len = types.len();
        let c_len = consts.len();
        let ts_us = if exec.tr.is_empty() {
            0
        } else {
            trace::now_us()
        };
        let t0 = Instant::now();
        let outcome = if exec.degrade {
            catch_unwind(AssertUnwindSafe(|| {
                run_unit(p.as_ref(), types, consts, f, info, fa, injected)
            }))
        } else {
            Ok(run_unit(p.as_ref(), types, consts, f, info, fa, injected))
        };
        let elapsed = t0.elapsed();
        let mut fault = None;
        let mut unit_changed = false;
        match outcome {
            Ok(eff) => {
                if let Some(budget) = exec.budget {
                    if elapsed > budget {
                        if exec.degrade {
                            fault = Some(FaultCause::Timeout { budget });
                        } else {
                            panic!(
                                "pass '{}' exceeded its {budget:.1?} budget on @{} \
                                 (ran {elapsed:.1?})",
                                p.name(),
                                f.name,
                            );
                        }
                    }
                }
                if fault.is_none() {
                    fa.apply(&eff.preserved, f.version());
                    unit_changed = eff.changed;
                    rows.push((
                        elapsed,
                        eff.changed,
                        fa.stats() - s0,
                        eff.preserved.call_graph || !eff.changed,
                    ));
                }
            }
            Err(payload) => fault = Some(FaultCause::Panic(panic_message(payload.as_ref()))),
        }
        if !exec.tr.is_empty() {
            let mut args = vec![(
                "changed",
                if unit_changed { "true" } else { "false" }.to_string(),
            )];
            if let Some(cause) = &fault {
                args.push(("fault", cause.to_string()));
            }
            trace::record_span_at(
                "fpass",
                format!("{} @{}", p.name(), f.name),
                exec.tr[pi] + idx as u64,
                ts_us,
                elapsed,
                args,
            );
        }
        if let Some(cause) = fault {
            *f = snapshot.expect("degrade mode always snapshots");
            types.truncate(ty_len);
            consts.truncate(c_len);
            // The restored function reuses version numbers the faulted
            // pass already bumped past; cached entries stamped during it
            // could ABA-collide with future versions. Drop the slot.
            fa.invalidate();
            rows.push((elapsed, false, fa.stats() - s0, true));
            faults.push((pi, cause, elapsed));
        }
    }
    let new_types: Vec<Type> = (ty_base..types.len())
        .map(|i| types.ty(TypeId::from_index(i)).clone())
        .collect();
    let new_consts: Vec<Const> = (c_base..consts.len())
        .map(|i| consts.get(ConstId::from_index(i)).clone())
        .collect();
    types.truncate(ty_base);
    consts.truncate(c_base);
    FuncResult {
        idx,
        new_types,
        new_consts,
        rows,
        faults,
    }
}

/// Execute one sub-pass on one function, manifesting any injected fault:
/// `panic` panics here (inside the unit's `catch_unwind`), `delay` sleeps
/// inside the timed region so budgets see it, and `corrupt` leaves a
/// terminator-less block behind *after* the pass — a simulated miscompile
/// for module-level `--verify-each` to catch.
fn run_unit(
    p: &dyn FunctionPass,
    types: &mut TypeCtx,
    consts: &mut ConstPool,
    f: &mut Function,
    info: &AddrTypeTable,
    fa: &mut FuncAnalyses,
    injected: Option<FaultAction>,
) -> PassEffect {
    match injected {
        // Abort can reach here only via the parallel fires_at path (the
        // serial path aborts inside FaultPlan::next); treat it as a panic
        // so the rollback machinery still gets exercised deterministically.
        Some(FaultAction::Panic) | Some(FaultAction::Abort) => {
            panic!("injected fault at pass '{}'", p.name())
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Corrupt) | Some(FaultAction::Io) | None => {}
    }
    let mut unit = FuncUnit {
        types,
        consts,
        func: f,
        info,
        analyses: fa,
    };
    let eff = p.run_on(&mut unit);
    if injected == Some(FaultAction::Corrupt) && !f.is_declaration() {
        f.add_block();
    }
    eff
}

#[inline]
fn mt(ty_map: &[TypeId], ty_base: usize, id: TypeId) -> TypeId {
    if id.index() >= ty_base {
        ty_map[id.index() - ty_base]
    } else {
        id
    }
}

/// Re-intern a function's type overlay into the master context. Overlay
/// entries only reference ids below them (interning is bottom-up), so a
/// single forward sweep suffices.
fn merge_types(types: &mut TypeCtx, overlay: &[Type], ty_base: usize) -> Vec<TypeId> {
    let mut ty_map: Vec<TypeId> = Vec::with_capacity(overlay.len());
    for t in overlay {
        let id = match t {
            Type::Ptr(p) => types.ptr(mt(&ty_map, ty_base, *p)),
            Type::Array { elem, len } => types.array(mt(&ty_map, ty_base, *elem), *len),
            Type::Struct { name: None, fields } => {
                let fs = fields.iter().map(|&f| mt(&ty_map, ty_base, f)).collect();
                types.struct_lit(fs)
            }
            Type::Func {
                ret,
                params,
                varargs,
            } => {
                let ps = params.iter().map(|&p| mt(&ty_map, ty_base, p)).collect();
                types.func(mt(&ty_map, ty_base, *ret), ps, *varargs)
            }
            // Nominal types: resolve by name (creating the declaration and
            // body if this run is the first to mention it).
            Type::Opaque(n) => types.named_struct(n),
            Type::Struct {
                name: Some(n),
                fields,
            } => match types.lookup_named(n) {
                Some(id) => id,
                None => {
                    let id = types.named_struct(n);
                    let fs = fields.iter().map(|&f| mt(&ty_map, ty_base, f)).collect();
                    types.set_struct_body(id, fs);
                    id
                }
            },
            prim => types.intern_type(prim.clone()),
        };
        ty_map.push(id);
    }
    ty_map
}

/// Re-intern a function's constant overlay into the master pool, remapping
/// the type and constant ids its entries embed.
fn merge_consts(
    consts: &mut ConstPool,
    overlay: &[Const],
    ty_base: usize,
    ty_map: &[TypeId],
    c_base: usize,
) -> Vec<ConstId> {
    let mut c_map: Vec<ConstId> = Vec::with_capacity(overlay.len());
    let mc = |c_map: &[ConstId], id: ConstId| -> ConstId {
        if id.index() >= c_base {
            c_map[id.index() - c_base]
        } else {
            id
        }
    };
    for c in overlay {
        let c2 = match c {
            Const::Null(t) => Const::Null(mt(ty_map, ty_base, *t)),
            Const::Undef(t) => Const::Undef(mt(ty_map, ty_base, *t)),
            Const::Zero(t) => Const::Zero(mt(ty_map, ty_base, *t)),
            Const::Array { ty, elems } => Const::Array {
                ty: mt(ty_map, ty_base, *ty),
                elems: elems.iter().map(|&e| mc(&c_map, e)).collect(),
            },
            Const::Struct { ty, fields } => Const::Struct {
                ty: mt(ty_map, ty_base, *ty),
                fields: fields.iter().map(|&f| mc(&c_map, f)).collect(),
            },
            other => other.clone(),
        };
        c_map.push(consts.intern(c2));
    }
    c_map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pm::PassManager;
    use lpat_asm::parse_module;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A pass that interns a fresh constant per function and uses it, to
    /// exercise the overlay merge.
    struct ConstAdder {
        ran: AtomicUsize,
    }

    impl FunctionPass for ConstAdder {
        fn name(&self) -> &'static str {
            "const-adder"
        }
        fn run_on(&self, u: &mut FuncUnit<'_>) -> PassEffect {
            if u.func.is_declaration() {
                return PassEffect::unchanged();
            }
            self.ran.fetch_add(1, Ordering::Relaxed);
            // Intern a constant derived from the body so different
            // functions create different overlay entries.
            let n = u.func.num_insts() as i64;
            let c = u.consts.i64(1_000_000 + n);
            let ty = u.types.i64();
            let pty = u.types.ptr(ty);
            let _ = (c, pty);
            PassEffect::unchanged()
        }
    }

    fn sample() -> Module {
        parse_module(
            "t",
            "
define int @a(int %x) {
e:
  %y = add int %x, 1
  ret int %y
}
define int @b(int %x) {
e:
  %y = mul int %x, 2
  %z = add int %y, 3
  ret int %z
}",
        )
        .unwrap()
    }

    #[test]
    fn adapter_runs_over_all_functions_and_merges_pools() {
        for jobs in [1, 4] {
            let mut m = sample();
            let mut pm = PassManager::new();
            pm.jobs = Some(jobs);
            pm.add(FunctionPassAdapter::new("fn-passes").add(ConstAdder {
                ran: AtomicUsize::new(0),
            }));
            let report = pm.run(&mut m);
            m.verify().unwrap();
            assert_eq!(report.passes.len(), 1);
            assert_eq!(report.passes[0].sub.len(), 1);
            assert_eq!(report.passes[0].functions.len(), 2);
        }
    }

    #[test]
    fn jobs_do_not_change_pool_contents() {
        let run = |jobs: usize| {
            let mut m = sample();
            let mut pm = PassManager::new();
            pm.jobs = Some(jobs);
            pm.add(FunctionPassAdapter::new("fn-passes").add(ConstAdder {
                ran: AtomicUsize::new(0),
            }));
            pm.run(&mut m);
            (m.consts.len(), m.types.len(), m.display())
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn domtree_cached_across_passes_and_recomputed_after_cfg_edit() {
        // mem2reg computes the dominator tree (miss), gvn reuses it (hit),
        // simplifycfg folds the constant branch (invalidation), and a
        // second gvn must recompute (miss again).
        let mut m = parse_module(
            "t",
            "
define int @f(int %x) {
e:
  %a = alloca int
  store int %x, int* %a
  br bool true, label %l, label %r
l:
  %v = load int* %a
  %y = add int %v, 1
  %y2 = add int %v, 1
  %z = add int %y, %y2
  ret int %z
r:
  ret int 0
}",
        )
        .unwrap();
        m.verify().unwrap();
        let mut pm = PassManager::new();
        pm.verify_each = true;
        pm.add(
            FunctionPassAdapter::new("fn-passes")
                .add(crate::mem2reg::Mem2Reg::default())
                .add(crate::gvn::Gvn::default())
                .add(crate::simplifycfg::SimplifyCfg::default())
                .add(crate::gvn::Gvn::default()),
        );
        let report = pm.run(&mut m);
        let sub = &report.passes[0].sub;
        assert_eq!(sub.len(), 4);
        // mem2reg's up-front dependency request is the one true miss; its
        // promotion step may re-request the warmed tree (an in-pass hit).
        assert_eq!(sub[0].cache.misses, 1, "mem2reg computes: {:?}", sub[0]);
        assert_eq!(sub[0].cache.invalidations, 0, "{:?}", sub[0]);
        assert!(sub[1].cache.hits >= 1, "first gvn reuses: {:?}", sub[1]);
        assert_eq!(sub[1].cache.misses, 0, "{:?}", sub[1]);
        assert!(
            sub[2].cache.invalidations >= 1,
            "simplifycfg rewrote the CFG: {:?}",
            sub[2]
        );
        assert!(
            sub[3].cache.misses >= 1,
            "second gvn recomputes: {:?}",
            sub[3]
        );
        assert_eq!(sub[3].cache.hits, 0, "{:?}", sub[3]);
        assert!(report.cache.hits >= 1 && report.cache.misses >= 2);
        // And the work itself happened: promoted, folded, CSE'd.
        let text = m.display();
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("br bool"), "{text}");
    }
}
