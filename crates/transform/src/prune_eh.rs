//! Exception-handling pruning (paper §2.4, §4.1.2).
//!
//! Having exceptional control flow explicit in the CFG lets the link-time
//! optimizer reason about it interprocedurally:
//!
//! * an `invoke` of a callee that provably cannot unwind becomes a plain
//!   `call` with an unconditional branch to the normal destination — the
//!   handler edge disappears;
//! * handler blocks that thereby lose all predecessors are deleted
//!   ("an interprocedural analysis to eliminate unused exception
//!   handlers").

use std::collections::HashSet;

use lpat_analysis::{CallGraph, PreservedAnalyses};
use lpat_core::{Const, FuncId, Inst, Module, Value};

use crate::pm::{ModulePass, PassContext, PassEffect};
use crate::util::remove_unreachable_blocks;

/// The EH pruning pass.
#[derive(Default)]
pub struct PruneEh {
    devirtualized: usize,
}

impl ModulePass for PruneEh {
    fn name(&self) -> &'static str {
        "prune-eh"
    }
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let cg = cx.am.call_graph(m).clone();
        let may = may_unwind_set(m, &cg);
        let n = prune_with_set(m, &may);
        self.devirtualized += n;
        // invoke -> call rewrites edges and deletes handler blocks.
        PassEffect::from_change(n > 0, PreservedAnalyses::none())
    }
    fn stats(&self) -> String {
        format!("converted {} invokes to calls", self.devirtualized)
    }
}

/// Compute the set of functions that may unwind (contain a reachable
/// `unwind`, call something that may, or are unanalyzable).
pub fn may_unwind_set(m: &Module, cg: &CallGraph) -> HashSet<FuncId> {
    let mut may: HashSet<FuncId> = HashSet::new();
    for (fid, f) in m.funcs() {
        if f.is_declaration() {
            // External code must be assumed to throw.
            may.insert(fid);
            continue;
        }
        let mut local = false;
        let mut indirect = false;
        for iid in f.inst_ids_in_order() {
            match f.inst(iid) {
                Inst::Unwind => local = true,
                Inst::Call { callee, .. }
                    // An *invoke* catches its callee's unwind; a plain call
                    // propagates it — only calls matter here, and only
                    // until the fixpoint below refines direct ones.
                    if direct_target(m, *callee).is_none() => {
                        indirect = true;
                    }
                _ => {}
            }
        }
        if local || indirect {
            may.insert(fid);
        }
    }
    // Propagate through plain-call edges to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for (fid, f) in m.funcs() {
            if may.contains(&fid) || f.is_declaration() {
                continue;
            }
            let mut throws = false;
            for iid in f.inst_ids_in_order() {
                if let Inst::Call { callee, .. } = f.inst(iid) {
                    match direct_target(m, *callee) {
                        Some(t) => {
                            if may.contains(&t) {
                                throws = true;
                                break;
                            }
                        }
                        None => {
                            throws = true;
                            break;
                        }
                    }
                }
            }
            if throws {
                may.insert(fid);
                changed = true;
            }
        }
    }
    let _ = cg;
    may
}

fn direct_target(m: &Module, v: Value) -> Option<FuncId> {
    match v {
        Value::Const(c) => match m.consts.get(c) {
            Const::FuncAddr(t) => Some(*t),
            _ => None,
        },
        _ => None,
    }
}

/// Convert non-throwing invokes to calls and delete dead handlers.
/// Returns the number of invokes converted.
pub fn run_prune_eh(m: &mut Module) -> usize {
    let cg = CallGraph::build(m);
    let may = may_unwind_set(m, &cg);
    prune_with_set(m, &may)
}

/// Like [`run_prune_eh`], but consuming precomputed compile-time
/// summaries (paper §3.3: the link-time optimizer "can process these
/// interprocedural summaries as input instead of having to compute
/// results from scratch").
pub fn run_prune_eh_with_summaries(m: &mut Module, sums: &lpat_analysis::ModuleSummaries) -> usize {
    let names = sums.may_unwind_closure();
    let summarized: std::collections::HashSet<&str> =
        sums.funcs.iter().map(|s| s.name.as_str()).collect();
    // A function the summaries do not cover (e.g. an internal symbol the
    // linker renamed, or a module compiled without summaries) must be
    // assumed to throw — stale summaries may only lose optimization,
    // never delete a live handler.
    let may: HashSet<FuncId> = m
        .funcs()
        .filter(|(_, f)| names.contains(&f.name) || !summarized.contains(f.name.as_str()))
        .map(|(id, _)| id)
        .collect();
    prune_with_set(m, &may)
}

fn prune_with_set(m: &mut Module, may: &HashSet<FuncId>) -> usize {
    let mut converted = 0;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        // Find invokes of non-throwing callees.
        let mut patches = Vec::new();
        for b in f.block_ids() {
            let Some(t) = f.terminator(b) else { continue };
            if let Inst::Invoke {
                callee,
                args,
                normal,
                unwind,
            } = f.inst(t)
            {
                let throwy = match direct_target(m, *callee) {
                    Some(target) => may.contains(&target),
                    None => true,
                };
                if !throwy {
                    patches.push((b, t, *callee, args.clone(), *normal, *unwind));
                }
            }
        }
        if patches.is_empty() {
            continue;
        }
        converted += patches.len();
        let void = m.types.void();
        for (b, t, callee, args, normal, unwind) in patches {
            let ty = m.func(fid).inst_ty(t);
            let fm = m.func_mut(fid);
            // invoke -> call + br normal.
            *fm.inst_mut(t) = Inst::Call { callee, args };
            fm.set_inst_ty(t, ty);
            let br = fm.new_inst(Inst::Br(normal), void);
            let mut insts = fm.block_insts(b).to_vec();
            insts.push(br);
            fm.set_block_insts(b, insts);
            // The unwind edge is gone: drop φ entries for it.
            for &pid in fm.block_insts(unwind).to_vec().iter() {
                if let Inst::Phi { incoming } = fm.inst_mut(pid) {
                    if let Some(pos) = incoming.iter().position(|(_, pb)| *pb == b) {
                        incoming.remove(pos);
                    }
                }
            }
        }
        // Handlers with no remaining predecessors disappear.
        remove_unreachable_blocks(m.func_mut(fid));
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn invoke_of_safe_callee_becomes_call() {
        let mut m = parse_module(
            "t",
            "
define internal int @safe(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define int @main() {
e:
  invoke void @wrapper() to label %ok unwind label %h
ok:
  ret int 0
h:
  ret int 1
}
define internal void @wrapper() {
e:
  %v = invoke int @safe(int 1) to label %done unwind label %bad
done:
  ret void
bad:
  ret void
}",
        )
        .unwrap();
        m.verify().unwrap();
        // Neither @safe nor @wrapper can unwind (an invoke catches its
        // callee's unwinds), so both invokes convert in one run.
        let n = run_prune_eh(&mut m);
        assert_eq!(n, 2);
        assert_eq!(run_prune_eh(&mut m), 0);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let text = m.display();
        assert!(!text.contains("invoke"), "{text}");
        assert!(!text.contains("ret int 1"), "dead handler deleted: {text}");
    }

    #[test]
    fn invoke_of_thrower_kept() {
        let mut m = parse_module(
            "t",
            "
define internal void @thrower() {
e:
  unwind
}
define int @main() {
e:
  invoke void @thrower() to label %ok unwind label %h
ok:
  ret int 0
h:
  ret int 1
}",
        )
        .unwrap();
        let n = run_prune_eh(&mut m);
        assert_eq!(n, 0);
        assert!(m.display().contains("invoke"));
    }

    #[test]
    fn external_callee_assumed_throwing() {
        let mut m = parse_module(
            "t",
            "
declare void @ext()
define int @main() {
e:
  invoke void @ext() to label %ok unwind label %h
ok:
  ret int 0
h:
  ret int 1
}",
        )
        .unwrap();
        assert_eq!(run_prune_eh(&mut m), 0);
    }

    #[test]
    fn transitive_caller_of_thrower_kept() {
        let mut m = parse_module(
            "t",
            "
define internal void @thrower() {
e:
  unwind
}
define internal void @indirect() {
e:
  call void @thrower()
  ret void
}
define int @main() {
e:
  invoke void @indirect() to label %ok unwind label %h
ok:
  ret int 0
h:
  ret int 1
}",
        )
        .unwrap();
        assert_eq!(run_prune_eh(&mut m), 0, "{}", m.display());
    }
}
