//! Criterion micro-benchmarks for the experiment-critical code paths:
//! the three Table 2 IPO passes, SSA construction, DSA, and the
//! bytecode/codegen size paths (Figure 5).

use criterion::{criterion_group, criterion_main, Criterion};

use lpat_analysis::{CallGraph, Dsa, DsaOptions};
use lpat_core::Module;
use lpat_transform::ipo::{run_dae, run_dge};
use lpat_transform::pm::Pass;

fn linked_module(scale: u32) -> Module {
    let w = &lpat_workloads::suite(scale)[2]; // 176.gcc-like
    let mut m = lpat_bench::prepare(w.name, &w.source);
    lpat_transform::ipo::Internalize::default().run(&mut m);
    m
}

fn bench_ipo(c: &mut Criterion) {
    let m = linked_module(40);
    let mut g = c.benchmark_group("table2-ipo");
    g.bench_function("dge", |b| {
        b.iter_with_setup(|| m.clone(), |mut m| run_dge(&mut m))
    });
    g.bench_function("dae", |b| {
        b.iter_with_setup(|| m.clone(), |mut m| run_dae(&mut m))
    });
    g.bench_function("inline", |b| {
        b.iter_with_setup(
            || m.clone(),
            |mut m| lpat_transform::inline::Inline::default().run(&mut m),
        )
    });
    g.finish();
}

fn bench_mem2reg(c: &mut Criterion) {
    let w = &lpat_workloads::suite(40)[0];
    let m = lpat_minic::compile(w.name, &w.source).unwrap();
    c.bench_function("mem2reg", |b| {
        b.iter_with_setup(
            || m.clone(),
            |mut m| lpat_transform::mem2reg::Mem2Reg::default().run(&mut m),
        )
    });
}

fn bench_dsa(c: &mut Criterion) {
    let m = linked_module(20);
    let cg = CallGraph::build(&m);
    c.bench_function("dsa", |b| {
        b.iter(|| Dsa::analyze(&m, &cg, &DsaOptions::default()).access_stats())
    });
}

fn bench_sizes(c: &mut Criterion) {
    let m = linked_module(20);
    let mut g = c.benchmark_group("fig5-sizes");
    g.bench_function("bytecode-write", |b| b.iter(|| lpat_bytecode::write_module(&m).len()));
    g.bench_function("cisc32", |b| {
        b.iter(|| lpat_codegen::compile_module(&m, &lpat_codegen::Cisc32).total)
    });
    g.bench_function("risc32", |b| {
        b.iter(|| lpat_codegen::compile_module(&m, &lpat_codegen::Risc32).total)
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let w = &lpat_workloads::suite(0)[0];
    let m = lpat_bench::prepare(w.name, &w.source);
    let mut g = c.benchmark_group("execution-engines");
    g.bench_function("interp-gzip", |b| {
        b.iter(|| {
            let mut vm = lpat_vm::Vm::new(&m, lpat_vm::VmOptions::default()).unwrap();
            vm.run_main().unwrap()
        })
    });
    g.bench_function("jit-gzip", |b| {
        b.iter(|| {
            let mut vm = lpat_vm::Vm::new(&m, lpat_vm::VmOptions::default()).unwrap();
            vm.run_main_jit().unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ipo, bench_mem2reg, bench_dsa, bench_sizes, bench_interp
}
criterion_main!(benches);
