//! # lpat-bench — the experiment harness
//!
//! Shared helpers for the binaries that regenerate the paper's evaluation
//! artifacts:
//!
//! * `table1` — typed load/store percentages per benchmark (Table 1);
//! * `table2` — link-time IPO timings vs. a full compile (Table 2);
//! * `fig5` — executable sizes: bytecode vs. cisc32 vs. risc32 (Figure 5).
//!
//! Run with `cargo run -p lpat-bench --release --bin <name>`.

#![warn(missing_docs)]

use lpat_core::Module;

/// Compile one workload and run the per-module (compile-time) pipeline,
/// producing the module as it would exist at link time.
pub fn prepare(name: &str, source: &str) -> Module {
    let mut m = lpat_minic::compile(name, source).unwrap_or_else(|e| panic!("{name}: {e}"));
    m.verify().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    lpat_transform::function_pipeline().run(&mut m);
    m.verify().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    m
}

/// A simple LZ77 compressor (4 KB window, greedy longest match, byte-wise
/// literals) used for the paper's §4.1.3 aside: general-purpose
/// compression roughly halves bytecode files. Format: a control byte
/// holding 8 flags (1 = match), then per item either a literal byte or a
/// 2-byte `(offset:12, len-3:4)` match reference.
pub fn lz_compress(data: &[u8]) -> Vec<u8> {
    const WINDOW: usize = 4095;
    const MIN: usize = 3;
    const MAX: usize = 18;
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    let mut flags_at = usize::MAX;
    let mut flag_bit = 8;
    while i < data.len() {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        // Greedy search for the longest match in the window.
        let start = i.saturating_sub(WINDOW);
        let mut best_len = 0;
        let mut best_off = 0;
        let limit = (data.len() - i).min(MAX);
        if limit >= MIN {
            let mut j = start;
            while j < i {
                let mut l = 0;
                while l < limit && data[j + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - j;
                    if l == limit {
                        break;
                    }
                }
                j += 1;
            }
        }
        if best_len >= MIN {
            out[flags_at] |= 1 << flag_bit;
            let token = ((best_off as u16) << 4) | ((best_len - MIN) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            i += best_len;
        } else {
            out.push(data[i]);
            i += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Decompress [`lz_compress`] output (used by tests to prove losslessness).
pub fn lz_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let off = (token >> 4) as usize;
                let len = (token & 0xF) as usize + 3;
                let from = out.len() - off;
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
            } else {
                out.push(data[i]);
                i += 1;
            }
        }
    }
    out
}

/// Format a byte count as fractional KB, Figure-5 style.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lz_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"hello".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            (0..255u8).cycle().take(5000).collect(),
            vec![7; 10_000],
        ];
        for c in cases {
            let z = lz_compress(&c);
            assert_eq!(lz_decompress(&z), c);
        }
    }

    #[test]
    fn lz_compresses_bytecode_substantially() {
        let (_, m) = &lpat_workloads::compile_suite(10)[0];
        let bytes = lpat_bytecode::write_module(m);
        let z = lz_compress(&bytes);
        let ratio = z.len() as f64 / bytes.len() as f64;
        assert!(ratio < 0.75, "compression ratio {ratio}");
        assert_eq!(lz_decompress(&z), bytes);
    }

    #[test]
    fn prepare_produces_ssa_modules() {
        let w = &lpat_workloads::suite(0)[0];
        let m = prepare(w.name, &w.source);
        assert!(!m.display().contains("alloca"));
    }
}
