//! # lpat-bench — the experiment harness
//!
//! Shared helpers for the binaries that regenerate the paper's evaluation
//! artifacts:
//!
//! * `table1` — typed load/store percentages per benchmark (Table 1);
//! * `table2` — link-time IPO timings vs. a full compile (Table 2);
//! * `fig5` — executable sizes: bytecode vs. cisc32 vs. risc32 (Figure 5).
//!
//! Run with `cargo run -p lpat-bench --release --bin <name>`.

#![warn(missing_docs)]

use lpat_core::Module;

/// Compile one workload and run the per-module (compile-time) pipeline,
/// producing the module as it would exist at link time.
pub fn prepare(name: &str, source: &str) -> Module {
    let mut m = lpat_minic::compile(name, source).unwrap_or_else(|e| panic!("{name}: {e}"));
    m.verify().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    lpat_transform::function_pipeline().run(&mut m);
    m.verify().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    m
}

/// A simple LZ77 compressor (4 KB window, greedy longest match, byte-wise
/// literals) used for the paper's §4.1.3 aside: general-purpose
/// compression roughly halves bytecode files. Format: a control byte
/// holding 8 flags (1 = match), then per item either a literal byte or a
/// 2-byte `(offset:12, len-3:4)` match reference.
pub fn lz_compress(data: &[u8]) -> Vec<u8> {
    const WINDOW: usize = 4095;
    const MIN: usize = 3;
    const MAX: usize = 18;
    const HASH_BITS: u32 = 13;
    const NIL: usize = usize::MAX;
    // Hash-chain match finder: every position is indexed by the hash of
    // its next 3 bytes; candidates come from walking the chain for the
    // current hash instead of scanning the whole window. Any match of
    // length >= MIN shares its first 3 bytes with the target, so the
    // chain sees every candidate the former O(n*window) greedy scan saw
    // and the chosen match length — hence the compressed size — is
    // identical.
    #[inline]
    fn hash3(data: &[u8], p: usize) -> usize {
        let v = u32::from(data[p]) | (u32::from(data[p + 1]) << 8) | (u32::from(data[p + 2]) << 16);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    }
    let mut head = vec![NIL; 1 << HASH_BITS];
    let mut prev = vec![NIL; data.len()];
    let insert = |head: &mut [usize], prev: &mut [usize], p: usize| {
        if p + MIN <= data.len() {
            let h = hash3(data, p);
            prev[p] = head[h];
            head[h] = p;
        }
    };
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    let mut flags_at = usize::MAX;
    let mut flag_bit = 8;
    while i < data.len() {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        let start = i.saturating_sub(WINDOW);
        let mut best_len = 0;
        let mut best_off = 0;
        let limit = (data.len() - i).min(MAX);
        if limit >= MIN {
            let mut j = head[hash3(data, i)];
            while j != NIL && j >= start {
                let mut l = 0;
                while l < limit && data[j + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - j;
                    if l == limit {
                        break;
                    }
                }
                j = prev[j];
            }
        }
        if best_len >= MIN {
            out[flags_at] |= 1 << flag_bit;
            let token = ((best_off as u16) << 4) | ((best_len - MIN) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            // Positions covered by the match still enter the index so
            // later targets can match into them.
            for p in i..i + best_len {
                insert(&mut head, &mut prev, p);
            }
            i += best_len;
        } else {
            insert(&mut head, &mut prev, i);
            out.push(data[i]);
            i += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Decompress [`lz_compress`] output (used by tests to prove losslessness).
pub fn lz_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let off = (token >> 4) as usize;
                let len = (token & 0xF) as usize + 3;
                let from = out.len() - off;
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
            } else {
                out.push(data[i]);
                i += 1;
            }
        }
    }
    out
}

/// Format a byte count as fractional KB, Figure-5 style.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// A minimal JSON value, produced by [`parse_json`]. Just enough to
/// validate the benchmark artifacts this crate emits (no external
/// dependencies allowed in this workspace).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for our own artifacts).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut i = 0;
    let v = json_value(b, &mut i)?;
    json_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn json_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    json_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            json_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                json_ws(b, i);
                let k = match json_value(b, i)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                json_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}", i = *i));
                }
                *i += 1;
                fields.push((k, json_value(b, i)?));
                json_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            json_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(json_value(b, i)?);
                json_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match b.get(*i) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'u') => {
                                let hex = b.get(*i + 1..*i + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *i += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *i += 1;
                    }
                    Some(_) => {
                        let start = *i;
                        while *i < b.len() && b[*i] != b'"' && b[*i] != b'\\' {
                            *i += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&b[start..*i]).map_err(|_| "invalid UTF-8")?,
                        );
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(_) => {
            for (lit, v) in [
                ("null", Json::Null),
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
            ] {
                if b[*i..].starts_with(lit.as_bytes()) {
                    *i += lit.len();
                    return Ok(v);
                }
            }
            Err(format!("unexpected byte at {i}", i = *i))
        }
    }
}

/// Validate a `BENCH_vm.json` document against the `lpat-bench-vm/v3`
/// schema (v2 plus the machine-code tier: the full-native `native` and
/// three-tier `tiered_native` engines with native translation/promotion/
/// OSR/instruction counters, and the native-vs-JIT and
/// three-tier-vs-two-tier geomeans). Earlier schema tags are rejected
/// outright — a v1/v2 file has no native rows and must be regenerated.
/// Used by `vmperf` to self-check its output and by the CI smoke job to
/// validate the committed artifact.
pub fn validate_vm_bench(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("schema").and_then(Json::str) != Some("lpat-bench-vm/v3") {
        return Err("schema must be \"lpat-bench-vm/v3\"".into());
    }
    for key in ["scale", "reps"] {
        doc.get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
    }
    let workloads = doc
        .get("workloads")
        .and_then(Json::arr)
        .ok_or("missing 'workloads' array")?;
    if workloads.is_empty() {
        return Err("'workloads' must be non-empty".into());
    }
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Json::str)
            .ok_or("workload missing 'name'")?;
        let engines = w
            .get("engines")
            .ok_or_else(|| format!("{name}: missing 'engines'"))?;
        for eng in [
            "interp",
            "jit",
            "native",
            "tiered",
            "tiered_warm",
            "tiered_native",
            "tiered_spec",
        ] {
            let e = engines
                .get(eng)
                .ok_or_else(|| format!("{name}: missing engine '{eng}'"))?;
            for field in ["wall_ms", "insts", "insts_per_sec"] {
                e.get(field)
                    .and_then(Json::num)
                    .ok_or_else(|| format!("{name}.{eng}: missing numeric '{field}'"))?;
            }
            if eng != "interp" {
                e.get("translate_ms")
                    .and_then(Json::num)
                    .ok_or_else(|| format!("{name}.{eng}: missing 'translate_ms'"))?;
            }
            if eng.starts_with("tiered") {
                for field in ["promoted", "osr", "warmed"] {
                    e.get(field)
                        .and_then(Json::num)
                        .ok_or_else(|| format!("{name}.{eng}: missing '{field}'"))?;
                }
            }
            if eng == "native" || eng == "tiered_native" {
                for field in [
                    "native_translate_ms",
                    "native_promoted",
                    "native_osr",
                    "native_insts",
                ] {
                    e.get(field)
                        .and_then(Json::num)
                        .ok_or_else(|| format!("{name}.{eng}: missing '{field}'"))?;
                }
            }
            if eng == "tiered_spec" {
                for field in ["guards", "guard_passed", "guard_failed", "deopts"] {
                    e.get(field)
                        .and_then(Json::num)
                        .ok_or_else(|| format!("{name}.{eng}: missing '{field}'"))?;
                }
            }
        }
    }
    for key in [
        "geomean_speedup_tiered_vs_interp",
        "geomean_speedup_warm_vs_cold",
        "geomean_speedup_spec_warm_vs_cold",
        "geomean_speedup_native_vs_jit",
        "geomean_speedup_tiered_native_vs_tiered",
    ] {
        doc.get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
    }
    Ok(())
}

/// Validate a `BENCH_serve.json` document against the
/// `lpat-bench-serve/v2` schema: a `servebench` load-generation run
/// against `lpatd` with at least 8 concurrent clients, client-side
/// latency percentiles, the server-side log-linear quantiles lifted
/// from the scraped stats (`server_quantiles`), and the server's own
/// `serve.*` counters plus quantile telemetry (the shed/error
/// evidence). Used by `servebench` to self-check its output and by the
/// CI smoke job to validate the committed artifact.
pub fn validate_serve_bench(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("schema").and_then(Json::str) != Some("lpat-bench-serve/v2") {
        return Err("schema must be \"lpat-bench-serve/v2\"".into());
    }
    for key in [
        "clients",
        "requests_per_client",
        "workers",
        "queue_depth",
        "duration_ms",
        "requests",
        "ok",
        "errors",
        "busy",
        "requests_per_sec",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
    ] {
        doc.get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("missing numeric field '{key}'"))?;
    }
    let clients = doc.get("clients").and_then(Json::num).unwrap_or(0.0);
    if clients < 8.0 {
        return Err(format!(
            "'clients' must be >= 8 (concurrency is the point), got {clients}"
        ));
    }
    if doc.get("errors").and_then(Json::num).unwrap_or(0.0) < 1.0 {
        return Err("'errors' must be >= 1 (the hostile-request mix must register)".into());
    }
    let lat = doc.get("latency_ms").ok_or("missing 'latency_ms' object")?;
    for key in ["p50", "p90", "p99", "max"] {
        lat.get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("latency_ms: missing numeric '{key}'"))?;
    }
    // Server-side quantiles lifted out of the scraped stats: pure service
    // time next to the client's wall-clock view; the gap is the queue.
    let sq = doc
        .get("server_quantiles")
        .ok_or("missing 'server_quantiles' object")?;
    for hist in ["latency_us", "queue_wait_us"] {
        let h = sq
            .get(hist)
            .ok_or_else(|| format!("server_quantiles: missing '{hist}' object"))?;
        for key in ["count", "p50", "p90", "p99", "max"] {
            h.get(key)
                .and_then(Json::num)
                .ok_or_else(|| format!("server_quantiles.{hist}: missing numeric '{key}'"))?;
        }
    }
    // The server's own counters, scraped over the wire via the Stats op:
    // this is where the shed evidence lives even when every client-side
    // Busy was retried away.
    let server = doc.get("server").ok_or("missing 'server' object")?;
    if server.get("schema").and_then(Json::str) != Some("lpat-serve-stats/v2") {
        return Err("server.schema must be \"lpat-serve-stats/v2\"".into());
    }
    for key in [
        "requests",
        "ok",
        "errors",
        "busy",
        "shed_queue",
        "busy_tenant",
    ] {
        server
            .get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("server: missing numeric '{key}'"))?;
    }
    server
        .get("quantiles")
        .ok_or("server: missing 'quantiles' object")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lz_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"hello".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            (0..255u8).cycle().take(5000).collect(),
            vec![7; 10_000],
        ];
        for c in cases {
            let z = lz_compress(&c);
            assert_eq!(lz_decompress(&z), c);
        }
    }

    #[test]
    fn lz_compresses_bytecode_substantially() {
        let (_, m) = &lpat_workloads::compile_suite(10)[0];
        let bytes = lpat_bytecode::write_module(m);
        let z = lz_compress(&bytes);
        let ratio = z.len() as f64 / bytes.len() as f64;
        assert!(ratio < 0.75, "compression ratio {ratio}");
        assert_eq!(lz_decompress(&z), bytes);
    }

    /// The original O(n*window) greedy scan, kept as the size oracle:
    /// the hash-chain finder must never compress worse than this.
    fn greedy_reference(data: &[u8]) -> Vec<u8> {
        const WINDOW: usize = 4095;
        const MIN: usize = 3;
        const MAX: usize = 18;
        let mut out = Vec::new();
        let mut i = 0;
        let mut flags_at = usize::MAX;
        let mut flag_bit = 8;
        while i < data.len() {
            if flag_bit == 8 {
                flags_at = out.len();
                out.push(0);
                flag_bit = 0;
            }
            let start = i.saturating_sub(WINDOW);
            let mut best_len = 0;
            let mut best_off = 0;
            let limit = (data.len() - i).min(MAX);
            if limit >= MIN {
                let mut j = start;
                while j < i {
                    let mut l = 0;
                    while l < limit && data[j + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - j;
                        if l == limit {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if best_len >= MIN {
                out[flags_at] |= 1 << flag_bit;
                let token = ((best_off as u16) << 4) | ((best_len - MIN) as u16);
                out.extend_from_slice(&token.to_le_bytes());
                i += best_len;
            } else {
                out.push(data[i]);
                i += 1;
            }
            flag_bit += 1;
        }
        out
    }

    #[test]
    fn lz_roundtrips_all_workload_images_no_worse_than_greedy() {
        for (name, m) in &lpat_workloads::compile_suite(10) {
            let bytes = lpat_bytecode::write_module(m);
            let z = lz_compress(&bytes);
            assert_eq!(lz_decompress(&z), bytes, "round-trip failed for {name}");
            let g = greedy_reference(&bytes);
            assert!(
                z.len() <= g.len(),
                "{name}: hash-chain {} bytes > greedy {} bytes",
                z.len(),
                g.len()
            );
        }
    }

    #[test]
    fn json_parser_handles_the_shapes_we_emit() {
        let doc = r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -3e2}}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::num), Some(1.5));
        let b = v.get("b").and_then(Json::arr).unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].str(), Some("x\n\"y\""));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::num),
            Some(-300.0)
        );
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn vm_bench_validator_accepts_good_and_rejects_bad() {
        let good = r#"{
  "schema": "lpat-bench-vm/v3", "scale": 0, "reps": 3,
  "workloads": [
    {"name": "w", "engines": {
      "interp": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000},
      "jit": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1},
      "native": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1,
                 "native_translate_ms": 0.1, "native_promoted": 2, "native_osr": 0,
                 "native_insts": 10},
      "tiered": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1,
                 "promoted": 2, "warmed": 0, "osr": 1},
      "tiered_warm": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1,
                      "promoted": 2, "warmed": 2, "osr": 0},
      "tiered_native": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1,
                        "promoted": 2, "warmed": 0, "osr": 1,
                        "native_translate_ms": 0.1, "native_promoted": 1, "native_osr": 1,
                        "native_insts": 5},
      "tiered_spec": {"wall_ms": 1, "insts": 10, "insts_per_sec": 10000, "translate_ms": 0.1,
                      "promoted": 2, "warmed": 2, "osr": 0,
                      "guards": 1, "guard_passed": 9, "guard_failed": 1, "deopts": 1}
    }}
  ],
  "geomean_speedup_tiered_vs_interp": 1.8,
  "geomean_speedup_warm_vs_cold": 1.1,
  "geomean_speedup_spec_warm_vs_cold": 1.4,
  "geomean_speedup_native_vs_jit": 1.3,
  "geomean_speedup_tiered_native_vs_tiered": 1.2
}"#;
        validate_vm_bench(good).unwrap();
        assert!(validate_vm_bench("{}").is_err());
        // Earlier schema tags must be rejected: v1/v2 files lack the
        // machine-code-tier rows and must be regenerated, not trusted.
        assert!(validate_vm_bench(&good.replace("lpat-bench-vm/v3", "lpat-bench-vm/v1")).is_err());
        assert!(validate_vm_bench(&good.replace("lpat-bench-vm/v3", "lpat-bench-vm/v2")).is_err());
        assert!(validate_vm_bench(&good.replace("\"tiered\":", "\"other\":")).is_err());
        assert!(validate_vm_bench(&good.replace("\"native\":", "\"other\":")).is_err());
        assert!(validate_vm_bench(&good.replace("\"promoted\": 2,", "")).is_err());
        assert!(validate_vm_bench(&good.replace("\"native_promoted\": 2,", "")).is_err());
        assert!(validate_vm_bench(&good.replace("\"guards\": 1,", "")).is_err());
        assert!(validate_vm_bench(
            &good.replace("\"geomean_speedup_spec_warm_vs_cold\": 1.4", "\"x\": 1")
        )
        .is_err());
        assert!(validate_vm_bench(
            &good.replace("\"geomean_speedup_native_vs_jit\": 1.3", "\"x\": 1")
        )
        .is_err());
    }

    #[test]
    fn committed_bench_vm_artifact_is_valid() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_vm.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (regenerate with vmperf)", path.display()));
        validate_vm_bench(&text).unwrap_or_else(|e| panic!("committed BENCH_vm.json: {e}"));
    }

    #[test]
    fn serve_bench_validator_accepts_good_and_rejects_bad() {
        let good = r#"{
  "schema": "lpat-bench-serve/v2",
  "clients": 8, "requests_per_client": 40, "workers": 2, "queue_depth": 2,
  "duration_ms": 1234.5, "requests": 320, "ok": 290, "errors": 20, "busy": 10,
  "requests_per_sec": 259.2,
  "cache_hits": 250, "cache_misses": 40, "cache_hit_rate": 0.862,
  "latency_ms": {"p50": 1.2, "p90": 4.5, "p99": 20.1, "max": 55.0},
  "server_quantiles": {
    "latency_us": {"count": 290, "p50": 900, "p90": 3800, "p99": 18000, "max": 52000},
    "queue_wait_us": {"count": 321, "p50": 120, "p90": 900, "p99": 4100, "max": 9000}
  },
  "server": {"schema": "lpat-serve-stats/v2",
             "requests": 321, "ok": 290, "errors": 20, "busy": 11,
             "shed_queue": 9, "busy_tenant": 2,
             "quantiles": {"latency_us": {}, "queue_wait_us": {}}}
}"#;
        validate_serve_bench(good).unwrap();
        assert!(validate_serve_bench("{}").is_err());
        // Fewer than 8 clients defeats the point of a concurrency bench.
        assert!(validate_serve_bench(&good.replace("\"clients\": 8", "\"clients\": 4")).is_err());
        // The hostile-request mix must register as errors.
        assert!(validate_serve_bench(&good.replace("\"errors\": 20,", "\"errors\": 0,")).is_err());
        assert!(validate_serve_bench(&good.replace("\"shed_queue\": 9,", "")).is_err());
        assert!(validate_serve_bench(&good.replace("\"p99\": 20.1,", "")).is_err());
        // v2 additions must be present: the lifted server-side quantiles,
        // the stats schema tag, and the embedded telemetry section.
        assert!(validate_serve_bench(&good.replace("\"server_quantiles\"", "\"sq\"")).is_err());
        assert!(validate_serve_bench(&good.replace(
            "\"queue_wait_us\": {\"count\": 321",
            "\"queue_wait_us\": {\"n\": 321"
        ))
        .is_err());
        assert!(
            validate_serve_bench(&good.replace("lpat-serve-stats/v2", "lpat-serve-stats/v1"))
                .is_err()
        );
        assert!(validate_serve_bench(&good.replace("\"quantiles\":", "\"histograms\":")).is_err());
        // Pre-telemetry v1 artifacts are rejected outright.
        assert!(
            validate_serve_bench(&good.replace("lpat-bench-serve/v2", "lpat-bench-serve/v1"))
                .is_err()
        );
    }

    #[test]
    fn committed_bench_serve_artifact_is_valid() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_serve.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (regenerate with servebench)", path.display()));
        validate_serve_bench(&text).unwrap_or_else(|e| panic!("committed BENCH_serve.json: {e}"));
    }

    #[test]
    fn prepare_produces_ssa_modules() {
        let w = &lpat_workloads::suite(0)[0];
        let m = prepare(w.name, &w.source);
        assert!(!m.display().contains("alloca"));
    }
}
