//! Regenerates **Table 2**: interprocedural optimization timings (seconds)
//! for DGE, DAE, and inlining at link time, against the time a full
//! front-end compile of the same program takes (the paper's GCC -O3
//! reference column).
//!
//! The link-time pipeline runs once per benchmark through the
//! [`PassManager`], and every timing column is read from the structured
//! [`PipelineReport`] it returns — the same instrumentation `lpatc
//! --time-passes` prints. The aggregated per-pass table at the bottom also
//! shows the analysis-cache traffic (dominator trees and call graphs
//! reused across passes vs. recomputed after invalidation).
//!
//! ```text
//! cargo run -p lpat-bench --release --bin table2 [-- --scale N]
//! ```

use std::time::Instant;

use lpat_transform::{link_time_pipeline, PassExecution, PipelineReport};

/// Sum the durations of every pass row (recursively) named `name`.
fn pass_secs(report: &PipelineReport, name: &str) -> f64 {
    fn walk(rows: &[PassExecution], name: &str) -> f64 {
        rows.iter()
            .map(|p| {
                let own = if p.name == name {
                    p.duration.as_secs_f64()
                } else {
                    0.0
                };
                own + walk(&p.sub, name)
            })
            .sum()
    }
    walk(&report.passes, name)
}

/// Merge per-pass rows of `b` into `a` (same pipeline, so same shape).
fn merge_rows(a: &mut Vec<PassExecution>, b: &[PassExecution]) {
    if a.is_empty() {
        a.extend(b.iter().cloned());
        // Per-function rows are workload-specific; drop them from the
        // cross-benchmark aggregate.
        for r in a.iter_mut() {
            r.functions.clear();
        }
        return;
    }
    for (x, y) in a.iter_mut().zip(b) {
        x.duration += y.duration;
        x.changed |= y.changed;
        x.cache.add(y.cache);
        x.stats = y.stats.clone();
        merge_rows(&mut x.sub, &y.sub);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u32);

    println!("Table 2: Interprocedural optimization timings (seconds), scale={scale}\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>11}   cache (hit/miss/inval)",
        "Benchmark", "DGE", "DAE", "inline", "link-opt", "full-compile"
    );
    let suite = lpat_workloads::suite(scale);
    let mut sums = [0.0f64; 5];
    let mut agg = PipelineReport::default();
    for w in &suite {
        // Linked module: compile + per-module pipeline (what the linker
        // would have combined).
        let m = lpat_bench::prepare(w.name, &w.source);

        // The whole link-time pipeline, timed pass by pass.
        let mut c = m.clone();
        let mut pm = link_time_pipeline();
        let report = pm.run(&mut c);
        let dge = pass_secs(&report, "dge");
        let dae = pass_secs(&report, "dae");
        let inline_t = pass_secs(&report, "inline");
        let link_t = report.total.as_secs_f64();

        // Full compile (front-end + per-module -O pipeline + native
        // codegen), the reference column.
        let t0 = Instant::now();
        let mut full = lpat_minic::compile(w.name, &w.source).expect("compiles");
        lpat_transform::function_pipeline().run(&mut full);
        let _bin = lpat_codegen::compile_module(&full, &lpat_codegen::Cisc32);
        let gcc = t0.elapsed().as_secs_f64();

        sums[0] += dge;
        sums[1] += dae;
        sums[2] += inline_t;
        sums[3] += link_t;
        sums[4] += gcc;
        println!(
            "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>11.4}   {}/{}/{}",
            w.name,
            dge,
            dae,
            inline_t,
            link_t,
            gcc,
            report.cache.hits,
            report.cache.misses,
            report.cache.invalidations
        );
        agg.total += report.total;
        agg.cache.add(report.cache);
        merge_rows(&mut agg.passes, &report.passes);
    }
    let n = suite.len() as f64;
    println!(
        "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>11.4}",
        "average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n
    );
    let ipo_avg = (sums[0] + sums[1] + sums[2]) / (3.0 * n);
    println!(
        "\nIPO passes average {:.1}x faster than the full compile (paper: 'substantially less').",
        (sums[4] / n) / ipo_avg.max(1e-9)
    );
    println!(
        "\nPer-pass breakdown, summed over all {} benchmarks:\n",
        suite.len()
    );
    print!("{}", agg.render());
}
