//! Regenerates **Table 2**: interprocedural optimization timings (seconds)
//! for DGE, DAE, and inlining at link time, against the time a full
//! front-end compile of the same program takes (the paper's GCC -O3
//! reference column).
//!
//! Each pass runs on a fresh copy of the linked, internalized module, as
//! the paper timed the passes individually. The final columns report the
//! §4.1.4-style elimination counts.
//!
//! ```text
//! cargo run -p lpat-bench --release --bin table2 [-- --scale N]
//! ```

use std::time::Instant;

use lpat_core::Module;
use lpat_transform::ipo::{run_dae, run_dge};
use lpat_transform::pm::Pass;

fn internalized(m: &Module) -> Module {
    let mut c = m.clone();
    lpat_transform::ipo::Internalize::default().run(&mut c);
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u32);

    println!("Table 2: Interprocedural optimization timings (seconds), scale={scale}\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>11}   {}",
        "Benchmark", "DGE", "DAE", "inline", "full-compile", "eliminated (fns/globals/args/rets/inlined)"
    );
    let suite = lpat_workloads::suite(scale);
    let mut sums = [0.0f64; 4];
    for w in &suite {
        // Linked module: compile + per-module pipeline (what the linker
        // would have combined).
        let m = lpat_bench::prepare(w.name, &w.source);

        // DGE.
        let mut c = internalized(&m);
        let t0 = Instant::now();
        let (fns, globals) = run_dge(&mut c);
        let dge = t0.elapsed().as_secs_f64();

        // DAE.
        let mut c = internalized(&m);
        let t0 = Instant::now();
        let (args_rm, rets_rm) = run_dae(&mut c);
        let dae = t0.elapsed().as_secs_f64();

        // Inline.
        let mut c = internalized(&m);
        let mut inliner = lpat_transform::inline::Inline::default();
        let t0 = Instant::now();
        inliner.run(&mut c);
        let inline_t = t0.elapsed().as_secs_f64();
        let inline_stats = inliner.stats();

        // Full compile (front-end + per-module -O pipeline + native
        // codegen), the reference column.
        let t0 = Instant::now();
        let mut full = lpat_minic::compile(w.name, &w.source).expect("compiles");
        lpat_transform::function_pipeline().run(&mut full);
        let _bin = lpat_codegen::compile_module(&full, &lpat_codegen::Cisc32);
        let gcc = t0.elapsed().as_secs_f64();

        sums[0] += dge;
        sums[1] += dae;
        sums[2] += inline_t;
        sums[3] += gcc;
        println!(
            "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>11.4}   {}/{} globals, {}/{} args/rets, {}",
            w.name, dge, dae, inline_t, gcc, fns, globals, args_rm, rets_rm, inline_stats
        );
    }
    let n = suite.len() as f64;
    println!(
        "{:<14} {:>9.4} {:>9.4} {:>9.4} {:>11.4}",
        "average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    let ipo_avg = (sums[0] + sums[1] + sums[2]) / (3.0 * n);
    println!(
        "\nIPO passes average {:.1}x faster than the full compile (paper: 'substantially less').",
        (sums[3] / n) / ipo_avg.max(1e-9)
    );
}
