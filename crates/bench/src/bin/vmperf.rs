//! `vmperf` — the VM execution-engine benchmark.
//!
//! Runs every workload under seven engines — the reference interpreter,
//! the full JIT (translate everything on first call), the full native
//! backend (every function straight to risc32 machine code), the tiered
//! engine cold (counter-driven promotion), the tiered engine warm-started
//! from a prior run's profile, the three-tier engine (interp → JIT →
//! machine code, counter-driven), and the tiered engine over the full
//! lifelong cycle (offline profile-guided reoptimization plus speculation
//! with guards, warm-started) — and emits `BENCH_vm.json`
//! (`lpat-bench-vm/v3`): per-workload wall time (best of N reps),
//! instructions/second, translation time, promotion counts, machine-code
//! tier counters for the native rows, and guard / deoptimization counts
//! for the speculative rows, plus the headline geomeans (tiered vs.
//! interpreter, warm vs. cold, spec-warm vs. cold, native vs. JIT, and
//! three-tier vs. two-tier).
//!
//! Every engine's program output and exit code are asserted identical to
//! the interpreter's before any timing is reported — a benchmark of a
//! wrong answer is worthless.
//!
//! ```text
//! cargo run -p lpat-bench --release --bin vmperf [-- --quick] [-- -o FILE]
//!     [-- --workloads GLOB] [-- --engines LIST]
//! ```
//!
//! `--quick` drops to one rep per engine (the CI smoke configuration);
//! the committed artifact is generated in release mode without it.
//! `--workloads GLOB` (shell-style `*`/`?`) and `--engines LIST`
//! (comma-separated) restrict the run for iterating on one engine or one
//! workload; a restricted run prints the table but skips the JSON
//! artifact — `BENCH_vm.json` only ever holds the full matrix.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use lpat_transform::{SpecMap, SpecOptions};
use lpat_vm::{PgoOptions, Vm, VmOptions};

/// Engine rows in artifact order. `interp` is ground truth and always runs.
const ENGINES: [&str; 7] = [
    "interp",
    "jit",
    "native",
    "tiered",
    "tiered_warm",
    "tiered_native",
    "tiered_spec",
];

/// Extra hotness (beyond JIT promotion) before the three-tier engine's
/// counter-driven rise to machine code.
const NATIVE_UP: u64 = 200;

#[derive(Clone, Default)]
struct EngineResult {
    wall_ms: f64,
    insts: u64,
    translate_ms: f64,
    native_translate_ms: f64,
    promoted: u64,
    warmed: u64,
    osr: u64,
    native_promoted: u64,
    native_osr: u64,
    native_insts: u64,
    guards: u64,
    guard_passed: u64,
    guard_failed: u64,
    deopts: u64,
}

impl EngineResult {
    fn insts_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.insts as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// Run `main` once under the selected engine, returning the result row
/// plus the observed (exit, output) pair for cross-engine verification.
fn run_once(
    m: &lpat_core::Module,
    engine: &str,
    warm: Option<&lpat_vm::ProfileData>,
    spec: Option<&Rc<SpecMap>>,
) -> (EngineResult, i64, String) {
    let mut opts = VmOptions::default();
    match engine {
        // Everything straight to machine code on first call: the native
        // analogue of the `jit` row.
        "native" => {
            opts.tier_up = 0;
            opts.native_up = Some(0);
        }
        // The genuine three-tier ladder: interpret, promote to JIT at the
        // default threshold, then to machine code after NATIVE_UP more
        // hotness on the JIT tier.
        "tiered_native" => opts.native_up = Some(NATIVE_UP),
        _ => {}
    }
    let mut vm = Vm::new(m, opts).expect("vm init");
    if let Some(map) = spec {
        vm.install_speculation(map.clone(), map.len() as u64, 0);
    }
    if let Some(p) = warm {
        vm.warm_start(p);
    }
    let t0 = Instant::now();
    let code = match engine {
        "interp" => vm.run_main(),
        "jit" => vm.run_main_jit(),
        _ => vm.run_main_tiered(),
    }
    .unwrap_or_else(|e| panic!("{}: {engine}: {e}", m.name));
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t = &vm.tier_stats;
    let s = &vm.spec_stats;
    (
        EngineResult {
            wall_ms,
            insts: vm.insts_executed,
            translate_ms: t.translate_ns as f64 / 1e6,
            native_translate_ms: t.native_translate_ns as f64 / 1e6,
            promoted: t.promoted,
            warmed: t.warmed,
            osr: t.osr,
            native_promoted: t.native_promoted,
            native_osr: t.native_osr,
            native_insts: t.native_insts,
            guards: s.emitted,
            guard_passed: s.passed,
            guard_failed: s.failed,
            deopts: s.deopts,
        },
        code,
        vm.output.clone(),
    )
}

/// Best-of-`reps` timing (minimum wall time; counters from the last rep —
/// they are identical across reps by determinism).
fn run_best(
    m: &lpat_core::Module,
    engine: &str,
    warm: Option<&lpat_vm::ProfileData>,
    spec: Option<&Rc<SpecMap>>,
    reps: usize,
    expect: Option<&(i64, String)>,
) -> (EngineResult, i64, String) {
    let mut best: Option<EngineResult> = None;
    let mut last = None;
    for _ in 0..reps {
        let (r, code, out) = run_once(m, engine, warm, spec);
        if let Some((ecode, eout)) = expect {
            assert_eq!(
                (*ecode, eout.as_str()),
                (code, out.as_str()),
                "{}: engine '{engine}' diverged from interpreter",
                m.name
            );
        }
        best = Some(match best {
            Some(b) if b.wall_ms <= r.wall_ms => b,
            _ => r,
        });
        last = Some((code, out));
    }
    let (code, out) = last.unwrap();
    (best.unwrap(), code, out)
}

fn jnum(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Shell-style glob match: `*` any run, `?` any one char, else literal.
fn glob_match(pat: &str, name: &str) -> bool {
    let (p, n): (Vec<char>, Vec<char>) = (pat.chars().collect(), name.chars().collect());
    // Iterative backtracking matcher: remember the last `*` and retry it
    // against one more character whenever the tail mismatches.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ni;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

fn flag_value<'a>(args: &'a [String], f: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == f)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "-o")
        .unwrap_or("BENCH_vm.json")
        .to_string();
    let workloads_pat = flag_value(&args, "--workloads");
    let engines_list = flag_value(&args, "--engines");
    let scale = 0u32;
    let reps = if quick { 1 } else { 3 };

    let selected: Vec<&str> = match engines_list {
        Some(list) => {
            let want: Vec<&str> = list.split(',').map(str::trim).collect();
            for e in &want {
                assert!(
                    ENGINES.contains(e),
                    "unknown engine '{e}' (have {ENGINES:?})"
                );
            }
            // Keep artifact order regardless of how the list was written.
            ENGINES
                .iter()
                .copied()
                .filter(|e| want.contains(e))
                .collect()
        }
        None => ENGINES.to_vec(),
    };
    // A filtered run is for iterating, not for publishing: the JSON
    // artifact only ever holds the full engine × workload matrix.
    let full_matrix = workloads_pat.is_none() && engines_list.is_none();

    let suite: Vec<_> = lpat_workloads::suite(scale)
        .into_iter()
        .filter(|w| workloads_pat.is_none_or(|p| glob_match(p, w.name)))
        .collect();
    assert!(!suite.is_empty(), "--workloads matched nothing");

    let mut rows: Vec<(&str, BTreeMap<&str, EngineResult>)> = Vec::new();
    print!("{:<14}", "workload");
    for e in &selected {
        print!(" {:>13}", format!("{e} ms"));
    }
    println!();
    for w in &suite {
        let m = lpat_bench::prepare(w.name, &w.source);
        // Reference run: the interpreter's answer is ground truth. It is
        // timed only when selected, but always runs once for the oracle.
        let (interp, code, output) = run_best(&m, "interp", None, None, reps, None);
        let expect = (code, output);
        // Warm-start profile (one untimed instrumented tiered run) and the
        // speculation overlay are built lazily: only the engines that
        // consume them pay for them.
        let need_profile = selected
            .iter()
            .any(|e| matches!(*e, "tiered_warm" | "tiered_spec"));
        let profile = need_profile.then(|| {
            let opts = VmOptions {
                profile: true,
                ..VmOptions::default()
            };
            let mut vm = Vm::new(&m, opts).expect("vm init");
            vm.run_main_tiered()
                .unwrap_or_else(|e| panic!("{}: profiling run: {e}", w.name));
            vm.profile.clone()
        });
        // Speculative warm run — the full lifelong cycle a cached store
        // session replays: offline profile-guided reoptimization (hot
        // inlining + layout), speculation justified by the same profile
        // (guards as an in-memory overlay), then a warm-started tiered
        // run of the result.
        let spec_setup = selected.contains(&"tiered_spec").then(|| {
            let profile = profile.as_ref().unwrap();
            let mut sm = m.clone();
            let report = lpat_vm::reoptimize(&mut sm, profile, &PgoOptions::default());
            assert!(
                !report.degraded(),
                "{}: reopt degraded: {:?}",
                w.name,
                report.faults
            );
            // Re-profile the reoptimized module: inlining rewrites
            // instruction ids, so the first generation's per-site counts no
            // longer name the hot call sites. Each lifelong generation
            // profiles itself.
            let profile2 = {
                let opts = VmOptions {
                    profile: true,
                    ..VmOptions::default()
                };
                let mut vm = Vm::new(&sm, opts).expect("vm init");
                vm.run_main_tiered()
                    .unwrap_or_else(|e| panic!("{}: reprofiling run: {e}", w.name));
                vm.profile.clone()
            };
            let (map, _plan) = lpat_transform::speculate::speculate(
                &mut sm,
                &profile2.to_spec_profile(),
                &SpecOptions::default(),
            );
            sm.verify()
                .unwrap_or_else(|e| panic!("{}: speculated module broken: {e:?}", w.name));
            (sm, profile2, Rc::new(map))
        });
        let mut engines: BTreeMap<&str, EngineResult> = BTreeMap::new();
        for e in &selected {
            let r = match *e {
                // The oracle run already timed the interpreter best-of-N.
                "interp" => interp.clone(),
                "tiered_warm" => {
                    run_best(&m, "tiered", profile.as_ref(), None, reps, Some(&expect)).0
                }
                "tiered_spec" => {
                    let (sm, profile2, map) = spec_setup.as_ref().unwrap();
                    run_best(sm, "tiered", Some(profile2), Some(map), reps, Some(&expect)).0
                }
                other => run_best(&m, other, None, None, reps, Some(&expect)).0,
            };
            engines.insert(e, r);
        }
        print!("{:<14}", w.name);
        for e in &selected {
            print!(" {:>13.2}", engines[e].wall_ms);
        }
        println!();
        rows.push((w.name, engines));
    }

    let geomean =
        |v: &[f64]| -> f64 { (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp() };
    let ratio = |num: &str, den: &str| -> Vec<f64> {
        rows.iter()
            .map(|(_, e)| e[den].wall_ms / e[num].wall_ms.max(1e-9))
            .collect()
    };

    if !full_matrix {
        println!("\n(filtered run: BENCH_vm.json not written)");
        return;
    }

    let g_tiered = geomean(&ratio("tiered", "interp"));
    let g_warm = geomean(&ratio("tiered_warm", "tiered"));
    let g_spec = geomean(&ratio("tiered_spec", "tiered"));
    let g_native = geomean(&ratio("native", "jit"));
    let g_tnative = geomean(&ratio("tiered_native", "tiered"));
    println!(
        "\ngeomean speedup  tiered vs interp: {g_tiered:.2}x   warm vs cold: {g_warm:.2}x   \
         spec-warm vs cold: {g_spec:.2}x\n\
         \x20                native vs jit: {g_native:.2}x   three-tier vs two-tier: {g_tnative:.2}x"
    );

    // Hand-serialized (the workspace has no serde); validated below.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"lpat-bench-vm/v3\",\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str("  \"workloads\": [\n");
    for (i, (name, engines)) in rows.iter().enumerate() {
        let eng = |e: &str| -> String {
            let r = &engines[e];
            let mut s = format!(
                "{{\"wall_ms\": {}, \"insts\": {}, \"insts_per_sec\": {}",
                jnum(r.wall_ms),
                r.insts,
                jnum(r.insts_per_sec()),
            );
            // The interpreter row carries no translate_ms: nothing
            // translates.
            if e != "interp" {
                s.push_str(&format!(", \"translate_ms\": {}", jnum(r.translate_ms)));
            }
            if e.starts_with("tiered") {
                s.push_str(&format!(
                    ", \"promoted\": {}, \"warmed\": {}, \"osr\": {}",
                    r.promoted, r.warmed, r.osr
                ));
            }
            if e == "native" || e == "tiered_native" {
                s.push_str(&format!(
                    ", \"native_translate_ms\": {}, \"native_promoted\": {}, \
                     \"native_osr\": {}, \"native_insts\": {}",
                    jnum(r.native_translate_ms),
                    r.native_promoted,
                    r.native_osr,
                    r.native_insts
                ));
            }
            if e == "tiered_spec" {
                s.push_str(&format!(
                    ", \"guards\": {}, \"guard_passed\": {}, \"guard_failed\": {}, \"deopts\": {}",
                    r.guards, r.guard_passed, r.guard_failed, r.deopts
                ));
            }
            s.push('}');
            s
        };
        j.push_str(&format!("    {{\"name\": \"{name}\", \"engines\": {{\n"));
        for (k, e) in ENGINES.iter().enumerate() {
            j.push_str(&format!(
                "      \"{e}\": {}{}\n",
                eng(e),
                if k + 1 < ENGINES.len() { "," } else { "" }
            ));
        }
        j.push_str(&format!(
            "    }}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"geomean_speedup_tiered_vs_interp\": {},\n",
        jnum(g_tiered)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_warm_vs_cold\": {},\n",
        jnum(g_warm)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_spec_warm_vs_cold\": {},\n",
        jnum(g_spec)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_native_vs_jit\": {},\n",
        jnum(g_native)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_tiered_native_vs_tiered\": {}\n",
        jnum(g_tnative)
    ));
    j.push_str("}\n");

    lpat_bench::validate_vm_bench(&j).expect("generated BENCH_vm.json fails its own schema");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("{out_path}: {e}"));
    println!("wrote {out_path}");
}
