//! `vmperf` — the VM execution-engine benchmark.
//!
//! Runs every workload under five engines — the reference interpreter,
//! the full JIT (translate everything on first call), the tiered engine
//! cold (counter-driven promotion), the tiered engine warm-started from
//! a prior run's profile, and the tiered engine over the full lifelong
//! cycle (offline profile-guided reoptimization plus speculation with
//! guards, warm-started) — and emits `BENCH_vm.json`
//! (`lpat-bench-vm/v2`): per-workload wall time (best of N reps),
//! instructions/second, translation time, promotion counts, and guard /
//! deoptimization counts for the speculative rows, plus the three
//! headline geomeans (tiered vs. interpreter, warm vs. cold, and
//! speculative-warm vs. cold).
//!
//! Every engine's program output and exit code are asserted identical to
//! the interpreter's before any timing is reported — a benchmark of a
//! wrong answer is worthless.
//!
//! ```text
//! cargo run -p lpat-bench --release --bin vmperf [-- --quick] [-- -o FILE]
//! ```
//!
//! `--quick` drops to one rep per engine (the CI smoke configuration);
//! the committed artifact is generated in release mode without it.

use std::rc::Rc;
use std::time::Instant;

use lpat_transform::{SpecMap, SpecOptions};
use lpat_vm::{PgoOptions, Vm, VmOptions};

struct EngineResult {
    wall_ms: f64,
    insts: u64,
    translate_ms: f64,
    promoted: u64,
    warmed: u64,
    osr: u64,
    guards: u64,
    guard_passed: u64,
    guard_failed: u64,
    deopts: u64,
}

impl EngineResult {
    fn insts_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.insts as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// Run `main` once under the selected engine, returning the result row
/// plus the observed (exit, output) pair for cross-engine verification.
fn run_once(
    m: &lpat_core::Module,
    engine: &str,
    warm: Option<&lpat_vm::ProfileData>,
    spec: Option<&Rc<SpecMap>>,
) -> (EngineResult, i64, String) {
    let opts = VmOptions::default();
    let mut vm = Vm::new(m, opts).expect("vm init");
    if let Some(map) = spec {
        vm.install_speculation(map.clone(), map.len() as u64, 0);
    }
    if let Some(p) = warm {
        vm.warm_start(p);
    }
    let t0 = Instant::now();
    let code = match engine {
        "interp" => vm.run_main(),
        "jit" => vm.run_main_jit(),
        _ => vm.run_main_tiered(),
    }
    .unwrap_or_else(|e| panic!("{}: {engine}: {e}", m.name));
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t = &vm.tier_stats;
    let s = &vm.spec_stats;
    (
        EngineResult {
            wall_ms,
            insts: vm.insts_executed,
            translate_ms: t.translate_ns as f64 / 1e6,
            promoted: t.promoted,
            warmed: t.warmed,
            osr: t.osr,
            guards: s.emitted,
            guard_passed: s.passed,
            guard_failed: s.failed,
            deopts: s.deopts,
        },
        code,
        vm.output.clone(),
    )
}

/// Best-of-`reps` timing (minimum wall time; counters from the last rep —
/// they are identical across reps by determinism).
fn run_best(
    m: &lpat_core::Module,
    engine: &str,
    warm: Option<&lpat_vm::ProfileData>,
    spec: Option<&Rc<SpecMap>>,
    reps: usize,
    expect: Option<&(i64, String)>,
) -> (EngineResult, i64, String) {
    let mut best: Option<EngineResult> = None;
    let mut last = None;
    for _ in 0..reps {
        let (r, code, out) = run_once(m, engine, warm, spec);
        if let Some((ecode, eout)) = expect {
            assert_eq!(
                (*ecode, eout.as_str()),
                (code, out.as_str()),
                "{}: engine '{engine}' diverged from interpreter",
                m.name
            );
        }
        best = Some(match best {
            Some(b) if b.wall_ms <= r.wall_ms => b,
            _ => r,
        });
        last = Some((code, out));
    }
    let (code, out) = last.unwrap();
    (best.unwrap(), code, out)
}

fn jnum(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_vm.json".to_string());
    let scale = 0u32;
    let reps = if quick { 1 } else { 3 };

    let suite = lpat_workloads::suite(scale);
    let mut rows = Vec::new();
    let mut speedup_tiered = Vec::new();
    let mut speedup_warm = Vec::new();
    let mut speedup_spec = Vec::new();
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}   {:>8} {:>8} {:>8}",
        "workload",
        "interp ms",
        "jit ms",
        "tiered ms",
        "warm ms",
        "spec ms",
        "tier/int",
        "warm/cold",
        "spec/cold"
    );
    for w in &suite {
        let m = lpat_bench::prepare(w.name, &w.source);
        // Reference run: the interpreter's answer is ground truth.
        let (interp, code, output) = run_best(&m, "interp", None, None, reps, None);
        let expect = (code, output);
        let (jit, _, _) = run_best(&m, "jit", None, None, reps, Some(&expect));
        let (tiered, _, _) = run_best(&m, "tiered", None, None, reps, Some(&expect));
        // Warm-start profile: one untimed instrumented tiered run.
        let profile = {
            let opts = VmOptions {
                profile: true,
                ..VmOptions::default()
            };
            let mut vm = Vm::new(&m, opts).expect("vm init");
            vm.run_main_tiered()
                .unwrap_or_else(|e| panic!("{}: profiling run: {e}", w.name));
            vm.profile.clone()
        };
        let (warm, _, _) = run_best(&m, "tiered", Some(&profile), None, reps, Some(&expect));
        // Speculative warm run — the full lifelong cycle a cached store
        // session replays: offline profile-guided reoptimization (hot
        // inlining + layout), speculation justified by the same profile
        // (guards as an in-memory overlay), then a warm-started tiered
        // run of the result.
        let sm = {
            let mut sm = m.clone();
            let report = lpat_vm::reoptimize(&mut sm, &profile, &PgoOptions::default());
            assert!(
                !report.degraded(),
                "{}: reopt degraded: {:?}",
                w.name,
                report.faults
            );
            sm
        };
        let mut sm = sm;
        // Re-profile the reoptimized module: inlining rewrites instruction
        // ids, so the first generation's per-site counts no longer name the
        // hot call sites. Each lifelong generation profiles itself.
        let profile2 = {
            let opts = VmOptions {
                profile: true,
                ..VmOptions::default()
            };
            let mut vm = Vm::new(&sm, opts).expect("vm init");
            vm.run_main_tiered()
                .unwrap_or_else(|e| panic!("{}: reprofiling run: {e}", w.name));
            vm.profile.clone()
        };
        let (map, _plan) = lpat_transform::speculate::speculate(
            &mut sm,
            &profile2.to_spec_profile(),
            &SpecOptions::default(),
        );
        sm.verify()
            .unwrap_or_else(|e| panic!("{}: speculated module broken: {e:?}", w.name));
        let map = Rc::new(map);
        let (spec, _, _) = run_best(
            &sm,
            "tiered",
            Some(&profile2),
            Some(&map),
            reps,
            Some(&expect),
        );
        let sp_t = interp.wall_ms / tiered.wall_ms.max(1e-9);
        let sp_w = tiered.wall_ms / warm.wall_ms.max(1e-9);
        let sp_s = tiered.wall_ms / spec.wall_ms.max(1e-9);
        speedup_tiered.push(sp_t);
        speedup_warm.push(sp_w);
        speedup_spec.push(sp_s);
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}   {:>7.2}x {:>8.2}x {:>8.2}x",
            w.name,
            interp.wall_ms,
            jit.wall_ms,
            tiered.wall_ms,
            warm.wall_ms,
            spec.wall_ms,
            sp_t,
            sp_w,
            sp_s
        );
        rows.push((w.name, interp, jit, tiered, warm, spec));
    }

    let geomean =
        |v: &[f64]| -> f64 { (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp() };
    let g_tiered = geomean(&speedup_tiered);
    let g_warm = geomean(&speedup_warm);
    let g_spec = geomean(&speedup_spec);
    println!(
        "\ngeomean speedup  tiered vs interp: {g_tiered:.2}x   warm vs cold: {g_warm:.2}x   \
         spec-warm vs cold: {g_spec:.2}x"
    );

    // Hand-serialized (the workspace has no serde); validated below.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"lpat-bench-vm/v2\",\n");
    j.push_str(&format!("  \"scale\": {scale},\n"));
    j.push_str(&format!("  \"reps\": {reps},\n"));
    j.push_str("  \"workloads\": [\n");
    for (i, (name, interp, jit, tiered, warm, spec)) in rows.iter().enumerate() {
        let eng = |r: &EngineResult, tiered: bool, spec: bool| -> String {
            let mut s = format!(
                "{{\"wall_ms\": {}, \"insts\": {}, \"insts_per_sec\": {}, \"translate_ms\": {}",
                jnum(r.wall_ms),
                r.insts,
                jnum(r.insts_per_sec()),
                jnum(r.translate_ms)
            );
            if tiered {
                s.push_str(&format!(
                    ", \"promoted\": {}, \"warmed\": {}, \"osr\": {}",
                    r.promoted, r.warmed, r.osr
                ));
            }
            if spec {
                s.push_str(&format!(
                    ", \"guards\": {}, \"guard_passed\": {}, \"guard_failed\": {}, \"deopts\": {}",
                    r.guards, r.guard_passed, r.guard_failed, r.deopts
                ));
            }
            s.push('}');
            s
        };
        // The interpreter row carries no translate_ms: nothing translates.
        let interp_s = format!(
            "{{\"wall_ms\": {}, \"insts\": {}, \"insts_per_sec\": {}}}",
            jnum(interp.wall_ms),
            interp.insts,
            jnum(interp.insts_per_sec())
        );
        j.push_str(&format!(
            "    {{\"name\": \"{name}\", \"engines\": {{\n      \"interp\": {interp_s},\n      \"jit\": {},\n      \"tiered\": {},\n      \"tiered_warm\": {},\n      \"tiered_spec\": {}\n    }}}}{}\n",
            eng(jit, false, false),
            eng(tiered, true, false),
            eng(warm, true, false),
            eng(spec, true, true),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"geomean_speedup_tiered_vs_interp\": {},\n",
        jnum(g_tiered)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_warm_vs_cold\": {},\n",
        jnum(g_warm)
    ));
    j.push_str(&format!(
        "  \"geomean_speedup_spec_warm_vs_cold\": {}\n",
        jnum(g_spec)
    ));
    j.push_str("}\n");

    lpat_bench::validate_vm_bench(&j).expect("generated BENCH_vm.json fails its own schema");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("{out_path}: {e}"));
    println!("wrote {out_path}");
}
