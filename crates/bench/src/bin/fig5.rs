//! Regenerates **Figure 5**: executable sizes for the representation's
//! bytecode vs. native X86-like (cisc32) and SPARC-like (risc32) code, in
//! KB, plus the §4.1.3 aside that general-purpose compression roughly
//! halves bytecode files.
//!
//! ```text
//! cargo run -p lpat-bench --release --bin fig5 [-- --scale N]
//! ```

use lpat_bench::{kb, lz_compress};
use lpat_codegen::{compile_module, Cisc32, Risc32};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u32);

    let wide = args.iter().any(|a| a == "--wide-encoding");
    let encode = |m: &lpat_core::Module| {
        lpat_bytecode::write_module_with(
            m,
            lpat_bytecode::WriteOptions {
                compact_heads: !wide,
            },
        )
    };
    println!(
        "Figure 5: Executable sizes for lpat bytecode, X86-like, SPARC-like (KB), scale={scale}{}\n",
        if wide { ", ABLATION: wide encoding (no single-word instructions)" } else { "" }
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "Benchmark", "lpat", "x86", "sparc", "lpat/x86", "lpat/sparc", "compressed"
    );
    let mut totals = [0usize; 4];
    let suite = lpat_workloads::suite(scale);
    for w in &suite {
        let m = lpat_bench::prepare(w.name, &w.source);
        let bc = encode(&m);
        let zipped = lz_compress(&bc);
        let cisc = compile_module(&m, &Cisc32);
        let risc = compile_module(&m, &Risc32);
        totals[0] += bc.len();
        totals[1] += cisc.total;
        totals[2] += risc.total;
        totals[3] += zipped.len();
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>10.2} {:>10.2} {:>9.0}%",
            w.name,
            kb(bc.len()),
            kb(cisc.total),
            kb(risc.total),
            bc.len() as f64 / cisc.total as f64,
            bc.len() as f64 / risc.total as f64,
            zipped.len() as f64 * 100.0 / bc.len() as f64,
        );
    }
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>10.2} {:>10.2} {:>9.0}%",
        "total",
        kb(totals[0]),
        kb(totals[1]),
        kb(totals[2]),
        totals[0] as f64 / totals[1] as f64,
        totals[0] as f64 / totals[2] as f64,
        totals[3] as f64 * 100.0 / totals[0] as f64,
    );
    println!(
        "\nPaper's claim: bytecode ≈ X86 size, ≈25% smaller than SPARC; \
         measured lpat/sparc = {:.2} (1.0 would be parity, 0.75 the paper's average).",
        totals[0] as f64 / totals[2] as f64
    );
}
