//! `servebench` — load generator for `lpatd`, emitting `BENCH_serve.json`.
//!
//! Starts an in-process daemon (same `lpat_serve::Server` the `lpatd`
//! binary runs) with a deliberately small worker pool and queue, then
//! hammers it with N concurrent clients over real sockets. The request
//! mix is deterministic per request index:
//!
//! - most requests run a small fast program (and, once `reopt` has been
//!   primed, hit the reoptimized-module cache);
//! - every 8th request is hostile (an unparseable module) and must come
//!   back as a structured error, never a crash;
//! - every 8th+1 request runs a multi-million-instruction program, long
//!   enough to occupy workers and force the bounded queue to shed.
//!
//! Output: `lpat-bench-serve/v2` JSON with client-side throughput and
//! latency percentiles, the server's own log-linear quantile telemetry
//! (`server_quantiles`, lifted out of the scraped `lpat-serve-stats/v2`
//! document so the two latency views — client wall clock and server
//! service time — sit side by side), and the raw scraped stats under
//! `server` — self-validated against the schema before it is written,
//! so a drifting field name fails here before it fails CI.
//!
//! ```text
//! servebench [--clients N] [--reps N] [--workers N] [--queue N] [--out FILE]
//! ```

use std::time::{Duration, Instant};

use lpat_bench::{parse_json, validate_serve_bench, Json};
use lpat_core::trace::JsonWriter;
use lpat_serve::{Client, Op, Request, Response, Server, ServerConfig};

const FAST_PROG: &str = "\
define int @main() {
entry:
  %a = add int 40, 2
  ret int %a
}
";

const SLOW_PROG: &str = "\
define int @main() {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %i2, %loop ]
  %i2 = add int %i, 1
  %c = setlt int %i2, 800000
  br bool %c, label %loop, label %done
done:
  ret int 0
}
";

const HOSTILE: &str = "this is not a module at all {{{";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = flag(&args, "--clients").unwrap_or(8);
    let reps: usize = flag(&args, "--reps").unwrap_or(40);
    let workers: usize = flag(&args, "--workers").unwrap_or(2);
    let queue: usize = flag(&args, "--queue").unwrap_or(2);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let cache = std::env::temp_dir().join(format!("lpat-servebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let cfg = ServerConfig {
        workers,
        queue_depth: queue,
        cache_dir: Some(cache.clone()),
        quota: lpat_serve::TenantQuota {
            max_inflight: 4, // small enough for tenant caps to register
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = Server::bind(cfg).expect("bind").start();
    let addr = handle.addr().clone();

    // Prime the lifelong loop: one run records a profile, one reopt
    // caches the reoptimized module, so steady-state runs are cache hits.
    {
        let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
        let mut run = Request::new(Op::Run);
        run.module = FAST_PROG.as_bytes().to_vec();
        assert!(matches!(c.request(&run).unwrap(), Response::Ok { .. }));
        let mut reopt = Request::new(Op::Reopt);
        reopt.module = FAST_PROG.as_bytes().to_vec();
        assert!(matches!(c.request(&reopt).unwrap(), Response::Ok { .. }));
    }

    let t0 = Instant::now();
    let mut joins = Vec::new();
    for client_id in 0..clients {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
            let mut lat = Vec::with_capacity(reps);
            let (mut ok, mut errors, mut busy, mut hits) = (0u64, 0u64, 0u64, 0u64);
            for i in 0..reps {
                let mut req = Request::new(Op::Run);
                req.tenant = format!("tenant-{}", client_id % 4);
                req.module = match i % 8 {
                    0 => HOSTILE.as_bytes().to_vec(),
                    1 => SLOW_PROG.as_bytes().to_vec(),
                    _ => FAST_PROG.as_bytes().to_vec(),
                };
                let t = Instant::now();
                let resp = c.request(&req).expect("protocol error");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
                match resp {
                    Response::Ok { cache_hit, .. } => {
                        ok += 1;
                        if cache_hit {
                            hits += 1;
                        }
                    }
                    Response::Err { .. } => errors += 1,
                    Response::Busy { .. } => busy += 1,
                }
            }
            (lat, ok, errors, busy, hits)
        }));
    }
    let mut lat = Vec::new();
    let (mut ok, mut errors, mut busy, mut hits) = (0u64, 0u64, 0u64, 0u64);
    for j in joins {
        let (l, o, e, b, h) = j.join().unwrap();
        lat.extend(l);
        ok += o;
        errors += e;
        busy += b;
        hits += h;
    }
    let wall = t0.elapsed();

    // Scrape the server's own counters over the wire before stopping it.
    let server_stats = {
        let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
        match c.request(&Request::new(Op::Stats)).unwrap() {
            Response::Ok { output, .. } => String::from_utf8(output).expect("stats utf8"),
            other => panic!("stats failed: {other:?}"),
        }
    };
    handle.stop();
    let _ = std::fs::remove_dir_all(&cache);

    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        lat[((q / 100.0) * (lat.len() - 1) as f64).round() as usize]
    };
    let total = (clients * reps) as u64;
    let misses = ok.saturating_sub(hits);
    let hit_rate = if ok > 0 { hits as f64 / ok as f64 } else { 0.0 };

    // Lift the server's own quantile telemetry out of the scraped stats
    // document: the client-side percentiles above include queueing and
    // socket time, the server-side ones are pure service time, and the
    // gap between them is the queue — worth having both in one artifact.
    let server_doc = parse_json(&server_stats).expect("server stats must be valid JSON");
    let quantiles = server_doc
        .get("quantiles")
        .expect("server stats v2 must carry 'quantiles'");
    let hist_field = |h: Option<&Json>, k: &str| -> u64 {
        h.and_then(|v| v.get(k)).and_then(Json::num).unwrap_or(0.0) as u64
    };
    let run_lat = quantiles.get("latency_us").and_then(|l| l.get("op:run"));
    let queue_wait = quantiles.get("queue_wait_us");

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "lpat-bench-serve/v2");
    w.field_u64("clients", clients as u64);
    w.field_u64("requests_per_client", reps as u64);
    w.field_u64("workers", workers as u64);
    w.field_u64("queue_depth", queue as u64);
    w.field_f64("duration_ms", wall.as_secs_f64() * 1e3, 3);
    w.field_u64("requests", total);
    w.field_u64("ok", ok);
    w.field_u64("errors", errors);
    w.field_u64("busy", busy);
    w.field_f64("requests_per_sec", total as f64 / wall.as_secs_f64(), 3);
    w.field_u64("cache_hits", hits);
    w.field_u64("cache_misses", misses);
    w.field_f64("cache_hit_rate", hit_rate, 3);
    w.begin_object_field("latency_ms");
    w.field_f64("p50", pct(50.0), 3);
    w.field_f64("p90", pct(90.0), 3);
    w.field_f64("p99", pct(99.0), 3);
    w.field_f64("max", lat.last().copied().unwrap_or(0.0), 3);
    w.end_object();
    w.begin_object_field("server_quantiles");
    w.begin_object_field("latency_us");
    for k in ["count", "p50", "p90", "p99", "max"] {
        w.field_u64(k, hist_field(run_lat, k));
    }
    w.end_object();
    w.begin_object_field("queue_wait_us");
    for k in ["count", "p50", "p90", "p99", "max"] {
        w.field_u64(k, hist_field(queue_wait, k));
    }
    w.end_object();
    w.end_object();
    w.field_raw("server", server_stats.trim());
    w.end_object();
    let json = w.finish() + "\n";
    // Self-check before anything is written: a drifting field fails here,
    // not in the CI schema job.
    validate_serve_bench(&json).expect("servebench output failed its own schema");
    print!("{json}");
    if let Some(p) = out {
        std::fs::write(&p, &json).unwrap_or_else(|e| panic!("--out {p}: {e}"));
        eprintln!("servebench: wrote {p}");
    }
    eprintln!(
        "servebench: {clients} clients x {reps} reps in {:.1}ms  \
         (ok {ok}, errors {errors}, busy {busy}, hit rate {:.1}%)",
        wall.as_secs_f64() * 1e3,
        hit_rate * 100.0
    );
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
