//! Regenerates **Table 1**: loads and stores that are provably typed,
//! per benchmark, using DSA's speculative type checking.
//!
//! ```text
//! cargo run -p lpat-bench --release --bin table1 [-- --scale N]
//!     [--field-insensitive]   ablation: disable field sensitivity
//!     [--no-mem2reg]          ablation: skip SSA construction first
//! ```

use lpat_analysis::{CallGraph, Dsa, DsaOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let field_sensitive = !args.iter().any(|a| a == "--field-insensitive");
    let mem2reg = !args.iter().any(|a| a == "--no-mem2reg");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u32);

    println!("Table 1: Loads and Stores which are provably typed");
    println!("(scale={scale}, field-sensitive={field_sensitive}, mem2reg={mem2reg})\n");
    println!(
        "{:<14} {:>8} {:>9} {:>9}   {:>9}",
        "Benchmark", "Typed", "Untyped", "Typed %", "paper %"
    );
    let mut pct_sum = 0.0;
    let mut paper_sum = 0.0;
    let n = lpat_workloads::suite(scale).len();
    for w in lpat_workloads::suite(scale) {
        let mut m = lpat_minic::compile(w.name, &w.source).expect("suite compiles");
        if mem2reg {
            lpat_transform::function_pipeline().run(&mut m);
        }
        let cg = CallGraph::build(&m);
        let opts = DsaOptions {
            field_sensitive,
            ..DsaOptions::default()
        };
        let dsa = Dsa::analyze(&m, &cg, &opts);
        let s = dsa.access_stats();
        pct_sum += s.percent();
        paper_sum += w.paper_typed_percent;
        println!(
            "{:<14} {:>8} {:>9} {:>8.1}%   {:>8.1}%",
            w.name,
            s.typed,
            s.untyped,
            s.percent(),
            w.paper_typed_percent
        );
    }
    println!(
        "{:<14} {:>8} {:>9} {:>8.1}%   {:>8.1}%",
        "average",
        "",
        "",
        pct_sum / n as f64,
        paper_sum / n as f64
    );
}
