//! # lpat-minic — the miniC front-end
//!
//! A C-like source language and front-end standing in for the paper's
//! C/C++ front-ends (§3.2). miniC has structs, pointers, arrays, function
//! pointers (`fn<ret(args)>`), allocation sugar (`new`/`delete` →
//! `malloc`/`free`), and structured exception handling (`try`/`catch`/
//! `throw`) lowered onto the `invoke`/`unwind` primitives (§2.4).
//!
//! Per the front-end contract, miniC does **not** construct SSA: locals
//! become `alloca`s, and the optimizer's scalar-expansion and
//! stack-promotion passes build SSA afterwards.
//!
//! # Examples
//!
//! ```
//! let m = lpat_minic::compile("demo", "
//! int fib(int n) {
//!     if (n < 2) return n;
//!     return fib(n - 1) + fib(n - 2);
//! }
//! int main() { return fib(10); }
//! ").unwrap();
//! m.verify().unwrap();
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod irgen;
pub mod lexer;
pub mod parser;

use lpat_core::Module;

/// A front-end failure: parse or semantic error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line.
    pub line: u32,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compile miniC source text into a module.
///
/// # Errors
///
/// Returns the first parse or semantic error.
pub fn compile(name: &str, src: &str) -> Result<Module, CompileError> {
    let prog = parser::parse(src).map_err(|e| CompileError {
        line: e.line,
        message: e.message,
    })?;
    irgen::irgen(name, &prog).map_err(|e| CompileError {
        line: e.line,
        message: e.message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_vm::{Vm, VmOptions};

    fn run(src: &str) -> i64 {
        run_io(src, &[]).0
    }

    fn run_io(src: &str, input: &[i64]) -> (i64, String) {
        let m = compile("t", src).unwrap_or_else(|e| panic!("compile: {e}"));
        m.verify()
            .unwrap_or_else(|e| panic!("verify: {e:?}\n{}", m.display()));
        let opts = VmOptions {
            input: input.iter().copied().collect(),
            ..VmOptions::default()
        };
        let mut vm = Vm::new(&m, opts).unwrap();
        let r = vm
            .run_main()
            .unwrap_or_else(|e| panic!("run: {e}\n{}", m.display()));
        (r, vm.output.clone())
    }

    #[test]
    fn arithmetic_and_locals() {
        assert_eq!(
            run("int main() { int x = 6; int y = 7; return x * y; }"),
            42
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            run("
int main() {
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) s = s + i;
    }
    while (s > 20) s = s - 1;
    return s;
}"),
            20
        );
    }

    #[test]
    fn recursion_and_calls() {
        assert_eq!(
            run("
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }"),
            144
        );
    }

    #[test]
    fn structs_pointers_new_delete() {
        assert_eq!(
            run("
struct point { int x; int y; };
int main() {
    struct point* p = new struct point;
    p->x = 40;
    p->y = 2;
    int s = p->x + p->y;
    delete p;
    return s;
}"),
            42
        );
    }

    #[test]
    fn linked_list() {
        assert_eq!(
            run("
struct node { int value; struct node* next; };
struct node* push(struct node* head, int v) {
    struct node* n = new struct node;
    n->value = v;
    n->next = head;
    return n;
}
int sum(struct node* head) {
    int s = 0;
    while (head != null) {
        s = s + head->value;
        head = head->next;
    }
    return s;
}
int main() {
    struct node* l = null;
    for (int i = 1; i <= 10; i = i + 1) l = push(l, i);
    return sum(l);
}"),
            55
        );
    }

    #[test]
    fn arrays_and_pointer_arithmetic() {
        assert_eq!(
            run("
int main() {
    int a[8];
    for (int i = 0; i < 8; i = i + 1) a[i] = i * i;
    int* p = &a[0];
    int s = *(p + 3) + a[4];
    return s;
}"),
            25
        );
    }

    #[test]
    fn function_pointers() {
        assert_eq!(
            run("
int dbl(int x) { return x * 2; }
int inc(int x) { return x + 1; }
int apply(fn<int(int)> f, int x) { return f(x); }
int main() {
    fn<int(int)> ops[2];
    ops[0] = dbl;
    ops[1] = inc;
    return apply(ops[0], 20) + apply(ops[1], 1);
}"),
            42
        );
    }

    #[test]
    fn short_circuit_and_ternary() {
        assert_eq!(
            run("
int boom() { return 1 / 0; }
int main() {
    int x = 5;
    bool safe = x == 0 && boom() == 1;
    int v = safe ? 1 : (x > 3 || boom() == 2) ? 42 : 0;
    return v;
}"),
            42
        );
    }

    #[test]
    fn try_catch_local_throw() {
        assert_eq!(
            run("
int main() {
    int v = 0;
    try {
        v = 1;
        throw;
    } catch {
        v = v + 41;
    }
    return v;
}"),
            42
        );
    }

    #[test]
    fn try_catch_across_calls() {
        assert_eq!(
            run("
void may_throw(int x) {
    if (x > 3) throw;
}
int main() {
    int caught = 0;
    try {
        may_throw(1);
        may_throw(10);
        return 0;
    } catch {
        caught = 1;
    }
    return caught * 42;
}"),
            42
        );
    }

    #[test]
    fn casts_and_custom_allocator_idiom() {
        // The SPEC-parser-style pool allocator: carve typed objects out of
        // a byte array.
        assert_eq!(
            run("
char* pool;
int used;
char* pool_alloc(int size) {
    char* p = pool + used;
    used = used + ((size + 7) / 8) * 8;
    return p;
}
struct pair { int a; int b; };
int main() {
    pool = new char[4096];
    used = 0;
    struct pair* p = (struct pair*)pool_alloc(sizeof(struct pair));
    p->a = 2;
    p->b = 40;
    return p->a + p->b;
}"),
            42
        );
    }

    #[test]
    fn globals_strings_io() {
        let (r, out) = run_io(
            "
extern int puts(char* s);
extern void print_int(int v);
extern int read_int();
int counter = 3;
int main() {
    puts(\"hello\");
    int v = read_int();
    print_int(v + counter);
    return 0;
}",
            &[39],
        );
        assert_eq!(r, 0);
        assert_eq!(out, "hello\n42\n");
    }

    #[test]
    fn doubles_and_conversions() {
        assert_eq!(
            run("
int main() {
    double x = 2.5;
    double y = x * 4.0 + 1;
    int i = (int)y;
    return i * 2 - (int)1.9;
}"),
            21
        );
    }

    #[test]
    fn optimizer_pipeline_runs_clean_on_minic_output() {
        let m = compile(
            "t",
            "
static int square(int x) { return x * x; }
int main() {
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) s = s + square(i);
    return s;
}",
        )
        .unwrap();
        m.verify().unwrap();
        let mut m = m;
        let mut pm = lpat_transform::function_pipeline();
        pm.verify_each = true;
        pm.run(&mut m);
        let mut pm = lpat_transform::link_time_pipeline();
        pm.verify_each = true;
        pm.run(&mut m);
        // Allocas promoted and square inlined.
        let text = m.display();
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("call"), "{text}");
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm.run_main().unwrap(), 285);
    }

    #[test]
    fn error_messages_carry_lines() {
        let e = compile("t", "int main() {\n  return nope;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nope"));
        let e = compile("t", "int main() {\n  int* p = 5;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn break_continue() {
        assert_eq!(
            run("
int main() {
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) {
        if (i % 2 == 1) continue;
        if (i >= 10) break;
        s = s + i;
    }
    return s;
}"),
            20
        );
    }
}

#[cfg(test)]
mod negative_tests {
    use super::compile;

    #[test]
    fn arity_mismatch() {
        let e = compile(
            "t",
            "int f(int a) { return a; }\nint main() { return f(1, 2); }",
        )
        .unwrap_err();
        assert!(e.message.contains("argument"), "{e}");
    }

    #[test]
    fn unknown_struct_field() {
        let e = compile(
            "t",
            "struct p { int x; };\nint main() { struct p v; v.x = 1; return v.y; }",
        )
        .unwrap_err();
        assert!(e.message.contains("no field 'y'"), "{e}");
    }

    #[test]
    fn break_outside_loop() {
        let e = compile("t", "int main() { break; }").unwrap_err();
        assert!(e.message.contains("break"), "{e}");
    }

    #[test]
    fn implicit_pointer_conversion_rejected() {
        let e = compile("t", "int main() { int x = 0; char* p = &x; return 0; }").unwrap_err();
        assert!(e.message.contains("cast"), "{e}");
    }

    #[test]
    fn struct_value_in_scalar_context() {
        let e = compile(
            "t",
            "struct p { int x; };\nint main() { struct p v; return v; }",
        )
        .unwrap_err();
        assert!(e.message.contains("struct value"), "{e}");
    }

    #[test]
    fn call_of_non_function() {
        let e = compile("t", "int main() { int x = 3; return x(1); }").unwrap_err();
        assert!(e.message.contains("non-function"), "{e}");
    }

    #[test]
    fn explicit_pointer_casts_allowed() {
        // The rejection above must not block the C idiom with a cast.
        let m = compile(
            "t",
            "int main() { int x = 65; char* p = (char*)&x; return (int)*p; }",
        )
        .unwrap();
        m.verify().unwrap();
    }

    #[test]
    fn undefined_function_call() {
        let e = compile("t", "int main() { return mystery(); }").unwrap_err();
        assert!(e.message.contains("mystery"), "{e}");
    }
}

#[cfg(test)]
mod regression_tests {
    use super::compile;
    use lpat_vm::{Vm, VmOptions};

    #[test]
    fn index_base_side_effects_evaluate_once() {
        // Regression: the lvalue trial for `m[i = i + 1][0]` used to
        // evaluate the inner assignment twice.
        let m = compile(
            "t",
            "
int main() {
    int row0[2];
    int row1[2];
    int* m[2];
    m[0] = &row0[0];
    m[1] = &row1[0];
    row1[0] = 42;
    int i = 0;
    int v = m[i = i + 1][0];
    return v + i * 100;   // expect 42 + 100, not i == 2
}",
        )
        .unwrap();
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm.run_main().unwrap(), 142);
    }
}
