//! Abstract syntax of miniC.
//!
//! miniC is the front-end substrate standing in for the paper's C/C++
//! front-ends: a small C-like language with structs, pointers, arrays,
//! function pointers, allocation sugar (`new`/`delete`), and structured
//! exception handling (`try`/`catch`/`throw`) that lowers to the
//! `invoke`/`unwind` model exactly as §2.4 describes.

/// Source-level types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// `void`.
    Void,
    /// `bool`.
    Bool,
    /// `char` — signed 8-bit.
    Char,
    /// `int` — signed 32-bit.
    Int,
    /// `uint` — unsigned 32-bit.
    Uint,
    /// `long` — signed 64-bit.
    Long,
    /// `ulong` — unsigned 64-bit.
    Ulong,
    /// `float` — 32-bit.
    Float,
    /// `double` — 64-bit.
    Double,
    /// `T*`.
    Ptr(Box<CType>),
    /// `T[N]` (only in declarators).
    Array(Box<CType>, u64),
    /// `struct Name`.
    Struct(String),
    /// `fn<ret(params)>` — pointer to function.
    FnPtr {
        /// Return type.
        ret: Box<CType>,
        /// Parameter types.
        params: Vec<CType>,
    },
}

impl CType {
    /// Is this any integer type?
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            CType::Char | CType::Int | CType::Uint | CType::Long | CType::Ulong
        )
    }
    /// Is this a floating type?
    pub fn is_float(&self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }
    /// Is this a pointer (including function pointers)?
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::FnPtr { .. })
    }
}

/// Binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Expressions, annotated with their source line for diagnostics.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Node.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression nodes.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal (type `int`, or `long` with an `L` suffix).
    IntLit(i64, bool),
    /// Floating literal (`double`, or `float` with `f` suffix).
    FloatLit(f64, bool),
    /// `true` / `false`.
    BoolLit(bool),
    /// Character literal (type `char`).
    CharLit(u8),
    /// String literal: a global `[N x sbyte]`, decaying to `char*`.
    StrLit(Vec<u8>),
    /// `null`.
    Null,
    /// Identifier: local, global, or function name.
    Ident(String),
    /// Binary operation.
    Bin(BinOpKind, Box<Expr>, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e`.
    Not(Box<Expr>),
    /// Dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e` (lvalues only).
    Addr(Box<Expr>),
    /// Explicit cast `(T)e`.
    Cast(CType, Box<Expr>),
    /// `sizeof(T)` — type `uint`.
    SizeOf(CType),
    /// Call `f(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Index `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member `s.f` (struct lvalue).
    Member(Box<Expr>, String),
    /// Arrow `p->f`.
    Arrow(Box<Expr>, String),
    /// Assignment `lhs = rhs` (an expression; yields rhs).
    Assign(Box<Expr>, Box<Expr>),
    /// Ternary `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `new T` / `new T[n]`.
    New(CType, Option<Box<Expr>>),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration with optional initializer.
    Decl(CType, String, Option<Expr>),
    /// `if`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while`.
    While(Expr, Vec<Stmt>),
    /// `for(init; cond; step) body`.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Vec<Stmt>),
    /// `try { } catch { }`.
    TryCatch(Vec<Stmt>, Vec<Stmt>),
    /// `throw;`
    Throw,
    /// `delete e;`
    Delete(Expr),
}

/// A struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<(CType, String)>,
}

/// A function definition or `extern` declaration.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<(CType, String)>,
    /// Body (`None` for `extern`).
    pub body: Option<Vec<Stmt>>,
    /// Marked `static` (internal linkage).
    pub is_static: bool,
}

/// A global variable.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: CType,
    /// Initializer (constant expression), `None` for `extern`.
    pub init: Option<Expr>,
    /// Is an `extern` declaration.
    pub is_extern: bool,
    /// Marked `static`.
    pub is_static: bool,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Globals.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}
