//! miniC → IR lowering.
//!
//! Follows the front-end contract of paper §3.2: translate source
//! constructs to the representation, synthesizing as much type information
//! as possible (structs, pointers, arrays reach the IR intact); do *not*
//! build SSA — mutable locals become `alloca`s, and the stack-promotion /
//! scalar-expansion passes construct SSA afterwards. `try`/`catch`/`throw`
//! lower to `invoke`/`unwind` per §2.4: calls inside a `try` become
//! invokes, and a `throw` lexically inside a `try` becomes a direct branch
//! to the handler.

use std::collections::HashMap;

use lpat_core::{
    BinOp, BlockId, CmpPred, ConstId, FuncBuilder, FuncId, GlobalId, Inst, Linkage, Module, TypeId,
    Value,
};

use crate::ast::*;

/// A semantic error with source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemError {
    /// 1-based line (0 when unknown).
    pub line: u32,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for SemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SemError {}

type GResult<T> = Result<T, SemError>;

/// Lower a parsed program to a module named `name`.
///
/// # Errors
///
/// Reports unknown identifiers, type mismatches, arity errors, and other
/// semantic faults with their source lines.
pub fn irgen(name: &str, prog: &Program) -> GResult<Module> {
    let mut m = Module::new(name);
    let mut cx = Cx {
        structs: HashMap::new(),
        struct_fields: HashMap::new(),
        funcs: HashMap::new(),
        func_sigs: HashMap::new(),
        globals: HashMap::new(),
        global_tys: HashMap::new(),
        strings: HashMap::new(),
    };
    // Struct types (two-phase for recursion).
    for s in &prog.structs {
        let id = m.types.named_struct(&format!("struct.{}", s.name));
        cx.structs.insert(s.name.clone(), id);
    }
    for s in &prog.structs {
        let id = cx.structs[&s.name];
        let fields: GResult<Vec<TypeId>> = s
            .fields
            .iter()
            .map(|(t, _)| cx.ty_of(&mut m, t, 0))
            .collect();
        m.types.set_struct_body(id, fields?);
        cx.struct_fields.insert(
            s.name.clone(),
            s.fields
                .iter()
                .enumerate()
                .map(|(i, (t, n))| (n.clone(), (i, t.clone())))
                .collect(),
        );
    }
    // Globals.
    for g in &prog.globals {
        let ty = cx.ty_of(&mut m, &g.ty, 0)?;
        let init = if g.is_extern {
            None
        } else {
            Some(cx.global_init(&mut m, &g.ty, ty, g.init.as_ref())?)
        };
        let linkage = if g.is_static {
            Linkage::Internal
        } else {
            Linkage::External
        };
        let gid = m.add_global(&g.name, ty, init, false, linkage);
        cx.globals.insert(g.name.clone(), gid);
        cx.global_tys.insert(g.name.clone(), g.ty.clone());
    }
    // Function signatures.
    for f in &prog.funcs {
        let params: GResult<Vec<TypeId>> = f
            .params
            .iter()
            .map(|(t, _)| cx.ty_of(&mut m, &decay(t), 0))
            .collect();
        let ret = cx.ty_of(&mut m, &f.ret, 0)?;
        let linkage = if f.is_static {
            Linkage::Internal
        } else {
            Linkage::External
        };
        let fid = m.add_function(&f.name, &params?, ret, false, linkage);
        cx.funcs.insert(f.name.clone(), fid);
        cx.func_sigs.insert(
            f.name.clone(),
            (
                f.ret.clone(),
                f.params.iter().map(|(t, _)| decay(t)).collect(),
            ),
        );
    }
    // Bodies.
    for f in &prog.funcs {
        if let Some(body) = &f.body {
            gen_func(&mut m, &mut cx, f, body)?;
        }
    }
    Ok(m)
}

/// Array-to-pointer decay for parameter types.
fn decay(t: &CType) -> CType {
    match t {
        CType::Array(e, _) => CType::Ptr(e.clone()),
        other => other.clone(),
    }
}

/// Shared name environment.
struct Cx {
    structs: HashMap<String, TypeId>,
    struct_fields: HashMap<String, HashMap<String, (usize, CType)>>,
    funcs: HashMap<String, FuncId>,
    func_sigs: HashMap<String, (CType, Vec<CType>)>,
    globals: HashMap<String, GlobalId>,
    global_tys: HashMap<String, CType>,
    strings: HashMap<Vec<u8>, GlobalId>,
}

impl Cx {
    fn ty_of(&self, m: &mut Module, t: &CType, line: u32) -> GResult<TypeId> {
        Ok(match t {
            CType::Void => m.types.void(),
            CType::Bool => m.types.bool_(),
            CType::Char => m.types.i8(),
            CType::Int => m.types.i32(),
            CType::Uint => m.types.u32(),
            CType::Long => m.types.i64(),
            CType::Ulong => m.types.u64(),
            CType::Float => m.types.f32(),
            CType::Double => m.types.f64(),
            CType::Ptr(p) => {
                let pt = self.ty_of(m, p, line)?;
                m.types.ptr(pt)
            }
            CType::Array(e, n) => {
                let et = self.ty_of(m, e, line)?;
                m.types.array(et, *n)
            }
            CType::Struct(name) => *self.structs.get(name).ok_or_else(|| SemError {
                line,
                message: format!("unknown struct '{name}'"),
            })?,
            CType::FnPtr { ret, params } => {
                let r = self.ty_of(m, ret, line)?;
                let ps: GResult<Vec<TypeId>> =
                    params.iter().map(|p| self.ty_of(m, p, line)).collect();
                let ft = m.types.func(r, ps?, false);
                m.types.ptr(ft)
            }
        })
    }

    fn global_init(
        &mut self,
        m: &mut Module,
        ct: &CType,
        ty: TypeId,
        init: Option<&Expr>,
    ) -> GResult<ConstId> {
        match init {
            None => Ok(m.consts.zero(ty)),
            Some(e) => self.const_expr(m, ct, ty, e),
        }
    }

    fn const_expr(&mut self, m: &mut Module, ct: &CType, ty: TypeId, e: &Expr) -> GResult<ConstId> {
        let bad = |line: u32| SemError {
            line,
            message: "unsupported constant initializer".into(),
        };
        Ok(match (&e.kind, ct) {
            (ExprKind::IntLit(v, _), t) if t.is_integer() => {
                let kind = m.types.int_kind(ty).ok_or_else(|| bad(e.line))?;
                m.consts.int(kind, *v)
            }
            (ExprKind::CharLit(c), CType::Char) => m.consts.int(lpat_core::IntKind::S8, *c as i64),
            (ExprKind::FloatLit(v, _), CType::Float) => m.consts.f32(*v as f32),
            (ExprKind::FloatLit(v, _), CType::Double) => m.consts.f64(*v),
            (ExprKind::IntLit(v, _), CType::Float) => m.consts.f32(*v as f32),
            (ExprKind::IntLit(v, _), CType::Double) => m.consts.f64(*v as f64),
            (ExprKind::BoolLit(b), CType::Bool) => m.consts.bool_(*b),
            (ExprKind::Null, _) => m.consts.null(ty),
            (ExprKind::Neg(inner), t) if t.is_integer() => {
                if let ExprKind::IntLit(v, _) = inner.kind {
                    let kind = m.types.int_kind(ty).ok_or_else(|| bad(e.line))?;
                    m.consts.int(kind, -v)
                } else {
                    return Err(bad(e.line));
                }
            }
            (ExprKind::StrLit(s), CType::Ptr(_)) => {
                let g = self.intern_string(m, s);
                // Address of element 0: we fold this to the global address;
                // loads through it reach the bytes either way.
                m.consts.global_addr(g)
            }
            (ExprKind::Ident(n), CType::FnPtr { .. }) => {
                let f = *self.funcs.get(n).ok_or_else(|| bad(e.line))?;
                m.consts.func_addr(f)
            }
            _ => return Err(bad(e.line)),
        })
    }

    fn intern_string(&mut self, m: &mut Module, s: &[u8]) -> GlobalId {
        if let Some(&g) = self.strings.get(s) {
            return g;
        }
        let n = self.strings.len();
        let mut bytes = s.to_vec();
        bytes.push(0);
        let elems: Vec<ConstId> = bytes
            .iter()
            .map(|&b| m.consts.int(lpat_core::IntKind::S8, b as i64))
            .collect();
        let aty = m.types.array(m.types.i8(), bytes.len() as u64);
        let init = m.consts.array(aty, elems);
        let g = m.add_global(
            &format!(".str{n}"),
            aty,
            Some(init),
            true,
            Linkage::Internal,
        );
        self.strings.insert(s.to_vec(), g);
        g
    }

    fn field_of(&self, sname: &str, f: &str, line: u32) -> GResult<(usize, CType)> {
        self.struct_fields
            .get(sname)
            .and_then(|m| m.get(f))
            .cloned()
            .ok_or_else(|| SemError {
                line,
                message: format!("struct '{sname}' has no field '{f}'"),
            })
    }
}

// ----------------------------------------------------------------------
// Function body generation
// ----------------------------------------------------------------------

struct FuncGen<'a, 'm> {
    cx: &'a mut Cx,
    b: FuncBuilder<'m>,
    scopes: Vec<HashMap<String, (Value, CType)>>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
    /// Innermost enclosing `catch` target.
    try_stack: Vec<BlockId>,
    ret: CType,
    terminated: bool,
}

fn gen_func(m: &mut Module, cx: &mut Cx, f: &FuncDef, body: &[Stmt]) -> GResult<()> {
    let fid = cx.funcs[&f.name];
    let ret = f.ret.clone();
    let mut g = FuncGen {
        cx,
        b: m.builder(fid),
        scopes: vec![HashMap::new()],
        breaks: Vec::new(),
        continues: Vec::new(),
        try_stack: Vec::new(),
        ret,
        terminated: false,
    };
    g.b.block();
    // Parameters: spill to allocas so they are mutable lvalues.
    for (i, (t, n)) in f.params.iter().enumerate() {
        let ct = decay(t);
        let ty = g.cx.ty_of(g.b.module(), &ct, 0)?;
        let slot = g.b.alloca(ty);
        g.b.store(Value::Arg(i as u32), slot);
        g.scopes[0].insert(n.clone(), (slot, ct));
    }
    g.stmts(body)?;
    if !g.terminated {
        g.emit_default_return()?;
    }
    Ok(())
}

impl<'a, 'm> FuncGen<'a, 'm> {
    fn err<T>(&self, line: u32, m: impl Into<String>) -> GResult<T> {
        Err(SemError {
            line,
            message: m.into(),
        })
    }

    fn ty_of(&mut self, t: &CType, line: u32) -> GResult<TypeId> {
        self.cx.ty_of(self.b.module(), t, line)
    }

    /// Make sure there is an insertable block (after a terminator,
    /// trailing statements land in a fresh unreachable block).
    fn ensure_block(&mut self) {
        if self.terminated {
            self.b.block();
            self.terminated = false;
        }
    }

    fn emit_default_return(&mut self) -> GResult<()> {
        match self.ret.clone() {
            CType::Void => self.b.ret(None),
            t => {
                let ty = self.ty_of(&t, 0)?;
                let u = Value::Const(self.b.module().consts.undef(ty));
                self.b.ret(Some(u));
            }
        }
        self.terminated = true;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<(Value, CType)> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    // ---- statements ----------------------------------------------------

    fn stmts(&mut self, list: &[Stmt]) -> GResult<()> {
        self.scopes.push(HashMap::new());
        for s in list {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> GResult<()> {
        match s {
            Stmt::Expr(e) => {
                self.ensure_block();
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Decl(t, name, init) => {
                self.ensure_block();
                let ty = self.ty_of(t, 0)?;
                let slot = self.b.alloca(ty);
                if let Some(e) = init {
                    let (v, vt) = self.rvalue(e)?;
                    let v = self.convert(v, &vt, t, e.line)?;
                    self.b.store(v, slot);
                }
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), (slot, t.clone()));
                Ok(())
            }
            Stmt::Block(inner) => self.stmts(inner),
            Stmt::If(c, then, els) => {
                self.ensure_block();
                let cond = self.truthy(c)?;
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(cond, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.terminated = false;
                self.stmts(then)?;
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(else_bb);
                self.terminated = false;
                self.stmts(els)?;
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                self.terminated = false;
                Ok(())
            }
            Stmt::While(c, body) => {
                self.ensure_block();
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                self.terminated = false;
                let cond = self.truthy(c)?;
                self.b.cond_br(cond, body_bb, exit);
                self.b.switch_to(body_bb);
                self.terminated = false;
                self.breaks.push(exit);
                self.continues.push(header);
                self.stmts(body)?;
                self.breaks.pop();
                self.continues.pop();
                if !self.terminated {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
                self.terminated = false;
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.ensure_block();
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to(header);
                self.terminated = false;
                match cond {
                    Some(c) => {
                        let cv = self.truthy(c)?;
                        self.b.cond_br(cv, body_bb, exit);
                    }
                    None => self.b.br(body_bb),
                }
                self.b.switch_to(body_bb);
                self.terminated = false;
                self.breaks.push(exit);
                self.continues.push(step_bb);
                self.stmts(body)?;
                self.breaks.pop();
                self.continues.pop();
                if !self.terminated {
                    self.b.br(step_bb);
                }
                self.b.switch_to(step_bb);
                self.terminated = false;
                if let Some(e) = step {
                    self.rvalue(e)?;
                }
                self.b.br(header);
                self.b.switch_to(exit);
                self.terminated = false;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e) => {
                self.ensure_block();
                match e {
                    None => self.b.ret(None),
                    Some(e) => {
                        let (v, vt) = self.rvalue(e)?;
                        let rt = self.ret.clone();
                        let v = self.convert(v, &vt, &rt, e.line)?;
                        self.b.ret(Some(v));
                    }
                }
                self.terminated = true;
                Ok(())
            }
            Stmt::Break => {
                self.ensure_block();
                match self.breaks.last() {
                    Some(&b) => {
                        self.b.br(b);
                        self.terminated = true;
                        Ok(())
                    }
                    None => self.err(0, "break outside a loop"),
                }
            }
            Stmt::Continue => {
                self.ensure_block();
                match self.continues.last() {
                    Some(&b) => {
                        self.b.br(b);
                        self.terminated = true;
                        Ok(())
                    }
                    None => self.err(0, "continue outside a loop"),
                }
            }
            Stmt::Throw => {
                self.ensure_block();
                // A throw lexically inside a try in the same function is a
                // direct branch to the handler (paper §2.4); otherwise it
                // unwinds the stack.
                match self.try_stack.last() {
                    Some(&catch_bb) => self.b.br(catch_bb),
                    None => self.b.unwind(),
                }
                self.terminated = true;
                Ok(())
            }
            Stmt::TryCatch(body, handler) => {
                self.ensure_block();
                let catch_bb = self.b.new_block();
                let join = self.b.new_block();
                self.try_stack.push(catch_bb);
                self.stmts(body)?;
                self.try_stack.pop();
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(catch_bb);
                self.terminated = false;
                self.stmts(handler)?;
                if !self.terminated {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                self.terminated = false;
                Ok(())
            }
            Stmt::Delete(e) => {
                self.ensure_block();
                let (v, t) = self.rvalue(e)?;
                if !t.is_pointer() {
                    return self.err(e.line, "delete of non-pointer");
                }
                self.b.free(v);
                Ok(())
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    /// Evaluate to a truth value (`bool`).
    fn truthy(&mut self, e: &Expr) -> GResult<Value> {
        let (v, t) = self.rvalue(e)?;
        self.coerce_bool(v, &t, e.line)
    }

    fn coerce_bool(&mut self, v: Value, t: &CType, line: u32) -> GResult<Value> {
        Ok(match t {
            CType::Bool => v,
            t if t.is_integer() => {
                let ty = self.ty_of(t, line)?;
                let kind = self.b.module().types.int_kind(ty).expect("integer");
                let zero = self.b.iconst(kind, 0);
                self.b.cmp(CmpPred::Ne, v, zero)
            }
            t if t.is_float() => {
                let zero = if matches!(t, CType::Float) {
                    self.b.fconst32(0.0)
                } else {
                    self.b.fconst64(0.0)
                };
                self.b.cmp(CmpPred::Ne, v, zero)
            }
            CType::Ptr(p) => {
                let pt = self.ty_of(p, line)?;
                let null = self.b.null_ptr(pt);
                self.b.cmp(CmpPred::Ne, v, null)
            }
            CType::FnPtr { .. } => {
                let fty = self.ty_of(t, line)?;
                let inner = self.b.module().types.pointee(fty).expect("fn ptr");
                let null = self.b.null_ptr(inner);
                self.b.cmp(CmpPred::Ne, v, null)
            }
            other => return self.err(line, format!("no truth value for {other:?}")),
        })
    }

    /// Evaluate an lvalue to `(address, pointee type)`.
    fn lvalue(&mut self, e: &Expr) -> GResult<(Value, CType)> {
        match &e.kind {
            ExprKind::Ident(n) => {
                if let Some(v) = self.lookup(n) {
                    return Ok(v);
                }
                if let Some(&g) = self.cx.globals.get(n) {
                    let t = self.cx.global_tys[n].clone();
                    let addr = self.b.global_addr(g);
                    return Ok((addr, t));
                }
                self.err(e.line, format!("unknown variable '{n}'"))
            }
            ExprKind::Deref(p) => {
                let (v, t) = self.rvalue(p)?;
                match t {
                    CType::Ptr(inner) => Ok((v, *inner)),
                    other => self.err(e.line, format!("cannot dereference {other:?}")),
                }
            }
            ExprKind::Index(a, i) => {
                let (iv, it) = self.rvalue(i)?;
                if !it.is_integer() {
                    return self.err(i.line, "array index must be an integer");
                }
                // Arrays index in place; pointers index through the value.
                // Lvalue-shaped bases are evaluated exactly once as an
                // lvalue (evaluating twice would duplicate side effects of
                // nested index expressions); value-shaped bases (calls,
                // casts, arithmetic) evaluate as rvalues.
                if let ExprKind::Ident(_)
                | ExprKind::Member(..)
                | ExprKind::Arrow(..)
                | ExprKind::Index(..)
                | ExprKind::Deref(_) = &a.kind
                {
                    let (addr, at) = self.lvalue(a)?;
                    return match at {
                        CType::Array(elem, _) => {
                            let zero = self.b.iconst64(0);
                            let p = self.b.gep(addr, vec![zero, iv]);
                            Ok((p, *elem))
                        }
                        CType::Ptr(elem) => {
                            let pv = self.b.load(addr);
                            let p = self.b.gep_index(pv, iv);
                            Ok((p, *elem))
                        }
                        other => self.err(e.line, format!("cannot index {other:?}")),
                    };
                }
                let (pv, pt) = self.rvalue(a)?;
                match pt {
                    CType::Ptr(elem) => {
                        let p = self.b.gep_index(pv, iv);
                        Ok((p, *elem))
                    }
                    other => self.err(e.line, format!("cannot index {other:?}")),
                }
            }
            ExprKind::Member(s, f) => {
                let (addr, st) = self.lvalue(s)?;
                match st {
                    CType::Struct(name) => {
                        let (idx, fty) = self.cx.field_of(&name, f, e.line)?;
                        let p = self.b.gep_field(addr, idx as u8);
                        Ok((p, fty))
                    }
                    other => self.err(e.line, format!(". on non-struct {other:?}")),
                }
            }
            ExprKind::Arrow(p, f) => {
                let (pv, pt) = self.rvalue(p)?;
                match pt {
                    CType::Ptr(inner) => match *inner {
                        CType::Struct(name) => {
                            let (idx, fty) = self.cx.field_of(&name, f, e.line)?;
                            let fp = self.b.gep_field(pv, idx as u8);
                            Ok((fp, fty))
                        }
                        other => self.err(e.line, format!("-> on non-struct {other:?}")),
                    },
                    other => self.err(e.line, format!("-> on non-pointer {other:?}")),
                }
            }
            _ => self.err(e.line, "expression is not an lvalue"),
        }
    }

    /// Evaluate to a value; arrays decay to element pointers.
    fn rvalue(&mut self, e: &Expr) -> GResult<(Value, CType)> {
        match &e.kind {
            ExprKind::IntLit(v, long) => {
                if *long {
                    Ok((self.b.iconst64(*v), CType::Long))
                } else {
                    Ok((self.b.iconst32(*v as i32), CType::Int))
                }
            }
            ExprKind::FloatLit(v, f32_) => {
                if *f32_ {
                    Ok((self.b.fconst32(*v as f32), CType::Float))
                } else {
                    Ok((self.b.fconst64(*v), CType::Double))
                }
            }
            ExprKind::BoolLit(b) => Ok((self.b.bconst(*b), CType::Bool)),
            ExprKind::CharLit(c) => Ok((
                self.b.iconst(lpat_core::IntKind::S8, *c as i64),
                CType::Char,
            )),
            ExprKind::Null => {
                let t = self.ty_of(&CType::Char, e.line)?;
                Ok((self.b.null_ptr(t), CType::Ptr(Box::new(CType::Char))))
            }
            ExprKind::StrLit(s) => {
                let g = self.cx.intern_string(self.b.module(), s);
                let addr = self.b.global_addr(g);
                let zero = self.b.iconst64(0);
                let p = self.b.gep(addr, vec![zero, zero]);
                Ok((p, CType::Ptr(Box::new(CType::Char))))
            }
            ExprKind::SizeOf(t) => {
                let ty = self.ty_of(t, e.line)?;
                let size = self.b.module().types.size_of(ty);
                Ok((self.b.uconst32(size as u32), CType::Uint))
            }
            ExprKind::Ident(n) => {
                // Function name: a function-pointer value.
                if self.lookup(n).is_none() && !self.cx.globals.contains_key(n) {
                    if let Some(&f) = self.cx.funcs.get(n) {
                        let (ret, params) = self.cx.func_sigs[n].clone();
                        let v = self.b.func_addr(f);
                        return Ok((
                            v,
                            CType::FnPtr {
                                ret: Box::new(ret),
                                params,
                            },
                        ));
                    }
                }
                let (addr, t) = self.lvalue(e)?;
                self.load_decayed(addr, t, e.line)
            }
            ExprKind::Member(..)
            | ExprKind::Arrow(..)
            | ExprKind::Index(..)
            | ExprKind::Deref(_) => {
                let (addr, t) = self.lvalue(e)?;
                self.load_decayed(addr, t, e.line)
            }
            ExprKind::Addr(inner) => {
                let (addr, t) = self.lvalue(inner)?;
                Ok((addr, CType::Ptr(Box::new(t))))
            }
            ExprKind::Assign(lhs, rhs) => {
                let (addr, lt) = self.lvalue(lhs)?;
                let (v, rt) = self.rvalue(rhs)?;
                let v = self.convert(v, &rt, &lt, e.line)?;
                self.b.store(v, addr);
                Ok((v, lt))
            }
            ExprKind::Neg(inner) => {
                let (v, t) = self.rvalue(inner)?;
                let (v, t) = self.promote(v, &t, e.line)?;
                let zero = match &t {
                    CType::Float => self.b.fconst32(0.0),
                    CType::Double => self.b.fconst64(0.0),
                    t if t.is_integer() => {
                        let ty = self.ty_of(t, e.line)?;
                        let k = self.b.module().types.int_kind(ty).expect("int");
                        self.b.iconst(k, 0)
                    }
                    other => return self.err(e.line, format!("cannot negate {other:?}")),
                };
                Ok((self.b.sub(zero, v), t))
            }
            ExprKind::Not(inner) => {
                let v = self.truthy(inner)?;
                let t = self.b.bconst(true);
                Ok((self.b.xor(v, t), CType::Bool))
            }
            ExprKind::Cast(t, inner) => {
                let (v, from) = self.rvalue(inner)?;
                let ty = self.ty_of(t, e.line)?;
                if from == *t {
                    return Ok((v, t.clone()));
                }
                Ok((self.b.cast(v, ty), t.clone()))
            }
            ExprKind::New(t, count) => {
                let ty = self.ty_of(t, e.line)?;
                let v = match count {
                    None => self.b.malloc(ty),
                    Some(c) => {
                        let (cv, ct) = self.rvalue(c)?;
                        let cv = self.convert(cv, &ct, &CType::Uint, e.line)?;
                        self.b.malloc_n(ty, cv)
                    }
                };
                Ok((v, CType::Ptr(Box::new(t.clone()))))
            }
            ExprKind::Ternary(c, a, b) => {
                let cond = self.truthy(c)?;
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(cond, then_bb, else_bb);
                self.b.switch_to(then_bb);
                let (av, at) = self.rvalue(a)?;
                let a_end = self.b.current();
                self.b.switch_to(else_bb);
                let (bv, bt) = self.rvalue(b)?;
                let b_end = self.b.current();
                let common = self.common_type(&at, &bt, e.line)?;
                self.b.switch_to(a_end);
                let av = self.convert(av, &at, &common, e.line)?;
                self.b.br(join);
                self.b.switch_to(b_end);
                let bv = self.convert(bv, &bt, &common, e.line)?;
                self.b.br(join);
                self.b.switch_to(join);
                let ty = self.ty_of(&common, e.line)?;
                let v = self.b.phi(ty, vec![(av, a_end), (bv, b_end)]);
                Ok((v, common))
            }
            ExprKind::Bin(k, lhs, rhs) => self.gen_binop(*k, lhs, rhs, e.line),
            ExprKind::Call(callee, args) => self.gen_call(callee, args, e.line),
        }
    }

    fn load_decayed(&mut self, addr: Value, t: CType, line: u32) -> GResult<(Value, CType)> {
        match t {
            CType::Array(elem, _) => {
                let zero = self.b.iconst64(0);
                let p = self.b.gep(addr, vec![zero, zero]);
                Ok((p, CType::Ptr(elem)))
            }
            CType::Struct(_) => self.err(line, "struct value used where a scalar is expected"),
            t => {
                let v = self.b.load(addr);
                Ok((v, t))
            }
        }
    }

    /// Integer promotion: char/bool → int.
    fn promote(&mut self, v: Value, t: &CType, line: u32) -> GResult<(Value, CType)> {
        match t {
            CType::Char | CType::Bool => {
                let ty = self.ty_of(&CType::Int, line)?;
                Ok((self.b.cast(v, ty), CType::Int))
            }
            other => Ok((v, other.clone())),
        }
    }

    fn rank(t: &CType) -> i32 {
        match t {
            CType::Double => 6,
            CType::Float => 5,
            CType::Ulong => 4,
            CType::Long => 3,
            CType::Uint => 2,
            CType::Int => 1,
            _ => 0,
        }
    }

    fn common_type(&mut self, a: &CType, b: &CType, line: u32) -> GResult<CType> {
        if a == b {
            return Ok(a.clone());
        }
        if a.is_pointer() && matches!(b, CType::Ptr(_)) {
            return Ok(a.clone());
        }
        if b.is_pointer() && matches!(a, CType::Ptr(_)) {
            return Ok(b.clone());
        }
        let (pa, pb) = (
            if matches!(a, CType::Char | CType::Bool) {
                CType::Int
            } else {
                a.clone()
            },
            if matches!(b, CType::Char | CType::Bool) {
                CType::Int
            } else {
                b.clone()
            },
        );
        if !((pa.is_integer() || pa.is_float()) && (pb.is_integer() || pb.is_float())) {
            return self.err(line, format!("no common type for {a:?} and {b:?}"));
        }
        Ok(if Self::rank(&pa) >= Self::rank(&pb) {
            pa
        } else {
            pb
        })
    }

    /// Convert `v : from` to type `to`, inserting casts for numeric
    /// conversions; pointers convert implicitly only from null or between
    /// identical types.
    fn convert(&mut self, v: Value, from: &CType, to: &CType, line: u32) -> GResult<Value> {
        if from == to {
            return Ok(v);
        }
        let is_null_const = matches!(
            v,
            Value::Const(c) if matches!(self.b.module().consts.get(c), lpat_core::Const::Null(_))
        );
        if to.is_pointer() && is_null_const {
            let ty = self.ty_of(to, line)?;
            let inner = self.b.module().types.pointee(ty).expect("pointer");
            return Ok(self.b.null_ptr(inner));
        }
        let numeric = |t: &CType| t.is_integer() || t.is_float() || matches!(t, CType::Bool);
        if numeric(from) && numeric(to) {
            let ty = self.ty_of(to, line)?;
            return Ok(self.b.cast(v, ty));
        }
        self.err(
            line,
            format!("cannot implicitly convert {from:?} to {to:?} (use a cast)"),
        )
    }

    fn gen_binop(
        &mut self,
        k: BinOpKind,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> GResult<(Value, CType)> {
        // Short-circuit forms first.
        if matches!(k, BinOpKind::LAnd | BinOpKind::LOr) {
            let a = self.truthy(lhs)?;
            let a_end = self.b.current();
            let more = self.b.new_block();
            let join = self.b.new_block();
            match k {
                BinOpKind::LAnd => self.b.cond_br(a, more, join),
                _ => self.b.cond_br(a, join, more),
            }
            self.b.switch_to(more);
            let b = self.truthy(rhs)?;
            let b_end = self.b.current();
            self.b.br(join);
            self.b.switch_to(join);
            let short = self.b.bconst(matches!(k, BinOpKind::LOr));
            let ty = self.b.module().types.bool_();
            let v = self.b.phi(ty, vec![(short, a_end), (b, b_end)]);
            return Ok((v, CType::Bool));
        }
        let (av, at) = self.rvalue(lhs)?;
        let (bv, bt) = self.rvalue(rhs)?;
        // Pointer arithmetic: p + i, p - i.
        if let CType::Ptr(elem) = &at {
            if matches!(k, BinOpKind::Add | BinOpKind::Sub) && bt.is_integer() {
                let idx = if matches!(k, BinOpKind::Sub) {
                    let ty = self.ty_of(&bt, line)?;
                    let kind = self.b.module().types.int_kind(ty).expect("int");
                    let zero = self.b.iconst(kind, 0);
                    self.b.sub(zero, bv)
                } else {
                    bv
                };
                let p = self.b.gep_index(av, idx);
                return Ok((p, CType::Ptr(elem.clone())));
            }
        }
        // Comparisons.
        if let Some(pred) = match k {
            BinOpKind::Eq => Some(CmpPred::Eq),
            BinOpKind::Ne => Some(CmpPred::Ne),
            BinOpKind::Lt => Some(CmpPred::Lt),
            BinOpKind::Gt => Some(CmpPred::Gt),
            BinOpKind::Le => Some(CmpPred::Le),
            BinOpKind::Ge => Some(CmpPred::Ge),
            _ => None,
        } {
            let common = self.common_type(&at, &bt, line)?;
            let av = self.convert(av, &at, &common, line)?;
            let bv = self.convert(bv, &bt, &common, line)?;
            return Ok((self.b.cmp(pred, av, bv), CType::Bool));
        }
        // Arithmetic/bitwise.
        let common = self.common_type(&at, &bt, line)?;
        if !(common.is_integer() || common.is_float()) {
            return self.err(line, format!("arithmetic on {common:?}"));
        }
        let av = self.convert(av, &at, &common, line)?;
        let bv = self.convert(bv, &bt, &common, line)?;
        let op = match k {
            BinOpKind::Add => BinOp::Add,
            BinOpKind::Sub => BinOp::Sub,
            BinOpKind::Mul => BinOp::Mul,
            BinOpKind::Div => BinOp::Div,
            BinOpKind::Rem => BinOp::Rem,
            BinOpKind::And => BinOp::And,
            BinOpKind::Or => BinOp::Or,
            BinOpKind::Xor => BinOp::Xor,
            BinOpKind::Shl => BinOp::Shl,
            BinOpKind::Shr => BinOp::Shr,
            _ => unreachable!("handled above"),
        };
        if matches!(
            op,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        ) && !common.is_integer()
        {
            return self.err(line, "bitwise operation on non-integer");
        }
        Ok((self.b.bin(op, av, bv), common))
    }

    fn gen_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> GResult<(Value, CType)> {
        // Direct call to a known function?
        let direct = match &callee.kind {
            ExprKind::Ident(n) if self.lookup(n).is_none() && !self.cx.globals.contains_key(n) => {
                self.cx.funcs.get(n).copied().map(|f| (f, n.clone()))
            }
            _ => None,
        };
        let (callee_val, ret_t, param_ts) = match direct {
            Some((f, n)) => {
                let (ret, params) = self.cx.func_sigs[&n].clone();
                (self.b.func_addr(f), ret, params)
            }
            None => {
                let (v, t) = self.rvalue(callee)?;
                match t {
                    CType::FnPtr { ret, params } => (v, *ret, params),
                    other => return self.err(line, format!("call of non-function {other:?}")),
                }
            }
        };
        if args.len() != param_ts.len() {
            return self.err(
                line,
                format!("expected {} arguments, got {}", param_ts.len(), args.len()),
            );
        }
        let mut argv = Vec::with_capacity(args.len());
        for (a, pt) in args.iter().zip(&param_ts) {
            let (v, t) = self.rvalue(a)?;
            argv.push(self.convert(v, &t, pt, a.line)?);
        }
        // Inside a try, calls become invokes whose unwind edge is the
        // handler.
        let v = if let Some(&catch_bb) = self.try_stack.last() {
            let normal = self.b.new_block();
            let v = Value::Inst(self.b.emit(Inst::Invoke {
                callee: callee_val,
                args: argv,
                normal,
                unwind: catch_bb,
            }));
            self.b.switch_to(normal);
            v
        } else {
            self.b.call_ptr(callee_val, argv)
        };
        Ok((v, ret_t))
    }
}
