//! miniC tokenizer.

use std::fmt;

/// A miniC token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal; `true` when suffixed `L`.
    Int(i64, bool),
    /// Float literal; `true` when suffixed `f`.
    Float(f64, bool),
    /// String literal (unescaped bytes).
    Str(Vec<u8>),
    /// Character literal.
    Char(u8),
    /// Punctuation / operator, e.g. `"+"`, `"=="`, `"->"`.
    P(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v, _) => write!(f, "{v}"),
            Tok::Float(v, _) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "\"...\""),
            Tok::Char(c) => write!(f, "'{}'", *c as char),
            Tok::P(p) => write!(f, "{p}"),
        }
    }
}

/// Token plus line number.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// Token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// Message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "(", ")", "{", "}", "[", "]", ";", ",",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "<", ">", "=", ".", "?", ":",
];

/// Tokenize miniC source. `//` and `/* */` comments are skipped.
///
/// # Errors
///
/// Returns the first lexical error.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, m: &str| LexError {
        line,
        message: m.to_string(),
    };
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(line, "unterminated comment"));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float =
                    i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let f32suffix = i < b.len() && (b[i] == b'f' || b[i] == b'F');
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| err(line, "bad float literal"))?;
                    if f32suffix {
                        i += 1;
                    }
                    out.push(Spanned {
                        tok: Tok::Float(v, f32suffix),
                        line,
                    });
                } else {
                    let long = i < b.len() && (b[i] == b'L' || b[i] == b'l');
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| err(line, "integer literal out of range"))?;
                    if long {
                        i += 1;
                    }
                    out.push(Spanned {
                        tok: Tok::Int(v, long),
                        line,
                    });
                }
            }
            '"' => {
                i += 1;
                let mut bytes = Vec::new();
                loop {
                    if i >= b.len() {
                        return Err(err(line, "unterminated string"));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let e = *b.get(i).ok_or_else(|| err(line, "bad escape"))?;
                            bytes.push(match e {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'0' => 0,
                                b'\\' => b'\\',
                                b'"' => b'"',
                                other => other,
                            });
                            i += 1;
                        }
                        b'\n' => return Err(err(line, "newline in string")),
                        other => {
                            bytes.push(other);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(bytes),
                    line,
                });
            }
            '\'' => {
                i += 1;
                let ch = match b.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        let e = *b.get(i).ok_or_else(|| err(line, "bad escape"))?;
                        match e {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => other,
                        }
                    }
                    Some(&c) => c,
                    None => return Err(err(line, "unterminated char literal")),
                };
                i += 1;
                if b.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal"));
                }
                i += 1;
                out.push(Spanned {
                    tok: Tok::Char(ch),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let p = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match p {
                    Some(p) => {
                        out.push(Spanned {
                            tok: Tok::P(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => return Err(err(line, &format!("unexpected character {c:?}"))),
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declaration() {
        let t = lex("int x = 42; // c\n").unwrap();
        let kinds: Vec<Tok> = t.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::P("="),
                Tok::Int(42, false),
                Tok::P(";"),
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        let t = lex("a <= b << c->d").unwrap();
        let ops: Vec<Tok> = t
            .into_iter()
            .filter(|s| matches!(s.tok, Tok::P(_)))
            .map(|s| s.tok)
            .collect();
        assert_eq!(ops, vec![Tok::P("<="), Tok::P("<<"), Tok::P("->")]);
    }

    #[test]
    fn lexes_literals() {
        let t = lex("1.5 2.0f 7L 'a' \"hi\\n\"").unwrap();
        assert_eq!(t[0].tok, Tok::Float(1.5, false));
        assert_eq!(t[1].tok, Tok::Float(2.0, true));
        assert_eq!(t[2].tok, Tok::Int(7, true));
        assert_eq!(t[3].tok, Tok::Char(b'a'));
        assert_eq!(t[4].tok, Tok::Str(vec![b'h', b'i', b'\n']));
    }

    #[test]
    fn block_comments_track_lines() {
        let t = lex("/* a\nb */ x").unwrap();
        assert_eq!(t[0].line, 2);
    }
}
