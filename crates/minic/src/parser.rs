//! miniC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};

/// A parse error with source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a miniC translation unit.
///
/// # Errors
///
/// Returns the first syntax error with its line.
pub fn parse(src: &str) -> PResult<Program> {
    let toks = lex(src).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "bool", "char", "int", "uint", "long", "ulong", "float", "double", "struct", "fn",
];

impl Parser {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }
    fn err<T>(&self, m: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            message: m.into(),
        })
    }
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }
    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }
    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn eat_p(&mut self, p: &str) -> bool {
        if let Some(Tok::P(x)) = self.peek() {
            if *x == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }
    fn expect_p(&mut self, p: &str) -> PResult<()> {
        if self.eat_p(p) {
            Ok(())
        } else {
            self.err(format!("expected '{p}', found {:?}", self.peek()))
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }
    fn expect_ident(&mut self) -> PResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }
    fn at_type(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    // ---- types -----------------------------------------------------------

    fn parse_type(&mut self) -> PResult<CType> {
        let base = match self.next() {
            Some(Tok::Ident(s)) => match s.as_str() {
                "void" => CType::Void,
                "bool" => CType::Bool,
                "char" => CType::Char,
                "int" => CType::Int,
                "uint" => CType::Uint,
                "long" => CType::Long,
                "ulong" => CType::Ulong,
                "float" => CType::Float,
                "double" => CType::Double,
                "struct" => CType::Struct(self.expect_ident()?),
                "fn" => {
                    // fn<ret(params)>
                    self.expect_p("<")?;
                    let ret = self.parse_type()?;
                    self.expect_p("(")?;
                    let mut params = Vec::new();
                    if !self.eat_p(")") {
                        loop {
                            params.push(self.parse_type()?);
                            if self.eat_p(")") {
                                break;
                            }
                            self.expect_p(",")?;
                        }
                    }
                    self.expect_p(">")?;
                    CType::FnPtr {
                        ret: Box::new(ret),
                        params,
                    }
                }
                other => return self.err(format!("unknown type '{other}'")),
            },
            other => return self.err(format!("expected a type, found {other:?}")),
        };
        let mut ty = base;
        while self.eat_p("*") {
            ty = CType::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    /// Array suffixes after a declarator name: `[N]*`.
    fn array_suffix(&mut self, mut ty: CType) -> PResult<CType> {
        let mut dims = Vec::new();
        while self.eat_p("[") {
            match self.next() {
                Some(Tok::Int(n, _)) if n >= 0 => dims.push(n as u64),
                other => return self.err(format!("expected array length, found {other:?}")),
            }
            self.expect_p("]")?;
        }
        for &d in dims.iter().rev() {
            ty = CType::Array(Box::new(ty), d);
        }
        Ok(ty)
    }

    // ---- top level ---------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            if self.eat_kw("extern") {
                // extern function or global.
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                if self.eat_p("(") {
                    let params = self.params()?;
                    self.expect_p(";")?;
                    prog.funcs.push(FuncDef {
                        name,
                        ret: ty,
                        params,
                        body: None,
                        is_static: false,
                    });
                } else {
                    let ty = self.array_suffix(ty)?;
                    self.expect_p(";")?;
                    prog.globals.push(GlobalDef {
                        name,
                        ty,
                        init: None,
                        is_extern: true,
                        is_static: false,
                    });
                }
                continue;
            }
            let is_static = self.eat_kw("static");
            if !is_static
                && matches!(self.peek(), Some(Tok::Ident(s)) if s == "struct")
                && matches!(self.peek2(), Some(Tok::Ident(_)))
                && matches!(
                    self.toks.get(self.pos + 2).map(|s| &s.tok),
                    Some(Tok::P("{"))
                )
            {
                prog.structs.push(self.struct_def()?);
                continue;
            }
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.eat_p("(") {
                let params = self.params()?;
                self.expect_p("{")?;
                let body = self.block_stmts()?;
                prog.funcs.push(FuncDef {
                    name,
                    ret: ty,
                    params,
                    body: Some(body),
                    is_static,
                });
            } else {
                let ty = self.array_suffix(ty)?;
                let init = if self.eat_p("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_p(";")?;
                prog.globals.push(GlobalDef {
                    name,
                    ty,
                    init,
                    is_extern: false,
                    is_static,
                });
            }
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> PResult<StructDef> {
        self.next(); // struct
        let name = self.expect_ident()?;
        self.expect_p("{")?;
        let mut fields = Vec::new();
        while !self.eat_p("}") {
            let ty = self.parse_type()?;
            let fname = self.expect_ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect_p(";")?;
            fields.push((ty, fname));
        }
        self.expect_p(";")?;
        Ok(StructDef { name, fields })
    }

    fn params(&mut self) -> PResult<Vec<(CType, String)>> {
        let mut out = Vec::new();
        if self.eat_p(")") {
            return Ok(out);
        }
        loop {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            out.push((ty, name));
            if self.eat_p(")") {
                break;
            }
            self.expect_p(",")?;
        }
        Ok(out)
    }

    // ---- statements ----------------------------------------------------------

    fn block_stmts(&mut self) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while !self.eat_p("}") {
            if self.peek().is_none() {
                return self.err("unexpected end of file in block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.eat_p("{") {
            return Ok(Stmt::Block(self.block_stmts()?));
        }
        if self.eat_kw("if") {
            self.expect_p("(")?;
            let c = self.expr()?;
            self.expect_p(")")?;
            let then = self.stmt_as_block()?;
            let els = if self.eat_kw("else") {
                self.stmt_as_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw("while") {
            self.expect_p("(")?;
            let c = self.expr()?;
            self.expect_p(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::While(c, body));
        }
        if self.eat_kw("for") {
            self.expect_p("(")?;
            let init = if self.eat_p(";") {
                None
            } else {
                let s = self.simple_stmt()?;
                self.expect_p(";")?;
                Some(Box::new(s))
            };
            let cond = if self.eat_p(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_p(";")?;
                Some(e)
            };
            let step = if self.eat_p(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_p(")")?;
                Some(e)
            };
            let body = self.stmt_as_block()?;
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw("return") {
            if self.eat_p(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_p(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("break") {
            self.expect_p(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_p(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("try") {
            self.expect_p("{")?;
            let body = self.block_stmts()?;
            if !self.eat_kw("catch") {
                return self.err("expected 'catch' after try block");
            }
            self.expect_p("{")?;
            let handler = self.block_stmts()?;
            return Ok(Stmt::TryCatch(body, handler));
        }
        if self.eat_kw("throw") {
            self.expect_p(";")?;
            return Ok(Stmt::Throw);
        }
        if self.eat_kw("delete") {
            let e = self.expr()?;
            self.expect_p(";")?;
            return Ok(Stmt::Delete(e));
        }
        let s = self.simple_stmt()?;
        self.expect_p(";")?;
        Ok(s)
    }

    fn stmt_as_block(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat_p("{") {
            self.block_stmts()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Declaration or expression (no trailing `;`), as used by `for(...)`.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        if self.at_type() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let ty = self.array_suffix(ty)?;
            let init = if self.eat_p("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl(ty, name, init));
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    // ---- expressions -----------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn mk(&self, kind: ExprKind) -> Expr {
        Expr {
            kind,
            line: self.line(),
        }
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        if self.eat_p("=") {
            let rhs = self.assignment()?;
            return Ok(self.mk(ExprKind::Assign(Box::new(lhs), Box::new(rhs))));
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let c = self.binary(0)?;
        if self.eat_p("?") {
            let a = self.expr()?;
            self.expect_p(":")?;
            let b = self.ternary()?;
            return Ok(self.mk(ExprKind::Ternary(Box::new(c), Box::new(a), Box::new(b))));
        }
        Ok(c)
    }

    fn bin_op_at(&self, level: usize) -> Option<(&'static str, BinOpKind)> {
        const LEVELS: &[&[(&str, BinOpKind)]] = &[
            &[("||", BinOpKind::LOr)],
            &[("&&", BinOpKind::LAnd)],
            &[("|", BinOpKind::Or)],
            &[("^", BinOpKind::Xor)],
            &[("&", BinOpKind::And)],
            &[("==", BinOpKind::Eq), ("!=", BinOpKind::Ne)],
            &[
                ("<=", BinOpKind::Le),
                (">=", BinOpKind::Ge),
                ("<", BinOpKind::Lt),
                (">", BinOpKind::Gt),
            ],
            &[("<<", BinOpKind::Shl), (">>", BinOpKind::Shr)],
            &[("+", BinOpKind::Add), ("-", BinOpKind::Sub)],
            &[
                ("*", BinOpKind::Mul),
                ("/", BinOpKind::Div),
                ("%", BinOpKind::Rem),
            ],
        ];
        let table = LEVELS.get(level)?;
        if let Some(Tok::P(p)) = self.peek() {
            for (s, k) in *table {
                if p == s {
                    return Some((s, *k));
                }
            }
        }
        None
    }

    fn binary(&mut self, level: usize) -> PResult<Expr> {
        if level >= 10 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some((p, k)) = self.bin_op_at(level) {
            self.expect_p(p)?;
            let rhs = self.binary(level + 1)?;
            lhs = self.mk(ExprKind::Bin(k, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_p("-") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::Neg(Box::new(e))));
        }
        if self.eat_p("!") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::Not(Box::new(e))));
        }
        if self.eat_p("*") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::Deref(Box::new(e))));
        }
        if self.eat_p("&") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::Addr(Box::new(e))));
        }
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == "sizeof" {
                self.next();
                self.expect_p("(")?;
                let t = self.parse_type()?;
                self.expect_p(")")?;
                return Ok(self.mk(ExprKind::SizeOf(t)));
            }
            if s == "new" {
                self.next();
                let t = self.parse_type()?;
                let count = if self.eat_p("[") {
                    let e = self.expr()?;
                    self.expect_p("]")?;
                    Some(Box::new(e))
                } else {
                    None
                };
                return Ok(self.mk(ExprKind::New(t, count)));
            }
        }
        // Cast: '(' type ')' unary — only when '(' is followed by a type
        // keyword.
        if self.peek() == Some(&Tok::P("("))
            && matches!(self.peek2(), Some(Tok::Ident(s)) if TYPE_KEYWORDS.contains(&s.as_str()))
        {
            self.next();
            let t = self.parse_type()?;
            self.expect_p(")")?;
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::Cast(t, Box::new(e))));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_p("(") {
                let mut args = Vec::new();
                if !self.eat_p(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_p(")") {
                            break;
                        }
                        self.expect_p(",")?;
                    }
                }
                e = self.mk(ExprKind::Call(Box::new(e), args));
            } else if self.eat_p("[") {
                let i = self.expr()?;
                self.expect_p("]")?;
                e = self.mk(ExprKind::Index(Box::new(e), Box::new(i)));
            } else if self.eat_p(".") {
                let f = self.expect_ident()?;
                e = self.mk(ExprKind::Member(Box::new(e), f));
            } else if self.eat_p("->") {
                let f = self.expect_ident()?;
                e = self.mk(ExprKind::Arrow(Box::new(e), f));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.next() {
            Some(Tok::Int(v, l)) => Ok(self.mk(ExprKind::IntLit(v, l))),
            Some(Tok::Float(v, f)) => Ok(self.mk(ExprKind::FloatLit(v, f))),
            Some(Tok::Char(c)) => Ok(self.mk(ExprKind::CharLit(c))),
            Some(Tok::Str(s)) => Ok(self.mk(ExprKind::StrLit(s))),
            Some(Tok::Ident(s)) => match s.as_str() {
                "true" => Ok(self.mk(ExprKind::BoolLit(true))),
                "false" => Ok(self.mk(ExprKind::BoolLit(false))),
                "null" => Ok(self.mk(ExprKind::Null)),
                _ => Ok(self.mk(ExprKind::Ident(s))),
            },
            Some(Tok::P("(")) => {
                let e = self.expr()?;
                self.expect_p(")")?;
                Ok(e)
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse(
            "
int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + i;
    }
    return s;
}",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "sum");
        assert_eq!(p.funcs[0].params.len(), 1);
    }

    #[test]
    fn parses_structs_pointers_arrays() {
        let p = parse(
            "
struct node { int value; struct node* next; };
struct node* head = null;
int table[64];
static int hidden = 3;
extern int puts(char* s);
",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.globals.len(), 3);
        assert!(p.globals[2].is_static);
        assert_eq!(p.funcs.len(), 1);
        assert!(p.funcs[0].body.is_none());
        assert_eq!(p.globals[1].ty, CType::Array(Box::new(CType::Int), 64));
    }

    #[test]
    fn parses_fnptr_new_delete_try() {
        let p = parse(
            "
int apply(fn<int(int)> f, int x) {
    return f(x);
}
void g() {
    int* p = new int[10];
    try {
        p[0] = 1;
        throw;
    } catch {
        delete p;
    }
}",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 2);
        match &p.funcs[0].params[0].0 {
            CType::FnPtr { params, .. } => assert_eq!(params.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_and_casts() {
        let p = parse("int f(int a, int b) { return a + b * 2 == (int)(a << 1); }").unwrap();
        let f = &p.funcs[0];
        match &f.body.as_ref().unwrap()[0] {
            Stmt::Return(Some(Expr {
                kind: ExprKind::Bin(BinOpKind::Eq, l, _),
                ..
            })) => match &l.kind {
                ExprKind::Bin(BinOpKind::Add, _, r) => {
                    assert!(matches!(r.kind, ExprKind::Bin(BinOpKind::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
