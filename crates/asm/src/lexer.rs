//! Tokenizer for the textual form of the representation.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare word: keywords, type names, opcodes (`define`, `int`, `add`).
    Word(String),
    /// `%name`: local value, block label reference, or named type.
    Local(String),
    /// `@name`: global or function symbol.
    Global(String),
    /// Integer literal text (sign included); parsed at use-site so that
    /// `u64`-range literals survive.
    Num(String),
    /// Hex literal `0xABCD...`; payload plus number of hex digits (8 for
    /// `float` bits, 16 for `double` bits).
    Hex(u64, usize),
    /// A string literal from the `c"..."` sugar, already unescaped.
    Str(Vec<u8>),
    /// Single punctuation character: `=,(){}[]*:`.
    Punct(char),
    /// `...`
    Ellipsis,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "{w}"),
            Tok::Local(n) => write!(f, "%{n}"),
            Tok::Global(n) => write!(f, "@{n}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Hex(v, w) => write!(f, "0x{v:0w$X}", w = w),
            Tok::Str(_) => write!(f, "c\"...\""),
            Tok::Punct(c) => write!(f, "{c}"),
            Tok::Ellipsis => write!(f, "..."),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A tokenization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '$'
}

fn is_ident_cont(c: char) -> bool {
    // '.' continues identifiers (`llvm.memcpy`-style names) but cannot
    // start one, so `...` lexes as the ellipsis token.
    is_ident_start(c) || c.is_ascii_digit() || c == '.'
}

/// Tokenize `src`. Comments run from `;` to end of line.
///
/// # Errors
///
/// Returns the first lexical error encountered.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line: u32 = 1;
    let err = |line: u32, m: &str| LexError {
        line,
        message: m.to_string(),
    };
    while let Some(&(_, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' | '@' => {
                let sigil = c;
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_cont(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(err(line, &format!("empty name after '{sigil}'")));
                }
                out.push(Spanned {
                    tok: if sigil == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    },
                    line,
                });
            }
            '0'..='9' | '-' => {
                let mut text = String::new();
                let neg = c == '-';
                text.push(c);
                chars.next();
                // Hex?
                if !neg {
                    if let Some(&(_, 'x')) = chars.peek() {
                        if text == "0" {
                            chars.next();
                            let mut hex = String::new();
                            while let Some(&(_, c)) = chars.peek() {
                                if c.is_ascii_hexdigit() {
                                    hex.push(c);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                            let v = u64::from_str_radix(&hex, 16)
                                .map_err(|_| err(line, "bad hex literal"))?;
                            out.push(Spanned {
                                tok: Tok::Hex(v, hex.len()),
                                line,
                            });
                            continue;
                        }
                    }
                }
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if text == "-" {
                    return Err(err(line, "stray '-'"));
                }
                out.push(Spanned {
                    tok: Tok::Num(text),
                    line,
                });
            }
            'c' => {
                // Either c"..." string sugar or an identifier starting with c.
                let mut clone = chars.clone();
                clone.next();
                if let Some(&(_, '"')) = clone.peek() {
                    chars.next(); // c
                    chars.next(); // "
                    let mut bytes = Vec::new();
                    loop {
                        match chars.next() {
                            Some((_, '"')) => break,
                            Some((_, '\\')) => {
                                let mut h = String::new();
                                for _ in 0..2 {
                                    match chars.next() {
                                        Some((_, c)) if c.is_ascii_hexdigit() => h.push(c),
                                        _ => return Err(err(line, "bad escape in string")),
                                    }
                                }
                                bytes.push(u8::from_str_radix(&h, 16).unwrap());
                            }
                            Some((_, '\n')) | None => return Err(err(line, "unterminated string")),
                            Some((_, c)) => {
                                let mut buf = [0u8; 4];
                                bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            }
                        }
                    }
                    out.push(Spanned {
                        tok: Tok::Str(bytes),
                        line,
                    });
                } else {
                    lex_word(&mut chars, &mut out, line);
                }
            }
            c if is_ident_start(c) => {
                lex_word(&mut chars, &mut out, line);
            }
            '.' => {
                chars.next();
                for _ in 0..2 {
                    match chars.next() {
                        Some((_, '.')) => {}
                        _ => return Err(err(line, "expected '...'")),
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ellipsis,
                    line,
                });
            }
            '=' | ',' | '(' | ')' | '{' | '}' | '[' | ']' | '*' | ':' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => return Err(err(line, &format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn lex_word(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    out: &mut Vec<Spanned>,
    line: u32,
) {
    let mut w = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if is_ident_cont(c) {
            w.push(c);
            chars.next();
        } else {
            break;
        }
    }
    out.push(Spanned {
        tok: Tok::Word(w),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_instruction_line() {
        let toks = lex("%t0 = add int %a0, -1 ; comment\n").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Local("t0".into()),
                Tok::Punct('='),
                Tok::Word("add".into()),
                Tok::Word("int".into()),
                Tok::Local("a0".into()),
                Tok::Punct(','),
                Tok::Num("-1".into()),
            ]
        );
    }

    #[test]
    fn lexes_hex_and_string() {
        let toks = lex("0x3F800000 c\"hi\\00\"").unwrap();
        assert_eq!(toks[0].tok, Tok::Hex(0x3F800000, 8));
        assert_eq!(toks[1].tok, Tok::Str(vec![b'h', b'i', 0]));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn lexes_ellipsis_and_varargs_sig() {
        let toks = lex("declare int @printf(sbyte*, ...)").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Ellipsis));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("#!").is_err());
        assert!(lex("c\"unterminated").is_err());
    }
}
