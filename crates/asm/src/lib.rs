//! # lpat-asm — the textual form
//!
//! Parser for the assembly syntax of the `lpat` representation (the printer
//! lives in `lpat-core`). Together they realize the paper's requirement
//! (§2.5) that the representation be a *first-class language* with
//! equivalent textual and in-memory forms, convertible without information
//! loss: it makes debugging transformations simpler and test cases easy to
//! write.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! @G = global int 42
//! define int @main() {
//! entry:
//!   %x = load int* @G
//!   %y = add int %x, 1
//!   ret int %y
//! }"#;
//! let m = lpat_asm::parse_module("demo", src).unwrap();
//! m.verify().unwrap();
//! // Round trip: print, re-parse, print — canonical after one trip.
//! let printed = m.display();
//! let m2 = lpat_asm::parse_module("demo", &printed).unwrap();
//! assert_eq!(printed, m2.display());
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;

pub use parser::{parse_module, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_core::{Inst, Value};

    fn roundtrip(src: &str) -> String {
        let m = parse_module("t", src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        if let Err(errs) = m.verify() {
            panic!("verify: {errs:?}\n{}", m.display());
        }
        let p1 = m.display();
        let m2 = parse_module("t", &p1).unwrap_or_else(|e| panic!("reparse: {e}\n{p1}"));
        let p2 = m2.display();
        assert_eq!(p1, p2, "round trip not stable");
        p1
    }

    #[test]
    fn parses_simple_function() {
        let out = roundtrip(
            "
define int @id(int %x) {
bb0:
  ret int %x
}",
        );
        assert!(out.contains("define int @id(int %a0)"));
    }

    #[test]
    fn parses_control_flow_and_phi() {
        roundtrip(
            "
define int @max(int %a, int %b) {
entry:
  %c = setgt int %a, %b
  br bool %c, label %t, label %f
t:
  br label %join
f:
  br label %join
join:
  %m = phi int [ %a, %t ], [ %b, %f ]
  ret int %m
}",
        );
    }

    #[test]
    fn parses_memory_and_gep() {
        let out = roundtrip(
            "
%pair = type { int, [4 x float] }
define float @get(%pair* %p, long %i) {
bb0:
  %q = getelementptr %pair* %p, long 0, ubyte 1, long %i
  %v = load float* %q
  ret float %v
}",
        );
        assert!(out.contains("%pair = type { int, [4 x float] }"));
        assert!(out.contains("getelementptr %pair* %a0, long 0, ubyte 1, long %a1"));
    }

    #[test]
    fn parses_recursive_type() {
        roundtrip(
            "
%list = type { int, %list* }
define int @head(%list* %l) {
bb0:
  %p = getelementptr %list* %l, long 0, ubyte 0
  %v = load int* %p
  ret int %v
}",
        );
    }

    #[test]
    fn parses_globals_functions_and_calls() {
        let out = roundtrip(
            "
@counter = internal global int 0
@msg = constant [3 x sbyte] [ sbyte 104, sbyte 105, sbyte 0 ]
declare int @puts(sbyte*)
define void @tick() {
bb0:
  %v = load int* @counter
  %v2 = add int %v, 1
  store int %v2, int* @counter
  ret void
}
define void @main() {
bb0:
  call void @tick()
  %p = getelementptr [3 x sbyte]* @msg, long 0, long 0
  %r = call int @puts(sbyte* %p)
  ret void
}",
        );
        assert!(out.contains("@counter = internal global int 0"));
        assert!(out.contains("call void @tick()"));
    }

    #[test]
    fn parses_invoke_unwind() {
        let out = roundtrip(
            "
declare void @might_throw()
define int @try_it() {
entry:
  invoke void @might_throw() to label %ok unwind label %handler
ok:
  ret int 0
handler:
  ret int 1
}",
        );
        assert!(out.contains("invoke void @might_throw() to label %bb1 unwind label %bb2"));
    }

    #[test]
    fn parses_switch_malloc_cast() {
        roundtrip(
            "
define sbyte* @f(int %x) {
entry:
  switch int %x, label %d [ int 1, label %one int 2, label %two ]
one:
  %m = malloc sbyte, uint 16
  ret sbyte* %m
two:
  %n = malloc int
  %c = cast int* %n to sbyte*
  ret sbyte* %c
d:
  ret sbyte* null
}",
        );
    }

    #[test]
    fn parses_varargs_and_vaarg() {
        roundtrip(
            "
define int @sum(int %n, ...) {
entry:
  %v = vaarg int
  ret int %v
}",
        );
    }

    #[test]
    fn parses_string_sugar() {
        let m = parse_module("t", "@s = constant [3 x sbyte] c\"hi\\00\"").unwrap();
        let g = m.global_by_name("s").unwrap();
        let init = m.global(g).init.unwrap();
        match m.consts.get(init) {
            lpat_core::Const::Array { elems, .. } => assert_eq!(elems.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forward_function_reference() {
        let m = parse_module(
            "t",
            "
define void @a() {
bb0:
  call void @b()
  ret void
}
define void @b() {
bb0:
  ret void
}",
        )
        .unwrap();
        let a = m.func_by_name("a").unwrap();
        let f = m.func(a);
        match f.inst(lpat_core::InstId::from_index(0)) {
            Inst::Call {
                callee: Value::Const(c),
                ..
            } => {
                assert!(matches!(m.consts.get(*c), lpat_core::Const::FuncAddr(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_pointer_in_global() {
        roundtrip(
            "
declare int @impl(int)
@vtable = constant [1 x int (int)*] [ int (int)* @impl ]
define int @dispatch(int %x) {
bb0:
  %slot = getelementptr [1 x int (int)*]* @vtable, long 0, long 0
  %fp = load int (int)** %slot
  %r = call int %fp(int %x)
  ret int %r
}",
        );
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_module("t", "\n\ndefine bogus @f() {\nbb0:\n ret void\n}").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_module("t", "define void @f() {\nbb0:\n  frobnicate int 1\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_unknown_value() {
        let e = parse_module("t", "define int @f() {\nbb0:\n  ret int %nope\n}").unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn rejects_duplicate_label() {
        let e = parse_module(
            "t",
            "define void @f() {\nbb0:\n  ret void\nbb0:\n  ret void\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn float_constants_roundtrip_bits() {
        let out = roundtrip(
            "
define double @f() {
bb0:
  %x = add double 0x3FF8000000000000, 0x4000000000000000
  ret double %x
}",
        );
        assert!(out.contains("0x3FF8000000000000"));
    }
}
