//! Recursive-descent parser for the textual form.
//!
//! The grammar is line-structured: one item or instruction per line.
//! Parsing proceeds in two passes so that forward references work:
//!
//! 1. **Declaration pass** — named types, global declarations, and function
//!    signatures are registered (bodies and initializers are skipped).
//! 2. **Body pass** — global initializers and function bodies are parsed;
//!    inside a body, a pre-scan assigns ids to labels and instruction
//!    results so φ-nodes and branches may reference forward.

use std::collections::HashMap;

use lpat_core::{
    BlockId, Const, ConstId, FuncId, GlobalId, Inst, InstId, IntKind, Linkage, Module, Type,
    TypeId, Value,
};

use crate::lexer::{lex, Spanned, Tok};

/// A parse failure with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// A parsed function signature: (name, param types, param names, return
/// type, varargs).
type Signature = (String, Vec<TypeId>, Vec<String>, TypeId, bool);

/// Parse a whole module from its textual form.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its line number. The
/// result is *not* verified; run [`Module::verify`] to check semantic
/// invariants.
///
/// # Examples
///
/// ```
/// let text = "
/// define int @id(int %x) {
/// bb0:
///   ret int %x
/// }";
/// let m = lpat_asm::parse_module("t", text).unwrap();
/// assert!(m.verify().is_ok());
/// ```
pub fn parse_module(name: &str, src: &str) -> PResult<Module> {
    let toks = lex(src).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    // Group into lines.
    let mut lines: Vec<(u32, Vec<Tok>)> = Vec::new();
    for Spanned { tok, line } in toks {
        match lines.last_mut() {
            Some((l, v)) if *l == line => v.push(tok),
            _ => lines.push((line, vec![tok])),
        }
    }
    let mut p = Parser {
        module: Module::new(name),
        aliases: HashMap::new(),
        pending_globals: Vec::new(),
        pending_funcs: Vec::new(),
    };
    p.pass_declarations(&lines)?;
    p.pass_bodies(&lines)?;
    Ok(p.module)
}

struct PendingGlobal {
    id: GlobalId,
    line_idx: usize,
}

struct PendingFunc {
    id: FuncId,
    /// Parameter names from the header.
    param_names: Vec<String>,
    /// Line-index range (exclusive of the `define` and `}` lines).
    body: std::ops::Range<usize>,
}

struct Parser {
    module: Module,
    aliases: HashMap<String, TypeId>,
    pending_globals: Vec<PendingGlobal>,
    pending_funcs: Vec<PendingFunc>,
}

/// Cursor over one line's tokens.
struct Cur<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: u32,
}

impl<'a> Cur<'a> {
    fn new(line: u32, toks: &'a [Tok]) -> Cur<'a> {
        Cur { toks, pos: 0, line }
    }
    fn err<T>(&self, m: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line,
            message: m.into(),
        })
    }
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }
    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn expect_punct(&mut self, c: char) -> PResult<()> {
        match self.next() {
            Some(Tok::Punct(p)) if *p == c => Ok(()),
            other => self.err(format!("expected '{c}', found {other:?}")),
        }
    }
    fn expect_word(&mut self, w: &str) -> PResult<()> {
        match self.next() {
            Some(Tok::Word(x)) if x == w => Ok(()),
            other => self.err(format!("expected '{w}', found {other:?}")),
        }
    }
    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(Tok::Punct(p)) = self.peek() {
            if *p == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }
    fn eat_word(&mut self, w: &str) -> bool {
        if let Some(Tok::Word(x)) = self.peek() {
            if x == w {
                self.pos += 1;
                return true;
            }
        }
        false
    }
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    fn expect_end(&self) -> PResult<()> {
        if self.at_end() {
            Ok(())
        } else {
            self.err(format!("trailing tokens starting at {:?}", self.peek()))
        }
    }
}

impl Parser {
    // ------------------------------------------------------------------
    // Pass 1: declarations
    // ------------------------------------------------------------------

    fn pass_declarations(&mut self, lines: &[(u32, Vec<Tok>)]) -> PResult<()> {
        let mut i = 0;
        while i < lines.len() {
            let (lno, toks) = &lines[i];
            let mut c = Cur::new(*lno, toks);
            match c.peek() {
                Some(Tok::Local(_)) => {
                    // %name = type <ty>
                    let name = match c.next() {
                        Some(Tok::Local(n)) => n.clone(),
                        _ => unreachable!(),
                    };
                    c.expect_punct('=')?;
                    c.expect_word("type")?;
                    if c.eat_word("opaque") {
                        self.module.types.named_struct(&name);
                    } else if matches!(c.peek(), Some(Tok::Punct('{'))) {
                        let id = self.module.types.named_struct(&name);
                        let fields = self.parse_struct_fields(&mut c)?;
                        self.module.types.set_struct_body(id, fields);
                    } else {
                        let ty = self.parse_type(&mut c)?;
                        self.aliases.insert(name, ty);
                    }
                    c.expect_end()?;
                    i += 1;
                }
                Some(Tok::Global(_)) => {
                    let name = match c.next() {
                        Some(Tok::Global(n)) => n.clone(),
                        _ => unreachable!(),
                    };
                    c.expect_punct('=')?;
                    let external = c.eat_word("external");
                    let internal = c.eat_word("internal");
                    let is_const = if c.eat_word("constant") {
                        true
                    } else if c.eat_word("global") {
                        false
                    } else {
                        return c.err("expected 'global' or 'constant'");
                    };
                    let ty = self.parse_type(&mut c)?;
                    let linkage = if internal {
                        Linkage::Internal
                    } else {
                        Linkage::External
                    };
                    let id = self.module.add_global(&name, ty, None, is_const, linkage);
                    if !external {
                        // Initializer parsed in pass 2 (it may reference
                        // functions declared later).
                        self.pending_globals.push(PendingGlobal { id, line_idx: i });
                    } else {
                        c.expect_end()?;
                    }
                    i += 1;
                }
                Some(Tok::Word(w)) if w == "declare" => {
                    c.next();
                    let (name, params, _names, ret, varargs) = self.parse_signature(&mut c)?;
                    self.module
                        .add_function(&name, &params, ret, varargs, Linkage::External);
                    c.expect_end()?;
                    i += 1;
                }
                Some(Tok::Word(w)) if w == "define" => {
                    c.next();
                    let internal = c.eat_word("internal");
                    let (name, params, names, ret, varargs) = self.parse_signature(&mut c)?;
                    c.expect_punct('{')?;
                    c.expect_end()?;
                    let linkage = if internal {
                        Linkage::Internal
                    } else {
                        Linkage::External
                    };
                    let id = self
                        .module
                        .add_function(&name, &params, ret, varargs, linkage);
                    // Find the closing '}' line.
                    let start = i + 1;
                    let mut end = start;
                    while end < lines.len() {
                        if lines[end].1 == vec![Tok::Punct('}')] {
                            break;
                        }
                        end += 1;
                    }
                    if end == lines.len() {
                        return c.err(format!("missing closing '}}' for @{name}"));
                    }
                    self.pending_funcs.push(PendingFunc {
                        id,
                        param_names: names,
                        body: start..end,
                    });
                    i = end + 1;
                }
                _ => {
                    return Err(ParseError {
                        line: *lno,
                        message: format!("unexpected top-level line starting with {:?}", c.peek()),
                    })
                }
            }
        }
        Ok(())
    }

    /// `int @name(int %a, sbyte* %b, ...)` — returns
    /// (name, param types, param names, ret, varargs).
    fn parse_signature(&mut self, c: &mut Cur<'_>) -> PResult<Signature> {
        let ret = self.parse_type(c)?;
        let name = match c.next() {
            Some(Tok::Global(n)) => n.clone(),
            other => return c.err(format!("expected function name, found {other:?}")),
        };
        c.expect_punct('(')?;
        let mut params = Vec::new();
        let mut names = Vec::new();
        let mut varargs = false;
        if !c.eat_punct(')') {
            loop {
                if let Some(Tok::Ellipsis) = c.peek() {
                    c.next();
                    varargs = true;
                    c.expect_punct(')')?;
                    break;
                }
                let ty = self.parse_type(c)?;
                let pname = match c.peek() {
                    Some(Tok::Local(n)) => {
                        let n = n.clone();
                        c.next();
                        n
                    }
                    _ => format!("a{}", params.len()),
                };
                params.push(ty);
                names.push(pname);
                if c.eat_punct(')') {
                    break;
                }
                c.expect_punct(',')?;
            }
        }
        Ok((name, params, names, ret, varargs))
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn parse_struct_fields(&mut self, c: &mut Cur<'_>) -> PResult<Vec<TypeId>> {
        c.expect_punct('{')?;
        let mut fields = Vec::new();
        if c.eat_punct('}') {
            return Ok(fields);
        }
        loop {
            fields.push(self.parse_type(c)?);
            if c.eat_punct('}') {
                break;
            }
            c.expect_punct(',')?;
        }
        Ok(fields)
    }

    fn parse_type(&mut self, c: &mut Cur<'_>) -> PResult<TypeId> {
        let mut ty = match c.next() {
            Some(Tok::Word(w)) => match w.as_str() {
                "void" => self.module.types.void(),
                "bool" => self.module.types.bool_(),
                "float" => self.module.types.f32(),
                "double" => self.module.types.f64(),
                _ => match IntKind::from_name(w) {
                    Some(k) => self.module.types.int(k),
                    None => return c.err(format!("unknown type '{w}'")),
                },
            },
            Some(Tok::Local(n)) => match self.aliases.get(n) {
                Some(&t) => t,
                None => self.module.types.named_struct(n),
            },
            Some(Tok::Punct('[')) => {
                let len = match c.next() {
                    Some(Tok::Num(s)) => s.parse::<u64>().map_err(|_| ParseError {
                        line: c.line,
                        message: "bad array length".into(),
                    })?,
                    other => return c.err(format!("expected array length, found {other:?}")),
                };
                c.expect_word("x")?;
                let elem = self.parse_type(c)?;
                c.expect_punct(']')?;
                self.module.types.array(elem, len)
            }
            Some(Tok::Punct('{')) => {
                c.pos -= 1;
                let fields = self.parse_struct_fields(c)?;
                self.module.types.struct_lit(fields)
            }
            other => return c.err(format!("expected a type, found {other:?}")),
        };
        loop {
            if c.eat_punct('*') {
                ty = self.module.types.ptr(ty);
            } else if matches!(c.peek(), Some(Tok::Punct('('))) {
                c.next();
                let mut params = Vec::new();
                let mut varargs = false;
                if !c.eat_punct(')') {
                    loop {
                        if let Some(Tok::Ellipsis) = c.peek() {
                            c.next();
                            varargs = true;
                            c.expect_punct(')')?;
                            break;
                        }
                        params.push(self.parse_type(c)?);
                        if c.eat_punct(')') {
                            break;
                        }
                        c.expect_punct(',')?;
                    }
                }
                ty = self.module.types.func(ty, params, varargs);
            } else {
                break;
            }
        }
        Ok(ty)
    }

    // ------------------------------------------------------------------
    // Pass 2: bodies and initializers
    // ------------------------------------------------------------------

    fn pass_bodies(&mut self, lines: &[(u32, Vec<Tok>)]) -> PResult<()> {
        let globals = std::mem::take(&mut self.pending_globals);
        for pg in globals {
            let (lno, toks) = &lines[pg.line_idx];
            let mut c = Cur::new(*lno, toks);
            // Re-skip the declaration part: @name = [internal] kw type
            c.next(); // @name
            c.expect_punct('=')?;
            c.eat_word("internal");
            if !c.eat_word("global") {
                c.expect_word("constant")?;
            }
            let ty = self.parse_type(&mut c)?;
            let init = self.parse_const(&mut c, ty)?;
            c.expect_end()?;
            self.module.global_mut(pg.id).init = Some(init);
        }
        let funcs = std::mem::take(&mut self.pending_funcs);
        for pf in funcs {
            self.parse_body(lines, &pf)?;
        }
        Ok(())
    }

    fn parse_body(&mut self, lines: &[(u32, Vec<Tok>)], pf: &PendingFunc) -> PResult<()> {
        let mut blocks: HashMap<String, BlockId> = HashMap::new();
        let mut locals: HashMap<String, Value> = HashMap::new();
        for (i, n) in pf.param_names.iter().enumerate() {
            locals.insert(n.clone(), Value::Arg(i as u32));
        }
        // Pre-scan: create blocks, assign instruction result names.
        let mut inst_counter = 0u32;
        let mut saw_block = false;
        for idx in pf.body.clone() {
            let (lno, toks) = &lines[idx];
            if toks.len() == 2 {
                if let (Tok::Word(n), Tok::Punct(':')) = (&toks[0], &toks[1]) {
                    let b = self.module.func_mut(pf.id).add_block();
                    if blocks.insert(n.clone(), b).is_some() {
                        return Err(ParseError {
                            line: *lno,
                            message: format!("duplicate label {n}"),
                        });
                    }
                    saw_block = true;
                    continue;
                }
            }
            if !saw_block {
                return Err(ParseError {
                    line: *lno,
                    message: "function body must start with a label".into(),
                });
            }
            if let (Some(Tok::Local(n)), Some(Tok::Punct('='))) = (toks.first(), toks.get(1)) {
                if locals
                    .insert(
                        n.clone(),
                        Value::Inst(InstId::from_index(inst_counter as usize)),
                    )
                    .is_some()
                {
                    return Err(ParseError {
                        line: *lno,
                        message: format!("redefinition of %{n}"),
                    });
                }
            }
            inst_counter += 1;
        }
        // Parse pass.
        let mut cur_block = None;
        for idx in pf.body.clone() {
            let (lno, toks) = &lines[idx];
            if toks.len() == 2 {
                if let (Tok::Word(n), Tok::Punct(':')) = (&toks[0], &toks[1]) {
                    cur_block = Some(blocks[n]);
                    continue;
                }
            }
            let mut c = Cur::new(*lno, toks);
            // Skip `%name =`.
            if let (Some(Tok::Local(_)), Some(Tok::Punct('='))) = (toks.first(), toks.get(1)) {
                c.next();
                c.next();
            }
            let (inst, ty) = self.parse_inst(&mut c, pf.id, &locals, &blocks)?;
            c.expect_end()?;
            let b = cur_block.expect("checked in pre-scan");
            self.module.func_mut(pf.id).append_inst(b, inst, ty);
        }
        Ok(())
    }

    /// Parse one instruction; returns it with its result type.
    fn parse_inst(
        &mut self,
        c: &mut Cur<'_>,
        _fid: FuncId,
        locals: &HashMap<String, Value>,
        blocks: &HashMap<String, BlockId>,
    ) -> PResult<(Inst, TypeId)> {
        let void = self.module.types.void();
        let word = match c.next() {
            Some(Tok::Word(w)) => w.clone(),
            other => return c.err(format!("expected an opcode, found {other:?}")),
        };
        if let Some(op) = lpat_core::BinOp::from_name(&word) {
            let ty = self.parse_type(c)?;
            let lhs = self.parse_value(c, ty, locals)?;
            c.expect_punct(',')?;
            let rhs = self.parse_value(c, ty, locals)?;
            return Ok((Inst::Bin { op, lhs, rhs }, ty));
        }
        if let Some(pred) = lpat_core::CmpPred::from_name(&word) {
            let ty = self.parse_type(c)?;
            let lhs = self.parse_value(c, ty, locals)?;
            c.expect_punct(',')?;
            let rhs = self.parse_value(c, ty, locals)?;
            return Ok((Inst::Cmp { pred, lhs, rhs }, self.module.types.bool_()));
        }
        match word.as_str() {
            "ret" => {
                if c.eat_word("void") {
                    Ok((Inst::Ret(None), void))
                } else {
                    let ty = self.parse_type(c)?;
                    let v = self.parse_value(c, ty, locals)?;
                    Ok((Inst::Ret(Some(v)), void))
                }
            }
            "br" => {
                if c.eat_word("label") {
                    let b = self.parse_label_ref(c, blocks)?;
                    Ok((Inst::Br(b), void))
                } else {
                    c.expect_word("bool")?;
                    let cond = self.parse_value(c, self.module.types.bool_(), locals)?;
                    c.expect_punct(',')?;
                    c.expect_word("label")?;
                    let t = self.parse_label_ref(c, blocks)?;
                    c.expect_punct(',')?;
                    c.expect_word("label")?;
                    let e = self.parse_label_ref(c, blocks)?;
                    Ok((
                        Inst::CondBr {
                            cond,
                            then_bb: t,
                            else_bb: e,
                        },
                        void,
                    ))
                }
            }
            "switch" => {
                let ty = self.parse_type(c)?;
                let val = self.parse_value(c, ty, locals)?;
                c.expect_punct(',')?;
                c.expect_word("label")?;
                let default = self.parse_label_ref(c, blocks)?;
                c.expect_punct('[')?;
                let mut cases = Vec::new();
                while !c.eat_punct(']') {
                    let cty = self.parse_type(c)?;
                    let cst = self.parse_const(c, cty)?;
                    c.expect_punct(',')?;
                    c.expect_word("label")?;
                    let b = self.parse_label_ref(c, blocks)?;
                    cases.push((cst, b));
                }
                Ok((
                    Inst::Switch {
                        val,
                        default,
                        cases,
                    },
                    void,
                ))
            }
            "invoke" | "call" => {
                let ret = self.parse_type(c)?;
                // Callee: either @name or a local function pointer.
                let callee = self.parse_callee(c, locals)?;
                c.expect_punct('(')?;
                let mut args = Vec::new();
                if !c.eat_punct(')') {
                    loop {
                        let aty = self.parse_type(c)?;
                        args.push(self.parse_value(c, aty, locals)?);
                        if c.eat_punct(')') {
                            break;
                        }
                        c.expect_punct(',')?;
                    }
                }
                if word == "call" {
                    Ok((Inst::Call { callee, args }, ret))
                } else {
                    c.expect_word("to")?;
                    c.expect_word("label")?;
                    let normal = self.parse_label_ref(c, blocks)?;
                    c.expect_word("unwind")?;
                    c.expect_word("label")?;
                    let unwind = self.parse_label_ref(c, blocks)?;
                    Ok((
                        Inst::Invoke {
                            callee,
                            args,
                            normal,
                            unwind,
                        },
                        ret,
                    ))
                }
            }
            "unwind" => Ok((Inst::Unwind, void)),
            "unreachable" => Ok((Inst::Unreachable, void)),
            "malloc" | "alloca" => {
                let elem_ty = self.parse_type(c)?;
                let count = if c.eat_punct(',') {
                    let cty = self.parse_type(c)?;
                    Some(self.parse_value(c, cty, locals)?)
                } else {
                    None
                };
                let pty = self.module.types.ptr(elem_ty);
                let inst = if word == "malloc" {
                    Inst::Malloc { elem_ty, count }
                } else {
                    Inst::Alloca { elem_ty, count }
                };
                Ok((inst, pty))
            }
            "free" => {
                let ty = self.parse_type(c)?;
                let v = self.parse_value(c, ty, locals)?;
                Ok((Inst::Free(v), void))
            }
            "load" => {
                let ty = self.parse_type(c)?;
                let ptr = self.parse_value(c, ty, locals)?;
                let pointee = self.module.types.pointee(ty).ok_or_else(|| ParseError {
                    line: c.line,
                    message: "load type must be a pointer".into(),
                })?;
                Ok((Inst::Load { ptr }, pointee))
            }
            "store" => {
                let vty = self.parse_type(c)?;
                let val = self.parse_value(c, vty, locals)?;
                c.expect_punct(',')?;
                let pty = self.parse_type(c)?;
                let ptr = self.parse_value(c, pty, locals)?;
                Ok((Inst::Store { val, ptr }, void))
            }
            "getelementptr" => {
                let bty = self.parse_type(c)?;
                let ptr = self.parse_value(c, bty, locals)?;
                let mut indices = Vec::new();
                let mut index_tys = Vec::new();
                while c.eat_punct(',') {
                    let ity = self.parse_type(c)?;
                    indices.push(self.parse_value(c, ity, locals)?);
                    index_tys.push(ity);
                }
                let elem = self.walk_gep(c, bty, &indices)?;
                let rty = self.module.types.ptr(elem);
                Ok((Inst::Gep { ptr, indices }, rty))
            }
            "phi" => {
                let ty = self.parse_type(c)?;
                let mut incoming = Vec::new();
                loop {
                    c.expect_punct('[')?;
                    let v = self.parse_value(c, ty, locals)?;
                    c.expect_punct(',')?;
                    let b = self.parse_label_ref(c, blocks)?;
                    c.expect_punct(']')?;
                    incoming.push((v, b));
                    if !c.eat_punct(',') {
                        break;
                    }
                }
                Ok((Inst::Phi { incoming }, ty))
            }
            "cast" => {
                let fty = self.parse_type(c)?;
                let v = self.parse_value(c, fty, locals)?;
                c.expect_word("to")?;
                let to = self.parse_type(c)?;
                Ok((Inst::Cast { val: v, to }, to))
            }
            "vaarg" => {
                let ty = self.parse_type(c)?;
                Ok((Inst::VaArg { ty }, ty))
            }
            other => c.err(format!("unknown opcode '{other}'")),
        }
    }

    /// Resolve a GEP's element type from the base pointer type and the
    /// parsed indices (struct indices must be constants).
    fn walk_gep(&self, c: &Cur<'_>, base: TypeId, indices: &[Value]) -> PResult<TypeId> {
        let tys = &self.module.types;
        let mut cur = tys.pointee(base).ok_or_else(|| ParseError {
            line: c.line,
            message: "getelementptr base must be a pointer".into(),
        })?;
        for (i, idx) in indices.iter().enumerate() {
            if i == 0 {
                continue; // first index steps over the pointer
            }
            match tys.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let cid = match idx {
                        Value::Const(cid) => *cid,
                        _ => {
                            return Err(ParseError {
                                line: c.line,
                                message: "struct index must be constant".into(),
                            })
                        }
                    };
                    let (_, v) = self.module.consts.as_int(cid).ok_or_else(|| ParseError {
                        line: c.line,
                        message: "struct index must be an integer constant".into(),
                    })?;
                    cur = *fields.get(v as usize).ok_or_else(|| ParseError {
                        line: c.line,
                        message: format!("struct index {v} out of range"),
                    })?;
                }
                Type::Array { elem, .. } => cur = elem,
                _ => {
                    return Err(ParseError {
                        line: c.line,
                        message: "cannot index into non-aggregate".into(),
                    })
                }
            }
        }
        Ok(cur)
    }

    fn parse_label_ref(
        &self,
        c: &mut Cur<'_>,
        blocks: &HashMap<String, BlockId>,
    ) -> PResult<BlockId> {
        match c.next() {
            Some(Tok::Local(n)) => blocks.get(n).copied().ok_or_else(|| ParseError {
                line: c.line,
                message: format!("unknown label %{n}"),
            }),
            other => c.err(format!("expected a label, found {other:?}")),
        }
    }

    fn parse_callee(&mut self, c: &mut Cur<'_>, locals: &HashMap<String, Value>) -> PResult<Value> {
        match c.peek() {
            Some(Tok::Global(n)) => {
                let n = n.clone();
                c.next();
                if let Some(f) = self.module.func_by_name(&n) {
                    Ok(Value::Const(self.module.consts.func_addr(f)))
                } else if let Some(g) = self.module.global_by_name(&n) {
                    Ok(Value::Const(self.module.consts.global_addr(g)))
                } else {
                    c.err(format!("unknown symbol @{n}"))
                }
            }
            Some(Tok::Local(n)) => {
                let n = n.clone();
                c.next();
                locals.get(&n).copied().ok_or_else(|| ParseError {
                    line: c.line,
                    message: format!("unknown value %{n}"),
                })
            }
            other => c.err(format!("expected a callee, found {other:?}")),
        }
    }

    /// Parse a value of expected type `ty`: a local, a symbol address, or a
    /// constant literal.
    fn parse_value(
        &mut self,
        c: &mut Cur<'_>,
        ty: TypeId,
        locals: &HashMap<String, Value>,
    ) -> PResult<Value> {
        match c.peek() {
            Some(Tok::Local(n)) => {
                let n = n.clone();
                c.next();
                locals.get(&n).copied().ok_or_else(|| ParseError {
                    line: c.line,
                    message: format!("unknown value %{n}"),
                })
            }
            _ => Ok(Value::Const(self.parse_const(c, ty)?)),
        }
    }

    /// Parse a constant literal of expected type `ty`.
    fn parse_const(&mut self, c: &mut Cur<'_>, ty: TypeId) -> PResult<ConstId> {
        let tys_ty = self.module.types.ty(ty).clone();
        match c.next() {
            Some(Tok::Num(s)) => {
                let kind = match tys_ty {
                    Type::Int(k) => k,
                    _ => {
                        return c.err(format!(
                            "integer literal for non-integer type {}",
                            self.module.types.display(ty)
                        ))
                    }
                };
                let value = if kind.is_signed() || s.starts_with('-') {
                    s.parse::<i64>().map_err(|_| ParseError {
                        line: c.line,
                        message: "integer literal out of range".into(),
                    })?
                } else {
                    s.parse::<u64>().map_err(|_| ParseError {
                        line: c.line,
                        message: "integer literal out of range".into(),
                    })? as i64
                };
                Ok(self.module.consts.int(kind, value))
            }
            Some(Tok::Hex(v, w)) => match tys_ty {
                Type::F32 if *w <= 8 => Ok(self.module.consts.intern(Const::F32(*v as u32))),
                Type::F64 => Ok(self.module.consts.intern(Const::F64(*v))),
                Type::Int(k) => Ok(self.module.consts.int(k, *v as i64)),
                _ => c.err("hex literal for non-numeric type"),
            },
            Some(Tok::Word(w)) => match w.as_str() {
                "true" => Ok(self.module.consts.bool_(true)),
                "false" => Ok(self.module.consts.bool_(false)),
                "null" => Ok(self.module.consts.null(ty)),
                "undef" => Ok(self.module.consts.undef(ty)),
                "zeroinitializer" => Ok(self.module.consts.zero(ty)),
                other => c.err(format!("unexpected constant '{other}'")),
            },
            Some(Tok::Global(n)) => {
                let n = n.clone();
                if let Some(f) = self.module.func_by_name(&n) {
                    Ok(self.module.consts.func_addr(f))
                } else if let Some(g) = self.module.global_by_name(&n) {
                    Ok(self.module.consts.global_addr(g))
                } else {
                    c.err(format!("unknown symbol @{n}"))
                }
            }
            Some(Tok::Str(bytes)) => {
                // c"..." sugar: [N x sbyte] array.
                let elems: Vec<ConstId> = bytes
                    .iter()
                    .map(|&b| self.module.consts.int(IntKind::S8, b as i64))
                    .collect();
                Ok(self.module.consts.array(ty, elems))
            }
            Some(Tok::Punct('[')) => {
                let elem_ty = match tys_ty {
                    Type::Array { elem, .. } => elem,
                    _ => return c.err("array literal for non-array type"),
                };
                let mut elems = Vec::new();
                if !c.eat_punct(']') {
                    loop {
                        let ety = self.parse_type(c)?;
                        if ety != elem_ty {
                            return c.err("array element type mismatch");
                        }
                        elems.push(self.parse_const(c, ety)?);
                        if c.eat_punct(']') {
                            break;
                        }
                        c.expect_punct(',')?;
                    }
                }
                Ok(self.module.consts.array(ty, elems))
            }
            Some(Tok::Punct('{')) => {
                let ftys = match tys_ty {
                    Type::Struct { fields, .. } => fields,
                    _ => return c.err("struct literal for non-struct type"),
                };
                let mut fields = Vec::new();
                if !c.eat_punct('}') {
                    loop {
                        let fty = self.parse_type(c)?;
                        fields.push(self.parse_const(c, fty)?);
                        if c.eat_punct('}') {
                            break;
                        }
                        c.expect_punct(',')?;
                    }
                }
                if fields.len() != ftys.len() {
                    return c.err("struct literal arity mismatch");
                }
                Ok(self.module.consts.struct_(ty, fields))
            }
            other => c.err(format!("expected a constant, found {other:?}")),
        }
    }
}
