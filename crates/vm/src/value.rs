//! Runtime values of the execution engine.

use lpat_core::{IntKind, Type, TypeCtx, TypeId};

/// A first-class runtime value: exactly the types SSA registers can hold.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum VmValue {
    /// A boolean.
    Bool(bool),
    /// An integer with its kind; payload canonicalized (see
    /// [`IntKind::canonicalize`]).
    Int {
        /// Integer kind.
        kind: IntKind,
        /// Canonical payload.
        v: i64,
    },
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// A pointer (byte address in the VM's simulated memory; 0 is null).
    Ptr(u32),
}

impl VmValue {
    /// Construct a canonicalized integer.
    pub fn int(kind: IntKind, v: i64) -> VmValue {
        VmValue::Int {
            kind,
            v: kind.canonicalize(v),
        }
    }

    /// The zero/default value of a first-class type.
    pub fn zero_of(tc: &TypeCtx, ty: TypeId) -> VmValue {
        match tc.ty(ty) {
            Type::Bool => VmValue::Bool(false),
            Type::Int(k) => VmValue::Int { kind: *k, v: 0 },
            Type::F32 => VmValue::F32(0.0),
            Type::F64 => VmValue::F64(0.0),
            Type::Ptr(_) => VmValue::Ptr(0),
            other => panic!("no zero value for non-first-class type {other:?}"),
        }
    }

    /// Interpret as an `i64` (integers and bools).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            VmValue::Int { v, .. } => Some(*v),
            VmValue::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret as a pointer.
    pub fn as_ptr(&self) -> Option<u32> {
        match self {
            VmValue::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Interpret as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            VmValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Size in bytes when stored to memory.
    pub fn byte_size(&self) -> u32 {
        match self {
            VmValue::Bool(_) => 1,
            VmValue::Int { kind, .. } => kind.bytes() as u32,
            VmValue::F32(_) => 4,
            VmValue::F64(_) => 8,
            VmValue::Ptr(_) => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_on_construction() {
        assert_eq!(VmValue::int(IntKind::U8, 300).as_i64(), Some(44));
        assert_eq!(VmValue::int(IntKind::S8, 255).as_i64(), Some(-1));
    }

    #[test]
    fn zero_values() {
        let tc = TypeCtx::new();
        assert_eq!(VmValue::zero_of(&tc, tc.bool_()), VmValue::Bool(false));
        assert_eq!(VmValue::zero_of(&tc, tc.f64()), VmValue::F64(0.0));
    }
}
