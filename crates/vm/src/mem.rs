//! The simulated memory of the execution engine.
//!
//! A flat, byte-addressed 32-bit address space (matching the ILP32 layout
//! the type system assumes): address 0 is null, a low window holds
//! synthetic *function addresses* (so function pointers are ordinary
//! pointers), globals follow, and the rest is a heap served by a bump
//! allocator with a first-fit free list. `alloca` storage comes from the
//! same allocator and is released when its frame returns.

use crate::error::{ExecError, TrapKind};
use crate::value::VmValue;
use lpat_core::IntKind;

/// Base address of the synthetic function-address window.
pub const FUNC_BASE: u32 = 0x10;
/// Each function occupies this many synthetic bytes.
pub const FUNC_STRIDE: u32 = 4;

/// Allocator traffic counters. Maintained unconditionally (plain integer
/// adds, far cheaper than any conditional would save) and folded into the
/// trace/metrics layer at run end by `Vm::flush_trace`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful [`Memory::alloc`] calls (including free-list reuse).
    pub allocs: u64,
    /// Successful [`Memory::release`] calls.
    pub frees: u64,
    /// Free-list merges performed by [`Memory::release`] (predecessor and
    /// successor merges count separately).
    pub coalesces: u64,
    /// Highest break observed, in bytes.
    pub peak_bytes: u64,
}

/// Simulated memory.
pub struct Memory {
    bytes: Vec<u8>,
    limit: u32,
    brk: u32,
    /// First-fit free list of `(addr, size)`, kept sorted by address and
    /// maximally coalesced: no two entries are adjacent.
    free: Vec<(u32, u32)>,
    /// Live heap allocations (`addr -> size`) for `free` validation.
    live: std::collections::HashMap<u32, u32>,
    /// Number of functions (for function-pointer decoding).
    n_funcs: u32,
    /// Allocator traffic counters.
    stats: HeapStats,
}

impl Memory {
    /// Create a memory with the given byte limit, with the allocation
    /// cursor placed after the function window for `n_funcs` functions.
    pub fn new(limit: u32, n_funcs: u32) -> Memory {
        let brk = FUNC_BASE + n_funcs * FUNC_STRIDE;
        let brk = align8(brk);
        Memory {
            bytes: vec![0; 4096.min(limit) as usize],
            limit,
            brk,
            free: Vec::new(),
            live: std::collections::HashMap::new(),
            n_funcs,
            stats: HeapStats {
                peak_bytes: brk as u64,
                ..HeapStats::default()
            },
        }
    }

    /// The synthetic address of function `idx`.
    pub fn func_addr(idx: usize) -> u32 {
        FUNC_BASE + idx as u32 * FUNC_STRIDE
    }

    /// Decode a pointer into a function index if it falls in the function
    /// window.
    pub fn addr_to_func(&self, addr: u32) -> Option<usize> {
        if addr >= FUNC_BASE && addr < FUNC_BASE + self.n_funcs * FUNC_STRIDE {
            let off = addr - FUNC_BASE;
            if off.is_multiple_of(FUNC_STRIDE) {
                return Some((off / FUNC_STRIDE) as usize);
            }
        }
        None
    }

    fn ensure(&mut self, end: u32) -> Result<(), ExecError> {
        if end > self.limit {
            return Err(ExecError::trap(
                TrapKind::OutOfMemory,
                "address space exhausted",
            ));
        }
        if end as usize > self.bytes.len() {
            let new_len = (end as usize).next_power_of_two().min(self.limit as usize);
            self.bytes.resize(new_len, 0);
        }
        Ok(())
    }

    /// Allocate `size` bytes (8-byte aligned). `size == 0` allocates 8.
    pub fn alloc(&mut self, size: u32) -> Result<u32, ExecError> {
        let size = align8(size.max(1));
        // First fit. Splitting in place (or removing in place) keeps the
        // list address-sorted, which coalescing in `release` relies on.
        if let Some(pos) = self.free.iter().position(|&(_, s)| s >= size) {
            let (addr, s) = self.free[pos];
            if s > size {
                self.free[pos] = (addr + size, s - size);
            } else {
                self.free.remove(pos);
            }
            self.live.insert(addr, size);
            self.stats.allocs += 1;
            return Ok(addr);
        }
        let addr = self.brk;
        let end = addr
            .checked_add(size)
            .ok_or_else(|| ExecError::trap(TrapKind::OutOfMemory, "address wraparound"))?;
        self.ensure(end)?;
        self.brk = end;
        self.live.insert(addr, size);
        self.stats.allocs += 1;
        self.stats.peak_bytes = self.stats.peak_bytes.max(end as u64);
        Ok(addr)
    }

    /// Release an allocation made by [`Memory::alloc`], coalescing the
    /// freed block with adjacent free neighbors so interleaved
    /// alloc/free churn cannot shatter the heap into unusable slivers.
    ///
    /// # Errors
    ///
    /// Traps on double free or a pointer that is not an allocation start.
    pub fn release(&mut self, addr: u32) -> Result<(), ExecError> {
        let size = self.live.remove(&addr).ok_or_else(|| {
            ExecError::trap(
                TrapKind::BadFree,
                format!("free of non-allocated address {addr:#x}"),
            )
        })?;
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        let mut start = addr;
        let mut end = addr + size;
        // Merge with the predecessor if it ends exactly at `start`...
        let mut remove_pred = false;
        if pos > 0 {
            let (pa, ps) = self.free[pos - 1];
            if pa + ps == start {
                start = pa;
                remove_pred = true;
            }
        }
        // ...and with the successor if it begins exactly at `end`.
        let mut remove_succ = false;
        if pos < self.free.len() {
            let (na, ns) = self.free[pos];
            if na == end {
                end = na + ns;
                remove_succ = true;
            }
        }
        if remove_succ {
            self.free.remove(pos);
            self.stats.coalesces += 1;
        }
        if remove_pred {
            self.free[pos - 1] = (start, end - start);
            self.stats.coalesces += 1;
        } else {
            self.free.insert(pos, (start, end - start));
        }
        self.stats.frees += 1;
        // A block ending at the break returns to the break entirely, so
        // a fully drained heap costs nothing.
        if let Some(&(a, s)) = self.free.last() {
            if a + s == self.brk {
                self.free.pop();
                self.brk = a;
            }
        }
        Ok(())
    }

    /// Number of distinct blocks on the free list — a fragmentation
    /// metric for tests; coalescing keeps it small.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    fn check_range(&mut self, addr: u32, size: u32) -> Result<(), ExecError> {
        if addr == 0 {
            return Err(ExecError::trap(TrapKind::NullAccess, "null dereference"));
        }
        if self.addr_to_func(addr).is_some() {
            return Err(ExecError::trap(
                TrapKind::BadAccess,
                "data access to a function address",
            ));
        }
        let end = addr
            .checked_add(size)
            .ok_or_else(|| ExecError::trap(TrapKind::BadAccess, "address wraparound"))?;
        self.ensure(end)
    }

    /// Read `size` bytes.
    pub fn read_bytes(&mut self, addr: u32, size: u32) -> Result<&[u8], ExecError> {
        self.check_range(addr, size)?;
        Ok(&self.bytes[addr as usize..(addr + size) as usize])
    }

    /// Write raw bytes.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), ExecError> {
        self.check_range(addr, data.len() as u32)?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Store a first-class value at `addr` (little-endian).
    pub fn store(&mut self, addr: u32, v: VmValue) -> Result<(), ExecError> {
        match v {
            VmValue::Bool(b) => self.write_bytes(addr, &[b as u8]),
            VmValue::Int { kind, v } => {
                let bytes = v.to_le_bytes();
                self.write_bytes(addr, &bytes[..kind.bytes() as usize])
            }
            VmValue::F32(f) => self.write_bytes(addr, &f.to_le_bytes()),
            VmValue::F64(f) => self.write_bytes(addr, &f.to_le_bytes()),
            VmValue::Ptr(p) => self.write_bytes(addr, &p.to_le_bytes()),
        }
    }

    /// Load a value of integer kind `kind`.
    pub fn load_int(&mut self, addr: u32, kind: IntKind) -> Result<VmValue, ExecError> {
        let n = kind.bytes() as usize;
        let b = self.read_bytes(addr, n as u32)?;
        let mut raw = [0u8; 8];
        raw[..n].copy_from_slice(b);
        Ok(VmValue::int(kind, i64::from_le_bytes(raw)))
    }

    /// Load a bool.
    pub fn load_bool(&mut self, addr: u32) -> Result<VmValue, ExecError> {
        let b = self.read_bytes(addr, 1)?;
        Ok(VmValue::Bool(b[0] != 0))
    }

    /// Load an `f32`.
    pub fn load_f32(&mut self, addr: u32) -> Result<VmValue, ExecError> {
        let b = self.read_bytes(addr, 4)?;
        Ok(VmValue::F32(f32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Load an `f64`.
    pub fn load_f64(&mut self, addr: u32) -> Result<VmValue, ExecError> {
        let b = self.read_bytes(addr, 8)?;
        Ok(VmValue::F64(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    /// Load a pointer.
    pub fn load_ptr(&mut self, addr: u32) -> Result<VmValue, ExecError> {
        let b = self.read_bytes(addr, 4)?;
        Ok(VmValue::Ptr(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
    }

    /// Read a NUL-terminated string (for I/O intrinsics).
    pub fn read_cstr(&mut self, addr: u32, max: u32) -> Result<Vec<u8>, ExecError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read_bytes(a, 1)?[0];
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            // A string butting against the top of the address space must
            // trap, not wrap around to scan from address 0.
            a = a.checked_add(1).ok_or_else(|| {
                ExecError::trap(TrapKind::BadAccess, "string runs off address space")
            })?;
            if out.len() as u32 >= max {
                return Ok(out);
            }
        }
    }

    /// Current break (for statistics).
    pub fn high_water(&self) -> u32 {
        self.brk
    }

    /// Allocator traffic counters accumulated so far.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }
}

fn align8(x: u32) -> u32 {
    (x + 7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let mut m = Memory::new(1 << 20, 0);
        let a = m.alloc(16).unwrap();
        let b = m.alloc(16).unwrap();
        assert_ne!(a, b);
        m.release(a).unwrap();
        let c = m.alloc(8).unwrap();
        assert_eq!(c, a, "first-fit reuses the freed block");
        m.release(c).unwrap();
        assert!(m.release(c).is_err(), "double free traps");
    }

    #[test]
    fn store_load_roundtrip() {
        let mut m = Memory::new(1 << 20, 0);
        let a = m.alloc(64).unwrap();
        m.store(a, VmValue::int(IntKind::S32, -7)).unwrap();
        assert_eq!(m.load_int(a, IntKind::S32).unwrap().as_i64(), Some(-7));
        m.store(a + 8, VmValue::F64(2.5)).unwrap();
        assert_eq!(m.load_f64(a + 8).unwrap(), VmValue::F64(2.5));
        m.store(a + 16, VmValue::Ptr(a)).unwrap();
        assert_eq!(m.load_ptr(a + 16).unwrap(), VmValue::Ptr(a));
        m.store(a + 20, VmValue::Bool(true)).unwrap();
        assert_eq!(m.load_bool(a + 20).unwrap(), VmValue::Bool(true));
    }

    #[test]
    fn null_and_function_window_trap() {
        let mut m = Memory::new(1 << 20, 2);
        assert!(m.store(0, VmValue::Bool(true)).is_err());
        let fa = Memory::func_addr(1);
        assert_eq!(m.addr_to_func(fa), Some(1));
        assert!(m.load_int(fa, IntKind::S32).is_err());
    }

    #[test]
    fn out_of_memory_traps() {
        let mut m = Memory::new(4096, 0);
        assert!(m.alloc(1 << 20).is_err());
    }

    #[test]
    fn coalescing_defeats_fragmentation() {
        // Regression: before coalescing, freeing N small blocks left N
        // slivers none of which could serve one large request, forcing
        // break growth on a heap that is entirely free.
        let mut m = Memory::new(1 << 20, 0);
        let blocks: Vec<u32> = (0..64).map(|_| m.alloc(16).unwrap()).collect();
        let high = m.high_water();
        // Free every other block first, then the rest — maximally
        // interleaved order, worst case for a non-coalescing list.
        for &b in blocks.iter().step_by(2) {
            m.release(b).unwrap();
        }
        for &b in blocks.iter().skip(1).step_by(2) {
            m.release(b).unwrap();
        }
        assert_eq!(
            m.free_blocks(),
            0,
            "fully drained heap coalesces into the break"
        );
        let big = m.alloc(64 * 16).unwrap();
        assert_eq!(big, blocks[0], "large request reuses the freed span");
        assert_eq!(m.high_water(), high, "no break growth on a free heap");
    }

    #[test]
    fn coalescing_merges_neighbors_in_both_orders() {
        let mut m = Memory::new(1 << 20, 0);
        let a = m.alloc(16).unwrap();
        let b = m.alloc(16).unwrap();
        let c = m.alloc(16).unwrap();
        let _hold = m.alloc(16).unwrap(); // keeps the span off the break
        m.release(a).unwrap();
        m.release(c).unwrap();
        assert_eq!(m.free_blocks(), 2, "a and c are not adjacent");
        m.release(b).unwrap();
        assert_eq!(m.free_blocks(), 1, "freeing b merges a+b+c");
        assert_eq!(m.alloc(48).unwrap(), a, "merged span serves 3x request");
    }

    #[test]
    fn heap_stats_count_traffic() {
        let mut m = Memory::new(1 << 20, 0);
        let a = m.alloc(16).unwrap();
        let b = m.alloc(16).unwrap();
        let c = m.alloc(16).unwrap();
        let _hold = m.alloc(16).unwrap();
        m.release(a).unwrap();
        m.release(c).unwrap();
        m.release(b).unwrap(); // merges with both neighbors
        let s = m.stats();
        assert_eq!(s.allocs, 4);
        assert_eq!(s.frees, 3);
        assert_eq!(s.coalesces, 2, "b merged into predecessor and successor");
        assert_eq!(s.peak_bytes, m.high_water() as u64);
        assert!(m.release(a).is_err());
        assert_eq!(m.stats().frees, 3, "failed free not counted");
    }

    #[test]
    fn cstr_at_address_space_top_traps_instead_of_wrapping() {
        let mut m = Memory::new(4096, 0);
        let a = m.alloc(16).unwrap();
        m.write_bytes(a, b"hi\0").unwrap();
        assert_eq!(m.read_cstr(a, 64).unwrap(), b"hi");
        // A scan that would run past the top of the 32-bit space must
        // come back as a trap, never wrap to address 0 or panic.
        assert!(m.read_cstr(u32::MAX - 2, 64).is_err());
        assert!(m.read_cstr(u32::MAX, 64).is_err());
    }
}
