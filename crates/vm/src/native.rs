//! # Tier-3 native execution: a fuel-metered risc32 machine-code emulator
//!
//! Runs the binary words produced by `lpat_codegen::fast` (see that
//! module for the value model and encoding). The words are **decoded
//! once** at translation time into a dense op array — the standard
//! pre-decoded-dispatch technique — so the hot loop is a flat `u32`
//! register file, a `match` on an op byte, and wrapping 32-bit
//! arithmetic: no tagged values, no `Option`, no per-operand enum walk.
//!
//! ## Exact observational parity
//!
//! The contract with the interpreter (enforced by `tests/tiered.rs`) is
//! that output, return value, trap kind, remaining fuel, the opcode
//! histogram and profile counters are identical:
//!
//! * **fuel / histogram** — every decoded op carries the accounting tag
//!   ([`lpat_codegen::fast::enc::ACCT`]) of the IR instruction it begins,
//!   charged through [`Vm::charge_native`] *before* the op executes, so
//!   fuel exhaustion traps on exactly the same IR instruction as the
//!   interpreter and each IR instruction is charged exactly once;
//! * **memory traps** — loads/stores go through the same [`Memory`]
//!   access checks (NullAccess / BadAccess / OutOfMemory), at the same
//!   width (an `L64` load checks all 8 bytes before keeping the low
//!   word);
//! * **arithmetic traps** — division/remainder by zero trap with the
//!   interpreter's messages; signed 32-bit wrapping matches canonical
//!   `i64` arithmetic bit-for-bit for every exact class;
//! * **calls / unwinding** — call boundaries rebuild real `VmValue`
//!   scalars from class-tagged registers, so externals, profile
//!   counters, invoke edges and unwinding behave identically.
//!
//! Values whose class the native model cannot carry exactly never cross
//! a boundary: `translate_fast` bails the whole function and the tier
//! ladder leaves it on the JIT tier (see `tier.rs`).
//!
//! ## Boundary fallbacks
//!
//! A native frame is only built when every actual argument matches the
//! declared parameter class ([`make_native_frame`] returns `None`
//! otherwise and the caller falls back to the JIT tier, which handles
//! any value). The one boundary with no fallback is a *returned* value
//! of the wrong kind reaching a waiting native frame — possible only in
//! unverified, type-confused modules — which traps as `Invalid` rather
//! than silently reinterpreting bits (documented in DESIGN.md §16).

use std::cell::Cell;
use std::rc::Rc;

use lpat_codegen::fast::{
    enc, translate_fast, Class, FastCall, FastCallee, FastCopy, FastEnv, FastFunc, FastSwitch,
    Home, Src,
};
use lpat_core::trace;
use lpat_core::{BlockId, FuncId, InstId, IntKind};

use crate::error::{ExecError, TrapKind};
use crate::interp::{Frame, Vm};
use crate::jit::{Flow, JitFrame};
use crate::mem::Memory;
use crate::value::VmValue;

// ----------------------------------------------------------------------
// Decoded form
// ----------------------------------------------------------------------

/// One pre-decoded op. `imm` is pre-massaged per op (sign-extended for
/// `ADDI`, shifted for `LUI`, raw index otherwise); `acct` is the IR
/// opcode index + 1 to charge before executing, 0 for none.
#[derive(Copy, Clone)]
struct NOp {
    op: u8,
    a: u8,
    b: u8,
    c: u8,
    extra: u16,
    acct: u16,
    imm: u32,
}

/// A decoded edge: φ-copies (already sequentialised by the encoder) and
/// the decoded-index branch target.
struct NatEdge {
    copies: Vec<FastCopy>,
    target: u32,
    from: u32,
    to: u32,
}

/// A decoded call descriptor with its inline cache.
struct NatCall {
    desc: FastCall,
    ic: Cell<(u32, u32)>,
}

/// A function's decoded native code plus the home tables that make frame
/// conversion (entry, OSR) a table-driven copy.
pub(crate) struct NatCode {
    ops: Vec<NOp>,
    /// Decoded-op index of each block start (the OSR entry points).
    block_dec: Vec<u32>,
    edges: Vec<NatEdge>,
    calls: Vec<NatCall>,
    switches: Vec<FastSwitch>,
    n_slots: u32,
    arg_homes: Vec<(Home, Class)>,
    homes: Vec<Option<(Home, Class)>>,
}

/// Decode the word buffer into the dense dispatch form. Accounting words
/// disappear into the following op's `acct` tag; branch targets are
/// remapped from word indices to decoded indices.
fn decode(ff: FastFunc) -> NatCode {
    let mut ops: Vec<NOp> = Vec::with_capacity(ff.words.len());
    let mut word_to_dec: Vec<u32> = Vec::with_capacity(ff.words.len() + 1);
    let mut pending: u16 = 0;
    for &w in &ff.words {
        word_to_dec.push(ops.len() as u32);
        let op = enc::op(w);
        if op == enc::ACCT {
            pending = enc::idx24(w) as u16 + 1;
            continue;
        }
        let imm = match op {
            enc::ADDI | enc::LDI => enc::simm14(w) as u32,
            enc::LUI => enc::imm19(w) << 13,
            enc::ORI | enc::LDS | enc::STS | enc::CBNZ | enc::SWITCH | enc::RET => enc::uimm14(w),
            enc::BR | enc::CALLD | enc::UNWIND | enc::UNREACHABLE => enc::idx24(w),
            _ => 0,
        };
        // LUI decodes to LDI-with-full-immediate: one hot-loop case.
        let op = if op == enc::LUI { enc::LDI } else { op };
        ops.push(NOp {
            op,
            a: enc::rd(w),
            b: enc::ra(w),
            c: enc::rb(w),
            extra: enc::extra(w),
            acct: pending,
            imm,
        });
        pending = 0;
    }
    word_to_dec.push(ops.len() as u32);
    let block_dec = ff
        .block_word
        .iter()
        .map(|&w| word_to_dec[w as usize])
        .collect();
    let edges = ff
        .edges
        .into_iter()
        .map(|e| NatEdge {
            copies: e.copies,
            target: word_to_dec[e.target as usize],
            from: e.from,
            to: e.to,
        })
        .collect();
    let calls = ff
        .calls
        .into_iter()
        .map(|desc| NatCall {
            desc,
            ic: Cell::new((0, 0)),
        })
        .collect();
    NatCode {
        ops,
        block_dec,
        edges,
        calls,
        switches: ff.switches,
        n_slots: ff.n_slots,
        arg_homes: ff.arg_homes,
        homes: ff.homes,
    }
}

// ----------------------------------------------------------------------
// Frames and value boundaries
// ----------------------------------------------------------------------

/// A native activation record: flat `u32` registers plus spill slots.
pub(crate) struct NatFrame {
    pub(crate) func: FuncId,
    pub(crate) code: Rc<NatCode>,
    pub(crate) regs: [u32; enc::NUM_REGS],
    pub(crate) slots: Vec<u32>,
    pub(crate) pc: usize,
    pub(crate) allocas: Vec<u32>,
    /// Suspended call site: return-value home/class and invoke edges.
    pub(crate) pending: Option<PendingCall>,
}

/// What a suspended native call site needs on resume: where the return
/// value lands (if any) and the invoke edges (ok, unwind) if the call
/// was an `invoke`.
pub(crate) type PendingCall = (Option<(Home, Class)>, Option<(u32, u32)>);

impl NatFrame {
    #[inline]
    pub(crate) fn put(&mut self, h: Home, v: u32) {
        match h {
            Home::Reg(r) => self.regs[r as usize] = v,
            Home::Slot(s) => self.slots[s as usize] = v,
        }
    }

    #[inline]
    fn get(&self, s: Src) -> u32 {
        match s {
            Src::Reg(r) => self.regs[r as usize],
            Src::Slot(s) => self.slots[s as usize],
            Src::Imm(k) => k,
        }
    }
}

/// Low 32 bits of any scalar — the native register image of a value.
/// Truncation is always sound in this direction (registers are defined
/// as the canonical value's low word).
#[inline]
pub(crate) fn low32(v: &VmValue) -> u32 {
    match *v {
        VmValue::Bool(b) => b as u32,
        VmValue::Int { v, .. } => v as u32,
        VmValue::F32(f) => f.to_bits(),
        VmValue::F64(f) => f.to_bits() as u32,
        VmValue::Ptr(p) => p,
    }
}

/// Rebuild the exact scalar a class-tagged register represents. Only
/// exact classes cross value boundaries; `L64` is rejected at translate
/// time, so reaching it here is a translator bug.
#[inline]
fn value_of(reg: u32, c: Class) -> VmValue {
    match c {
        Class::Bool => VmValue::Bool(reg != 0),
        Class::S8 => VmValue::int(IntKind::S8, reg as i32 as i64),
        Class::U8 => VmValue::int(IntKind::U8, reg as i64),
        Class::S16 => VmValue::int(IntKind::S16, reg as i32 as i64),
        Class::U16 => VmValue::int(IntKind::U16, reg as i64),
        Class::S32 => VmValue::int(IntKind::S32, reg as i32 as i64),
        Class::U32 => VmValue::int(IntKind::U32, reg as i64),
        Class::Ptr => VmValue::Ptr(reg),
        Class::L64 => unreachable!("L64 never crosses a value boundary"),
    }
}

/// Whether a runtime scalar has exactly the class the native code was
/// compiled for (the class invariant native registers rely on).
pub(crate) fn matches_class(v: &VmValue, c: Class) -> bool {
    match v {
        VmValue::Bool(_) => c == Class::Bool,
        VmValue::Int { kind, .. } => Class::of_kind(*kind) == c,
        VmValue::Ptr(_) => c == Class::Ptr,
        VmValue::F32(_) | VmValue::F64(_) => false,
    }
}

impl<'m> Vm<'m> {
    /// Charge one native-tier instruction. Identical accounting to
    /// [`Vm::charge_interp`] / [`Vm::charge_jit`] — fuel and the opcode
    /// histogram stay engine-independent — attributed to the native tier.
    #[inline]
    pub(crate) fn charge_native(&mut self, opidx: usize) -> Result<(), ExecError> {
        if let Some(fuel) = &mut self.opts.fuel {
            if *fuel == 0 {
                return Err(ExecError::trap(TrapKind::OutOfFuel, "instruction budget"));
            }
            *fuel -= 1;
        }
        self.insts_executed += 1;
        self.tier_stats.native_insts += 1;
        self.opcode_counts[opidx] += 1;
        Ok(())
    }

    /// The native code of `f`, translating on first use. The
    /// `native.translate` fault site fires here, mirroring
    /// `jit.translate`: any injected non-delay action surfaces as a
    /// translation error, which the tier ladder answers with permanent
    /// demotion to the JIT tier (the program keeps running).
    pub(crate) fn ensure_native_translated(&mut self, f: FuncId) -> Result<Rc<NatCode>, ExecError> {
        if let Some(nc) = &self.native_cache[f.index()] {
            return Ok(nc.clone());
        }
        let mut sp = if trace::enabled() {
            Some(trace::span(
                "native",
                format!("native.translate @{}", self.module().func(f).name),
            ))
        } else {
            None
        };
        let t0 = std::time::Instant::now();
        let result = match lpat_core::faultpoint!("native.translate") {
            Some(lpat_core::fault::FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                self.translate_native(f)
            }
            Some(action) => Err(ExecError::trap(
                TrapKind::Invalid,
                format!("injected {action:?} fault at site 'native.translate'"),
            )),
            None => self.translate_native(f),
        };
        self.tier_stats.native_translate_ns += t0.elapsed().as_nanos() as u64;
        match result {
            Ok(nc) => {
                self.tier_stats.native_translated += 1;
                let rc = Rc::new(nc);
                self.native_cache[f.index()] = Some(rc.clone());
                Ok(rc)
            }
            Err(e) => {
                if let Some(sp) = &mut sp {
                    sp.arg("error", e.to_string());
                    trace::instant_args(
                        "native",
                        "bail-to-jit",
                        vec![
                            ("function", self.module().func(f).name.clone()),
                            ("error", e.to_string()),
                        ],
                    );
                }
                Err(e)
            }
        }
    }

    fn translate_native(&self, f: FuncId) -> Result<NatCode, ExecError> {
        let m = self.module();
        let globals: Vec<u32> = (0..m.num_globals())
            .map(|i| self.global_addr(lpat_core::GlobalId::from_index(i)))
            .collect();
        let spec = self.spec_map();
        let env = FastEnv {
            func_addr: &|f| Memory::func_addr(f.index()),
            global_addr: &|i| globals.get(i).copied(),
            guarded: &|iid| spec.is_some_and(|sm| sm.guard_at(f, iid).is_some()),
        };
        match translate_fast(m, f, &env) {
            Ok(ff) => Ok(decode(ff)),
            Err(e) => Err(ExecError::trap(
                TrapKind::Invalid,
                format!("native backend: {e}"),
            )),
        }
    }

    /// Build a native activation record for a call to `f`, or `None` when
    /// an actual argument does not match its declared class — the caller
    /// then falls back to a JIT frame, which represents anything.
    /// Records the call in the profile only on success.
    pub(crate) fn make_native_frame(
        &mut self,
        f: FuncId,
        args: &[VmValue],
    ) -> Result<Option<NatFrame>, ExecError> {
        let code = self.ensure_native_translated(f)?;
        if args.len() != code.arg_homes.len() {
            return Ok(None);
        }
        for (v, &(_, c)) in args.iter().zip(&code.arg_homes) {
            if !matches_class(v, c) {
                return Ok(None);
            }
        }
        if self.opts.profile {
            self.profile.record_call(f);
            self.profile.record_block(f, self.module().func(f).entry());
        }
        let mut slots = self.native_slot_pool.pop().unwrap_or_default();
        slots.clear();
        slots.resize(code.n_slots as usize, 0);
        let mut fr = NatFrame {
            func: f,
            code: code.clone(),
            regs: [0; enc::NUM_REGS],
            slots,
            pc: 0,
            allocas: Vec::new(),
            pending: None,
        };
        for (v, &(h, _)) in args.iter().zip(&code.arg_homes) {
            fr.put(h, low32(v));
        }
        Ok(Some(fr))
    }

    /// Release a popped native frame's allocas and recycle its slot slab.
    pub(crate) fn recycle_native_frame(&mut self, mut fr: NatFrame) -> Result<(), ExecError> {
        let mut slots = std::mem::take(&mut fr.slots);
        slots.clear();
        self.native_slot_pool.push(slots);
        for a in fr.allocas {
            self.mem.release(a)?;
        }
        Ok(())
    }

    /// Convert an interpreter frame at a block boundary (`idx == 0`) into
    /// a native frame — interpreter-to-native OSR. `None` when an actual
    /// argument defies its declared class; the caller falls back to JIT
    /// OSR. Homes are a pure function of `InstId`, so this is one
    /// table-driven copy (the `FrameMap` role for tier 3).
    pub(crate) fn native_frame_from_interp(
        &mut self,
        fr: &mut Frame,
    ) -> Result<Option<NatFrame>, ExecError> {
        let code = self.ensure_native_translated(fr.func)?;
        if fr.args.len() != code.arg_homes.len() {
            return Ok(None);
        }
        for (v, &(_, c)) in fr.args.iter().zip(&code.arg_homes) {
            if !matches_class(v, c) {
                return Ok(None);
            }
        }
        let mut slots = self.native_slot_pool.pop().unwrap_or_default();
        slots.clear();
        slots.resize(code.n_slots as usize, 0);
        let mut nf = NatFrame {
            func: fr.func,
            code: code.clone(),
            regs: [0; enc::NUM_REGS],
            slots,
            pc: code.block_dec[fr.block.index()] as usize,
            allocas: std::mem::take(&mut fr.allocas),
            pending: None,
        };
        for (v, &(h, _)) in fr.args.iter().zip(&code.arg_homes) {
            nf.put(h, low32(v));
        }
        for (i, home) in code.homes.iter().enumerate() {
            if let Some((h, _)) = home {
                // Unset registers keep the zero filler: definitions
                // dominate uses, so an unset register is unobservable.
                if let Some(Some(v)) = fr.regs.get(i) {
                    nf.put(*h, low32(v));
                }
            }
        }
        Ok(Some(nf))
    }

    /// Convert a JIT frame at a block boundary into a native frame —
    /// JIT-to-native OSR (same table as [`Vm::native_frame_from_interp`]).
    pub(crate) fn native_frame_from_jit(
        &mut self,
        fr: &mut JitFrame,
        block: u32,
    ) -> Result<Option<NatFrame>, ExecError> {
        let code = self.ensure_native_translated(fr.func)?;
        if fr.args.len() != code.arg_homes.len() {
            return Ok(None);
        }
        for (v, &(_, c)) in fr.args.iter().zip(&code.arg_homes) {
            if !matches_class(v, c) {
                return Ok(None);
            }
        }
        let mut slots = self.native_slot_pool.pop().unwrap_or_default();
        slots.clear();
        slots.resize(code.n_slots as usize, 0);
        let mut nf = NatFrame {
            func: fr.func,
            code: code.clone(),
            regs: [0; enc::NUM_REGS],
            slots,
            pc: code.block_dec[block as usize] as usize,
            allocas: std::mem::take(&mut fr.allocas),
            pending: None,
        };
        for (v, &(h, _)) in fr.args.iter().zip(&code.arg_homes) {
            nf.put(h, low32(v));
        }
        for (i, home) in code.homes.iter().enumerate() {
            if let Some((h, _)) = home {
                if let Some(v) = fr.regs.get(i) {
                    nf.put(*h, low32(v));
                }
            }
        }
        Ok(Some(nf))
    }
}

// ----------------------------------------------------------------------
// Execution
// ----------------------------------------------------------------------

/// Transfer control along edge `e`: apply the sequentialised φ-copies,
/// move the pc, and record the edge/block profile (matching the
/// interpreter's `transfer`).
#[inline]
pub(crate) fn take_nat_edge(vm: &mut Vm<'_>, fr: &mut NatFrame, code: &NatCode, e: usize) {
    let edge = &code.edges[e];
    for c in &edge.copies {
        let v = fr.get(c.src);
        fr.put(c.dst, v);
    }
    fr.pc = edge.target as usize;
    if vm.opts.profile {
        let from = BlockId::from_index(edge.from as usize);
        let to = BlockId::from_index(edge.to as usize);
        vm.profile.record_edge(fr.func, from, to);
        vm.profile.record_block(fr.func, to);
    }
}

/// Run the frame's decoded code until a call boundary, return, unwind or
/// trap. The inner loop touches only the flat register file, the frame's
/// slot slab and (for memory ops) the checked [`Memory`] — this is the
/// dispatch-density win over the `LowFunc` tier.
pub(crate) fn run_native_burst(vm: &mut Vm<'_>, fr: &mut NatFrame) -> Result<Flow, ExecError> {
    let code = fr.code.clone();
    loop {
        let op = code.ops[fr.pc];
        fr.pc += 1;
        if op.acct != 0 {
            vm.charge_native((op.acct - 1) as usize)?;
        }
        let (a, b, c) = (op.a as usize, op.b as usize, op.c as usize);
        match op.op {
            enc::ADD => fr.regs[a] = fr.regs[b].wrapping_add(fr.regs[c]),
            enc::SUB => fr.regs[a] = fr.regs[b].wrapping_sub(fr.regs[c]),
            enc::MUL => fr.regs[a] = fr.regs[b].wrapping_mul(fr.regs[c]),
            enc::MADD => fr.regs[a] = fr.regs[a].wrapping_add(fr.regs[b].wrapping_mul(fr.regs[c])),
            enc::AND => fr.regs[a] = fr.regs[b] & fr.regs[c],
            enc::OR => fr.regs[a] = fr.regs[b] | fr.regs[c],
            enc::XOR => fr.regs[a] = fr.regs[b] ^ fr.regs[c],
            enc::SLL => {
                let sh = fr.regs[c] & (op.extra as u32 - 1);
                fr.regs[a] = fr.regs[b] << sh;
            }
            enc::SRL => {
                let sh = fr.regs[c] & (op.extra as u32 - 1);
                fr.regs[a] = fr.regs[b] >> sh;
            }
            enc::SRA => {
                let sh = fr.regs[c] & (op.extra as u32 - 1);
                fr.regs[a] = ((fr.regs[b] as i32) >> sh) as u32;
            }
            enc::DIVS => {
                let (x, y) = (fr.regs[b] as i32, fr.regs[c] as i32);
                if y == 0 {
                    return Err(ExecError::trap(TrapKind::DivByZero, "integer division"));
                }
                fr.regs[a] = x.wrapping_div(y) as u32;
            }
            enc::DIVU => {
                let (x, y) = (fr.regs[b], fr.regs[c]);
                if y == 0 {
                    return Err(ExecError::trap(TrapKind::DivByZero, "integer division"));
                }
                fr.regs[a] = x / y;
            }
            enc::REMS => {
                let (x, y) = (fr.regs[b] as i32, fr.regs[c] as i32);
                if y == 0 {
                    return Err(ExecError::trap(TrapKind::DivByZero, "integer remainder"));
                }
                fr.regs[a] = x.wrapping_rem(y) as u32;
            }
            enc::REMU => {
                let (x, y) = (fr.regs[b], fr.regs[c]);
                if y == 0 {
                    return Err(ExecError::trap(TrapKind::DivByZero, "integer remainder"));
                }
                fr.regs[a] = x % y;
            }
            enc::CMP => {
                let (x, y) = (fr.regs[b], fr.regs[c]);
                let ord = if op.extra & 8 != 0 {
                    x.cmp(&y)
                } else {
                    (x as i32).cmp(&(y as i32))
                };
                let hit = match op.extra & 7 {
                    0 => ord.is_eq(),
                    1 => ord.is_ne(),
                    2 => ord.is_lt(),
                    3 => ord.is_gt(),
                    4 => ord.is_le(),
                    _ => ord.is_ge(),
                };
                fr.regs[a] = hit as u32;
            }
            enc::SETNZ => fr.regs[a] = (fr.regs[b] != 0) as u32,
            enc::NORM => {
                let v = fr.regs[b];
                fr.regs[a] = match Class::from_code(op.extra) {
                    Some(Class::S8) => v as i8 as i32 as u32,
                    Some(Class::U8) => v & 0xFF,
                    Some(Class::S16) => v as i16 as i32 as u32,
                    Some(Class::U16) => v & 0xFFFF,
                    _ => v,
                };
            }
            enc::MOV => fr.regs[a] = fr.regs[b],
            enc::ADDI => fr.regs[a] = fr.regs[b].wrapping_add(op.imm),
            enc::LDI => fr.regs[a] = op.imm,
            enc::ORI => fr.regs[a] = fr.regs[b] | op.imm,
            enc::LDS => fr.regs[a] = fr.slots[op.imm as usize],
            enc::STS => fr.slots[op.imm as usize] = fr.regs[b],
            enc::LD => {
                let addr = fr.regs[b];
                fr.regs[a] = match Class::from_code(op.extra) {
                    Some(Class::Bool) => low32(&vm.mem.load_bool(addr)?),
                    Some(Class::Ptr) => low32(&vm.mem.load_ptr(addr)?),
                    Some(cl) => {
                        let kind = cl
                            .int_kind()
                            .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "bad load class"))?;
                        low32(&vm.mem.load_int(addr, kind)?)
                    }
                    None => return Err(ExecError::trap(TrapKind::Invalid, "bad load class")),
                };
            }
            enc::ST => {
                let addr = fr.regs[b];
                let cl = Class::from_code(op.extra)
                    .filter(|c| c.is_exact())
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "bad store class"))?;
                vm.mem.store(addr, value_of(fr.regs[c], cl))?;
            }
            enc::ALLOC => {
                let n: u64 = if op.extra & 2 != 0 {
                    1
                } else if op.extra & 4 != 0 {
                    fr.regs[b] as u64
                } else {
                    (fr.regs[b] as i32 as i64).max(0) as u64
                };
                let size = (fr.regs[c] as u64) * n;
                let size32: u32 = size
                    .try_into()
                    .map_err(|_| ExecError::trap(TrapKind::OutOfMemory, "allocation too large"))?;
                let addr = vm.mem.alloc(size32.max(1))?;
                if op.extra & 1 != 0 {
                    fr.allocas.push(addr);
                }
                fr.regs[a] = addr;
            }
            enc::FREE => {
                let p = fr.regs[b];
                if p != 0 {
                    vm.mem.release(p)?;
                }
            }
            enc::BR => take_nat_edge(vm, fr, &code, op.imm as usize),
            enc::CBNZ => {
                if fr.regs[b] != 0 {
                    // Skip the paired fall-through BR.
                    fr.pc += 1;
                    take_nat_edge(vm, fr, &code, op.imm as usize);
                }
            }
            enc::SWITCH => {
                let v = fr.regs[b];
                let tbl = &code.switches[op.imm as usize];
                let mut e = tbl.default;
                for &(cv, ce) in &tbl.cases {
                    if cv == v {
                        e = ce;
                        break;
                    }
                }
                take_nat_edge(vm, fr, &code, e as usize);
            }
            enc::CALLD => {
                let call = &code.calls[op.imm as usize];
                if vm.opts.profile {
                    vm.profile
                        .record_callsite(fr.func, InstId::from_index(call.desc.site as usize));
                }
                let target = match &call.desc.callee {
                    FastCallee::Direct(f) => *f,
                    FastCallee::Indirect(s) => {
                        let addr = fr.get(*s);
                        let (hit_addr, hit_func) = call.ic.get();
                        if hit_func != 0 && hit_addr == addr {
                            FuncId::from_index((hit_func - 1) as usize)
                        } else {
                            let f = vm
                                .mem
                                .addr_to_func(addr)
                                .map(FuncId::from_index)
                                .ok_or_else(|| {
                                    ExecError::trap(TrapKind::Invalid, "call through data pointer")
                                })?;
                            call.ic.set((addr, f.index() as u32 + 1));
                            f
                        }
                    }
                };
                let argv: Vec<VmValue> = call
                    .desc
                    .args
                    .iter()
                    .map(|&(s, cl)| value_of(fr.get(s), cl))
                    .collect();
                let tf = vm.module().func(target);
                if tf.is_declaration() {
                    let eh = call.desc.eh;
                    let dst = call.desc.dst;
                    let ret = vm.call_external_by_id(target, &argv)?;
                    if let (Some((h, cl)), Some(v)) = (dst, ret) {
                        if !matches_class(&v, cl) {
                            return Err(ExecError::trap(
                                TrapKind::Invalid,
                                "native call result class mismatch",
                            ));
                        }
                        fr.put(h, low32(&v));
                    }
                    if let Some((normal, _)) = eh {
                        take_nat_edge(vm, fr, &code, normal as usize);
                    }
                    continue;
                }
                let nfixed = tf.num_params();
                let (fixed, extra) = if argv.len() > nfixed {
                    let (x, y) = argv.split_at(nfixed);
                    (x.to_vec(), y.to_vec())
                } else {
                    (argv, Vec::new())
                };
                fr.pending = Some((call.desc.dst, call.desc.eh));
                // dst/eh ride in the frame's typed pending slot, not the
                // (JIT-shaped) Flow fields.
                return Ok(Flow::Call {
                    target,
                    args: fixed,
                    varargs: extra,
                    dst: None,
                    eh: None,
                });
            }
            enc::RET => {
                if op.imm & 1 != 0 {
                    let cl = Class::from_code((op.imm >> 1) as u16)
                        .filter(|c| c.is_exact())
                        .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "bad ret class"))?;
                    return Ok(Flow::Ret(Some(value_of(fr.regs[b], cl))));
                }
                return Ok(Flow::Ret(None));
            }
            enc::UNWIND => return Ok(Flow::Unwinding),
            enc::UNREACHABLE => {
                return Err(ExecError::trap(
                    TrapKind::Unreachable,
                    "unreachable executed",
                ))
            }
            _ => return Err(ExecError::trap(TrapKind::Invalid, "bad native opcode")),
        }
    }
}
