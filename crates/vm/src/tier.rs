//! Tiered hot-path execution (paper §3.5's runtime optimizer, applied to
//! the execution engine itself).
//!
//! The paper's runtime model assumes execution *starts* cheap and
//! *becomes* fast: lightweight profiling identifies hot regions, which
//! are then handed to the native tier. This module is that adaptive
//! middle layer for the VM:
//!
//! * Every function starts in the **profiling interpreter**. A hotness
//!   counter per function sums its calls and its loop back-edges.
//! * When the counter *exceeds* `VmOptions::tier_up`, the function is
//!   **promoted**: translated to [`crate::jit::LowFunc`] form and run by
//!   the JIT dispatch loop from then on. If the current activation is
//!   interpreted when its function crosses the threshold on a back-edge,
//!   it is switched in place at the loop-header boundary (**on-stack
//!   replacement**) — hot loops in `main` get fast without waiting for a
//!   second call that never comes.
//! * A translation failure **demotes** the function permanently: it keeps
//!   interpreting, execution continues (pure-JIT mode instead fails the
//!   run, preserving its historical semantics).
//! * Interpreted and translated frames interleave freely on one call
//!   stack in both directions — interpreted caller → JIT'd callee,
//!   JIT'd caller → (cold) interpreted callee — including across
//!   `invoke`/`unwind`.
//! * [`Vm::warm_start`] seeds the tier decisions from a prior run's
//!   profile (the lifelong store's accumulated counts): functions already
//!   known hot are translated eagerly at load, closing the paper's
//!   "lifelong" loop at the execution layer.
//!
//! Observational identity: the tiered engine produces the same output,
//! return value, trap kind, fuel consumption, profile counters, and
//! opcode histogram as the reference interpreter at *any* threshold —
//! a differential suite in `tests/tiered.rs` pins this across the whole
//! workload suite.

use lpat_core::trace;
use lpat_core::{BlockId, FuncId, Inst};

use crate::error::{ExecError, TrapKind};
use crate::interp::{Frame, StepResult, Vm};
use crate::jit::{Flow, JitFrame};
use crate::profile::ProfileData;
use crate::value::VmValue;

/// Per-function tier state: the promotion ladder is
/// `Cold → Hot → Native`, with a permanent demotion state at each rung.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TierCell {
    /// Interpreted; the payload is the hotness counter (calls +
    /// back-edges observed so far).
    Cold(u64),
    /// Promoted to the JIT tier: translated code exists in the cache and
    /// is used for every call (and, via OSR, for running interpreted
    /// activations). The payload is the *native* hotness counter —
    /// calls + back-edges observed while on this tier — driving the
    /// second promotion.
    Hot(u64),
    /// Promoted twice: single-pass machine code exists in the native
    /// cache and is used for every call whose arguments match the
    /// declared classes (others fall back to the JIT frame, per call).
    Native,
    /// JIT translation failed; permanently interpreted.
    Demoted,
    /// Native translation failed (`native.translate` fault or a backend
    /// bail); permanently on the JIT tier.
    NativeDemoted,
}

/// How [`Vm::run_function_mixed`] picks a tier per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MixedMode {
    /// Every callee is translated on first call; translation failure is
    /// fatal. This is the classic `run_main_jit` engine.
    JitOnly,
    /// Counter-driven promotion with the configured thresholds.
    /// `native_up = None` disables the third tier.
    Tiered {
        threshold: u64,
        native_up: Option<u64>,
    },
}

/// A call-boundary tier decision.
#[derive(Clone, Copy, Debug)]
enum TierChoice {
    Interp,
    Jit,
    Native,
}

/// Tiered-execution statistics, kept outside the trace layer so wall
/// clock–dependent values (translation time) never leak into
/// byte-deterministic trace exports.
#[derive(Clone, Debug, Default)]
pub struct TierStats {
    /// Functions promoted interpreter → JIT at run time (includes
    /// warm-start promotions; `promoted - warmed` is the runtime count).
    pub promoted: u64,
    /// Functions demoted after a translation failure.
    pub demoted: u64,
    /// Functions promoted eagerly from a prior run's profile.
    pub warmed: u64,
    /// Interpreted activations switched to translated code mid-run at a
    /// loop header (on-stack replacement).
    pub osr: u64,
    /// Functions translated (JIT code-generation invocations).
    pub translated: u64,
    /// Instructions dispatched by the interpreter tier.
    pub interp_insts: u64,
    /// Instructions dispatched by the translated tier.
    pub jit_insts: u64,
    /// Wall-clock nanoseconds spent translating.
    pub translate_ns: u64,
    /// Functions promoted JIT → native machine code.
    pub native_promoted: u64,
    /// Functions demoted to the JIT tier after a native translation
    /// failure (backend bail or `native.translate` fault).
    pub native_demoted: u64,
    /// Activations switched JIT/interp → native mid-run at a loop header.
    pub native_osr: u64,
    /// Functions translated by the single-pass native backend.
    pub native_translated: u64,
    /// Instructions dispatched by the native (machine-code) tier.
    pub native_insts: u64,
    /// Wall-clock nanoseconds spent in the native backend.
    pub native_translate_ns: u64,
}

/// A frame on the mixed call stack: interpreted, translated, or native.
pub(crate) enum TFrame {
    I(Frame),
    J(JitFrame),
    N(crate::native::NatFrame),
}

/// The bidirectional register-file mapping between the interpreter's
/// sparse frame (`Vec<Option<VmValue>>`, unassigned = `None`) and the
/// JIT's dense one (`Vec<VmValue>`, pre-filled with `Ptr(0)`). Register
/// indices are the same in both forms (an instruction's `InstId` index),
/// so both directions are plain element-wise copies — OSR (interp → JIT)
/// and deoptimization (JIT → interp) are exact inverses through this map,
/// and both happen only at block boundaries where φs have already been
/// executed on the incoming edge.
///
/// The dense form cannot distinguish "assigned `Ptr(0)`" from "never
/// assigned", so `to_sparse` marks every slot assigned. In verified
/// modules this is unobservable (defs dominate uses), which is exactly
/// the property the differential suite pins.
pub(crate) struct FrameMap;

impl FrameMap {
    /// Interpreter registers → a dense JIT slab of `n_regs` slots
    /// (`slab` is a recycled arena vector; cleared and refilled here).
    pub(crate) fn to_dense(
        sparse: &[Option<VmValue>],
        mut slab: Vec<VmValue>,
        n_regs: usize,
    ) -> Vec<VmValue> {
        slab.clear();
        slab.resize(n_regs, VmValue::Ptr(0));
        for (i, r) in sparse.iter().enumerate() {
            if let Some(v) = r {
                slab[i] = *v;
            }
        }
        slab
    }

    /// Dense JIT registers → an interpreter frame of `n_slots` slots.
    pub(crate) fn to_sparse(
        dense: &[VmValue],
        mut slab: Vec<Option<VmValue>>,
        n_slots: usize,
    ) -> Vec<Option<VmValue>> {
        slab.clear();
        slab.resize(n_slots, None);
        for (i, v) in dense.iter().enumerate().take(n_slots) {
            slab[i] = Some(*v);
        }
        slab
    }
}

/// Per-tier trace segments: one span per contiguous run of same-tier
/// execution, so a Perfetto timeline shows execution time migrating from
/// the interpreter to the JIT as promotions happen.
struct TierSegments {
    active: bool,
    cur: Option<(trace::Span, u8)>,
}

impl TierSegments {
    fn new(active: bool) -> TierSegments {
        TierSegments {
            active: active && trace::enabled(),
            cur: None,
        }
    }

    fn enter(&mut self, tier: u8) {
        if !self.active {
            return;
        }
        if let Some((_, k)) = &self.cur {
            if *k == tier {
                return;
            }
        }
        // Dropping the old span records its end before the new one opens.
        self.cur = None;
        let name = match tier {
            0 => "tier-interp",
            1 => "tier-jit",
            _ => "tier-native",
        };
        self.cur = Some((trace::span("vm", name), tier));
    }
}

impl<'m> Vm<'m> {
    /// Run `main()` under the tiered engine. Produces the same results as
    /// [`Vm::run_main`] at any `VmOptions::tier_up` threshold.
    pub fn run_main_tiered(&mut self) -> Result<i64, ExecError> {
        let mut sp = trace::span("vm", "tiered @main");
        let result = {
            let main = self
                .module()
                .func_by_name("main")
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "no @main in module"))?;
            match self.run_function_tiered(main, vec![]) {
                Ok(Some(v)) => v
                    .as_i64()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "main returned non-integer")),
                Ok(None) => Ok(0),
                Err(ExecError::Exited(c)) => Ok(c as i64),
                Err(e) => Err(e),
            }
        };
        if trace::enabled() {
            match &result {
                Ok(code) => sp.arg("exit", code.to_string()),
                Err(e) => {
                    sp.arg("error", e.to_string());
                    trace::instant_args("vm", "trap", vec![("error", e.to_string())]);
                }
            }
        }
        result
    }

    /// Call `f` with `args` under the tiered engine.
    pub fn run_function_tiered(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
    ) -> Result<Option<VmValue>, ExecError> {
        let threshold = self.opts.tier_up;
        let native_up = self.opts.native_up;
        self.run_function_mixed(
            f,
            args,
            MixedMode::Tiered {
                threshold,
                native_up,
            },
        )
    }

    /// Seed tier decisions from a prior run's profile (typically the
    /// lifelong store's accumulated counts): every function whose call
    /// count or hottest block count already exceeds the `tier_up`
    /// threshold is translated eagerly, so the run starts in the fast
    /// tier instead of re-warming. Translation failures leave the
    /// function cold (it may demote later as usual). Returns the number
    /// of functions warmed.
    pub fn warm_start(&mut self, profile: &ProfileData) -> usize {
        let _sp = trace::span("vm", "warm-start");
        let threshold = self.opts.tier_up;
        let m = self.module();
        let nf = m.num_funcs();
        // One pass over the profile maps; per-function max hotness.
        let mut hotness = vec![0u64; nf];
        for (&(f, _), &c) in &profile.block_counts {
            if f.index() < nf {
                hotness[f.index()] = hotness[f.index()].max(c);
            }
        }
        for (&f, &c) in &profile.call_counts {
            if f.index() < nf {
                hotness[f.index()] = hotness[f.index()].max(c);
            }
        }
        let mut warmed = 0usize;
        // Function-index order: deterministic regardless of map order.
        for (i, &hot) in hotness.iter().enumerate() {
            let f = FuncId::from_index(i);
            if hot <= threshold
                || m.func(f).is_declaration()
                || !matches!(self.tier[i], TierCell::Cold(_))
            {
                continue;
            }
            if self.try_promote(f) {
                self.tier_stats.warmed += 1;
                warmed += 1;
            }
        }
        warmed
    }

    /// The shared engine loop: a single stack of interpreted and
    /// translated frames. `JitOnly` mode reproduces the historical
    /// pure-JIT engine; `Tiered` adds counters, promotion, and OSR.
    pub(crate) fn run_function_mixed(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
        mode: MixedMode,
    ) -> Result<Option<VmValue>, ExecError> {
        self.tier_native_on = matches!(
            mode,
            MixedMode::Tiered {
                native_up: Some(_),
                ..
            }
        );
        self.pending_native_osr = None;
        let mut stack: Vec<TFrame> = Vec::new();
        self.push_mixed(&mut stack, f, args, Vec::new(), mode)?;
        let mut seg = TierSegments::new(matches!(mode, MixedMode::Tiered { .. }));
        self.mixed_loop(&mut stack, mode, &mut seg)
    }

    fn mixed_loop(
        &mut self,
        stack: &mut Vec<TFrame>,
        mode: MixedMode,
        seg: &mut TierSegments,
    ) -> Result<Option<VmValue>, ExecError> {
        // What a hoisted interpreter burst ended with (the inner loop
        // holds a borrow of the top frame, so stack surgery happens out
        // here where that borrow is dead).
        enum After {
            Call {
                target: FuncId,
                fixed: Vec<VmValue>,
                extra: Vec<VmValue>,
            },
            Ret(Option<VmValue>),
            Unwind,
            Osr,
        }
        'outer: loop {
            // A pending native OSR is only valid at the check directly
            // after the edge that set it; any other control transfer
            // drops it (the frame may no longer sit at a block boundary).
            self.pending_native_osr = None;
            let tier_top = match stack.last().expect("frame") {
                TFrame::I(_) => 0u8,
                TFrame::J(_) => 1,
                TFrame::N(_) => 2,
            };
            seg.enter(tier_top);
            if tier_top == 2 {
                // Native machine-code burst: runs until a call boundary,
                // return, unwind, or trap.
                let fr = match stack.last_mut().expect("frame") {
                    TFrame::N(fr) => fr,
                    _ => unreachable!(),
                };
                match crate::native::run_native_burst(self, fr)? {
                    Flow::Call {
                        target,
                        args,
                        varargs,
                        ..
                    } => {
                        // dst/eh already parked in the frame's typed
                        // pending slot by the burst loop.
                        self.push_mixed(stack, target, args, varargs, mode)?;
                        continue 'outer;
                    }
                    Flow::Ret(v) => {
                        if let Some(out) = self.deliver_return(stack, v)? {
                            return Ok(out);
                        }
                        continue 'outer;
                    }
                    Flow::Unwinding => {
                        self.deliver_unwind(stack)?;
                        continue 'outer;
                    }
                    Flow::Next | Flow::Deopt { .. } => {
                        unreachable!("native bursts end at call/ret/unwind")
                    }
                }
            } else if tier_top == 1 {
                let lf = match stack.last().expect("frame") {
                    TFrame::J(fr) => fr.lf.clone(),
                    _ => unreachable!(),
                };
                // Tight dispatch over the current translated frame.
                loop {
                    let fr = match stack.last_mut().expect("frame") {
                        TFrame::J(fr) => fr,
                        _ => unreachable!(),
                    };
                    let op = &lf.code[fr.pc];
                    fr.pc += 1;
                    match crate::jit::exec_low(self, fr, &lf, op)? {
                        Flow::Next => {
                            // A back-edge may just have promoted this
                            // function to machine code; the frame sits at
                            // the loop-header boundary, so switch now.
                            if self.pending_native_osr.is_some() {
                                let block =
                                    self.pending_native_osr.take().expect("pending OSR block");
                                self.native_osr_from_jit(stack, block)?;
                                continue 'outer;
                            }
                        }
                        Flow::Call {
                            target,
                            args,
                            varargs,
                            dst,
                            eh,
                        } => {
                            fr.pending = Some((dst, eh));
                            self.push_mixed(stack, target, args, varargs, mode)?;
                            continue 'outer;
                        }
                        Flow::Ret(v) => {
                            if let Some(out) = self.deliver_return(stack, v)? {
                                return Ok(out);
                            }
                            continue 'outer;
                        }
                        Flow::Unwinding => {
                            self.deliver_unwind(stack)?;
                            continue 'outer;
                        }
                        Flow::Deopt { block } => {
                            // The fail edge is already taken: the frame
                            // sits at the slow block's boundary. Tiered
                            // execution rebuilds an interpreter frame
                            // there; pure JIT keeps dispatching — the
                            // slow path is ordinary translated code.
                            if matches!(mode, MixedMode::Tiered { .. }) {
                                self.deopt_enter(stack, block);
                                continue 'outer;
                            }
                        }
                    }
                }
            } else {
                // Single-step interpretation of the current frame. The
                // frame borrow, function lookup, and module access are
                // hoisted out of the per-instruction loop (they are
                // loop-invariant: `fr.func` never changes within an
                // activation, and the stack is untouched until a call /
                // return / unwind / OSR ends the burst).
                let m = self.module();
                let after = {
                    let fr = match stack.last_mut().expect("frame") {
                        TFrame::I(fr) => fr,
                        _ => unreachable!(),
                    };
                    let func = m.func(fr.func);
                    loop {
                        let insts = func.block_insts(fr.block);
                        if fr.idx >= insts.len() {
                            return Err(ExecError::trap(
                                TrapKind::Invalid,
                                "fell off the end of a block",
                            ));
                        }
                        let iid = insts[fr.idx];
                        let block = fr.block;
                        let fetched = func.inst(iid);
                        if !matches!(fetched, Inst::Phi { .. }) {
                            self.charge_interp(fetched.opcode_index())?;
                        }
                        match self.step(fr, block, iid, fetched)? {
                            StepResult::Continue => fr.idx += 1,
                            StepResult::Jumped => {
                                // A back-edge (jump to the same or an
                                // earlier block) marks a loop iteration:
                                // bump the hotness counter, and if the
                                // function is (or just became) hot, switch
                                // this activation to translated or native
                                // code at the header (OSR).
                                if let MixedMode::Tiered {
                                    threshold,
                                    native_up,
                                } = mode
                                {
                                    if fr.block.index() <= block.index() {
                                        let f = fr.func;
                                        self.tier_bump(f, threshold, native_up);
                                        if matches!(
                                            self.tier[f.index()],
                                            TierCell::Hot(_) | TierCell::Native
                                        ) {
                                            break After::Osr;
                                        }
                                    }
                                }
                            }
                            StepResult::Call {
                                target,
                                fixed,
                                extra,
                            } => {
                                break After::Call {
                                    target,
                                    fixed,
                                    extra,
                                }
                            }
                            StepResult::Returned(v) => break After::Ret(v),
                            StepResult::Unwinding => break After::Unwind,
                        }
                    }
                };
                match after {
                    After::Call {
                        target,
                        fixed,
                        extra,
                    } => self.push_mixed(stack, target, fixed, extra, mode)?,
                    After::Ret(v) => {
                        if let Some(out) = self.deliver_return(stack, v)? {
                            return Ok(out);
                        }
                    }
                    After::Unwind => self.deliver_unwind(stack)?,
                    After::Osr => self.osr_any(stack)?,
                }
                continue 'outer;
            }
        }
    }

    /// Push an activation for `f`, choosing the tier per `mode`.
    fn push_mixed(
        &mut self,
        stack: &mut Vec<TFrame>,
        f: FuncId,
        args: Vec<VmValue>,
        varargs: Vec<VmValue>,
        mode: MixedMode,
    ) -> Result<(), ExecError> {
        if stack.len() >= self.opts.max_stack {
            return Err(ExecError::trap(TrapKind::StackOverflow, "call depth"));
        }
        let choice = match mode {
            MixedMode::JitOnly => TierChoice::Jit,
            MixedMode::Tiered {
                threshold,
                native_up,
            } => self.tier_decide_call(f, threshold, native_up),
        };
        match choice {
            TierChoice::Native => {
                if let Some(fr) = self.make_native_frame(f, &args)? {
                    stack.push(TFrame::N(fr));
                } else {
                    // An actual argument defies the declared class
                    // (possible only through mistyped indirect calls):
                    // the JIT frame represents any value, so this call
                    // runs one tier down.
                    let fr = self.make_jit_frame(f, args, varargs)?;
                    stack.push(TFrame::J(fr));
                }
            }
            TierChoice::Jit => {
                let fr = self.make_jit_frame(f, args, varargs)?;
                stack.push(TFrame::J(fr));
            }
            TierChoice::Interp => {
                let fr = self.make_frame(f, args, varargs)?;
                stack.push(TFrame::I(fr));
            }
        }
        Ok(())
    }

    /// Pop and recycle the top frame.
    fn pop_mixed(&mut self, stack: &mut Vec<TFrame>) -> Result<(), ExecError> {
        match stack.pop().expect("frame to pop") {
            TFrame::I(fr) => self.recycle_frame(fr),
            TFrame::J(fr) => self.recycle_jit_frame(fr),
            TFrame::N(fr) => self.recycle_native_frame(fr),
        }
    }

    /// Pop the finished frame and deliver `v` to the caller (whatever its
    /// tier). Returns `Some(v)` when the popped frame was the outermost.
    fn deliver_return(
        &mut self,
        stack: &mut Vec<TFrame>,
        v: Option<VmValue>,
    ) -> Result<Option<Option<VmValue>>, ExecError> {
        self.pop_mixed(stack)?;
        let Some(parent) = stack.last_mut() else {
            return Ok(Some(v));
        };
        match parent {
            TFrame::I(fr) => {
                let site = fr.pending.take().expect("return into pending call");
                if let Some(v) = v {
                    fr.regs[site.index()] = Some(v);
                }
                // An invoke transfers to its normal successor; a call
                // continues in-line.
                let site_inst = self.module().func(fr.func).inst(site);
                if let Inst::Invoke { normal, .. } = site_inst {
                    let n = *normal;
                    let from = fr.block;
                    self.transfer(fr, from, n)?;
                } else {
                    fr.idx += 1;
                }
            }
            TFrame::J(fr) => {
                let (dst, eh) = fr.pending.take().expect("pending call");
                if let (Some(d), Some(v)) = (dst, v) {
                    fr.regs[d as usize] = v;
                }
                if let Some((normal, _)) = eh {
                    let lf = fr.lf.clone();
                    self.take_edge(fr, &lf, normal)?;
                }
            }
            TFrame::N(fr) => {
                let (dst, eh) = fr.pending.take().expect("pending call");
                if let (Some((h, cl)), Some(v)) = (dst, v) {
                    // The returned scalar must have the class the native
                    // code was compiled for. A mismatch is only possible
                    // in unverified, type-confused modules; trap rather
                    // than silently reinterpret bits (DESIGN.md §16).
                    if !crate::native::matches_class(&v, cl) {
                        return Err(ExecError::trap(
                            TrapKind::Invalid,
                            "native call result class mismatch",
                        ));
                    }
                    fr.put(h, crate::native::low32(&v));
                }
                if let Some((normal, _)) = eh {
                    let code = fr.code.clone();
                    crate::native::take_nat_edge(self, fr, &code, normal as usize);
                }
            }
        }
        Ok(None)
    }

    /// Unwind: pop frames until one is suspended on an `invoke`, then
    /// transfer to its unwind successor — across tiers.
    fn deliver_unwind(&mut self, stack: &mut Vec<TFrame>) -> Result<(), ExecError> {
        if trace::enabled() {
            if let Some(top) = stack.last() {
                let f = match top {
                    TFrame::I(fr) => fr.func,
                    TFrame::J(fr) => fr.func,
                    TFrame::N(fr) => fr.func,
                };
                let fname = self.module().func(f).name.clone();
                trace::instant_args("vm", "unwind", vec![("from", fname)]);
            }
        }
        loop {
            self.pop_mixed(stack)?;
            let Some(parent) = stack.last_mut() else {
                return Err(ExecError::trap(
                    TrapKind::UncaughtUnwind,
                    "unwind reached the bottom of the stack",
                ));
            };
            match parent {
                TFrame::I(fr) => {
                    let site = fr.pending.take().expect("unwind into pending call");
                    let site_inst = self.module().func(fr.func).inst(site);
                    if let Inst::Invoke { unwind, .. } = site_inst {
                        let u = *unwind;
                        let from = fr.block;
                        self.transfer(fr, from, u)?;
                        return Ok(());
                    }
                    // A plain call: keep unwinding through it.
                }
                TFrame::J(fr) => {
                    let (_, eh) = fr.pending.take().expect("pending call");
                    if let Some((_, unwind)) = eh {
                        let lf = fr.lf.clone();
                        self.take_edge(fr, &lf, unwind)?;
                        return Ok(());
                    }
                }
                TFrame::N(fr) => {
                    let (_, eh) = fr.pending.take().expect("pending call");
                    if let Some((_, unwind)) = eh {
                        let code = fr.code.clone();
                        crate::native::take_nat_edge(self, fr, &code, unwind as usize);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Tier decision at a call boundary: native functions run machine
    /// code, hot ones run translated, demoted ones interpret, cold ones
    /// bump their counter (a call is a hotness event) and may promote
    /// right here. A fresh JIT promotion immediately counts the same
    /// call toward native hotness, so `tier_up 0` + `native_up 0` runs
    /// everything native from the first call.
    fn tier_decide_call(
        &mut self,
        f: FuncId,
        threshold: u64,
        native_up: Option<u64>,
    ) -> TierChoice {
        match self.tier[f.index()] {
            TierCell::Native => TierChoice::Native,
            TierCell::NativeDemoted => TierChoice::Jit,
            TierCell::Demoted => TierChoice::Interp,
            TierCell::Hot(_) => {
                if self.native_call_bump(f, native_up) {
                    TierChoice::Native
                } else {
                    TierChoice::Jit
                }
            }
            TierCell::Cold(n) => {
                let n = n.saturating_add(1);
                self.tier[f.index()] = TierCell::Cold(n);
                if n > threshold && self.try_promote(f) {
                    if self.native_call_bump(f, native_up) {
                        TierChoice::Native
                    } else {
                        TierChoice::Jit
                    }
                } else {
                    TierChoice::Interp
                }
            }
        }
    }

    /// Count a hotness event against a JIT-tier function's native
    /// counter; promote to machine code when the threshold is crossed.
    /// Returns whether the function is on the native tier afterwards.
    fn native_call_bump(&mut self, f: FuncId, native_up: Option<u64>) -> bool {
        let Some(nu) = native_up else {
            return false;
        };
        if let TierCell::Hot(n) = self.tier[f.index()] {
            let n = n.saturating_add(1);
            self.tier[f.index()] = TierCell::Hot(n);
            if n > nu {
                return self.try_promote_native(f);
            }
        }
        matches!(self.tier[f.index()], TierCell::Native)
    }

    /// Bump `f`'s hotness counter for a loop back-edge; promote when the
    /// relevant threshold is crossed (cold → JIT, JIT → native).
    fn tier_bump(&mut self, f: FuncId, threshold: u64, native_up: Option<u64>) {
        match self.tier[f.index()] {
            TierCell::Cold(n) => {
                let n = n.saturating_add(1);
                self.tier[f.index()] = TierCell::Cold(n);
                if n > threshold {
                    self.try_promote(f);
                }
            }
            TierCell::Hot(_) => {
                self.native_call_bump(f, native_up);
            }
            _ => {}
        }
    }

    /// Translate `f` and mark it `Hot`; on failure mark it `Demoted` (it
    /// keeps interpreting). Returns whether the function is now hot.
    fn try_promote(&mut self, f: FuncId) -> bool {
        match self.ensure_translated(f) {
            Ok(_) => {
                self.tier[f.index()] = TierCell::Hot(0);
                self.tier_stats.promoted += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "tier-up",
                        vec![("function", self.module().func(f).name.clone())],
                    );
                }
                true
            }
            Err(_) => {
                // `ensure_translated` already emitted the bail-to-interp
                // instant with the error.
                self.tier[f.index()] = TierCell::Demoted;
                self.tier_stats.demoted += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "tier-demote",
                        vec![("function", self.module().func(f).name.clone())],
                    );
                }
                false
            }
        }
    }

    /// Translate `f` to machine code and mark it `Native`; on failure —
    /// a backend bail or an injected `native.translate` fault — mark it
    /// `NativeDemoted` (it stays on the JIT tier permanently, the
    /// program keeps running). Returns whether the function is native.
    fn try_promote_native(&mut self, f: FuncId) -> bool {
        match self.ensure_native_translated(f) {
            Ok(_) => {
                self.tier[f.index()] = TierCell::Native;
                self.tier_stats.native_promoted += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "tier-up-native",
                        vec![("function", self.module().func(f).name.clone())],
                    );
                }
                true
            }
            Err(_) => {
                // `ensure_native_translated` already emitted the
                // bail-to-jit instant with the error.
                self.tier[f.index()] = TierCell::NativeDemoted;
                self.tier_stats.native_demoted += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "tier-demote-native",
                        vec![("function", self.module().func(f).name.clone())],
                    );
                }
                false
            }
        }
    }

    /// Count a JIT-dispatched loop back-edge toward native promotion.
    /// Called from [`Vm::take_edge`] (gated on `tier_native_on`); when
    /// the function is — or just became — native, requests an OSR at
    /// `to_block`, consumed by the dispatch loop at the very next
    /// boundary check.
    pub(crate) fn native_backedge_bump(&mut self, f: FuncId, to_block: u32) {
        match self.tier[f.index()] {
            TierCell::Hot(_) => {
                let nu = self.opts.native_up;
                if self.native_call_bump(f, nu) {
                    self.pending_native_osr = Some(to_block);
                }
            }
            TierCell::Native => {
                // Promoted at a call boundary while this activation kept
                // running translated code: switch it at this loop header.
                self.pending_native_osr = Some(to_block);
            }
            _ => {}
        }
    }

    /// OSR dispatch for an interpreted frame whose function moved up the
    /// ladder: native if possible, JIT otherwise.
    fn osr_any(&mut self, stack: &mut [TFrame]) -> Result<(), ExecError> {
        let f = match stack.last().expect("frame") {
            TFrame::I(fr) => fr.func,
            _ => return Ok(()),
        };
        if matches!(self.tier[f.index()], TierCell::Native) && self.native_osr_enter(stack)? {
            return Ok(());
        }
        self.osr_enter(stack)
    }

    /// On-stack replacement, interpreter → native: the top frame must be
    /// interpreted and at a block boundary (`idx == 0`). Homes are a
    /// pure function of `InstId`, so the rebuild is one table-driven
    /// truncating copy. Returns `false` (frame untouched) when an
    /// argument's class defies the declared signature — the caller then
    /// falls back to JIT OSR, which represents any value.
    fn native_osr_enter(&mut self, stack: &mut [TFrame]) -> Result<bool, ExecError> {
        let top = stack.last_mut().expect("frame");
        let TFrame::I(fr) = top else {
            return Ok(false);
        };
        debug_assert_eq!(fr.idx, 0, "OSR only at a block boundary");
        let nf = match self.native_frame_from_interp(fr) {
            Ok(Some(nf)) => nf,
            Ok(None) | Err(_) => return Ok(false),
        };
        let mut old_regs = std::mem::take(&mut fr.regs);
        old_regs.clear();
        self.interp_reg_pool.push(old_regs);
        self.tier_stats.native_osr += 1;
        if trace::enabled() {
            trace::instant_args(
                "vm",
                "tier-osr-native",
                vec![("function", self.module().func(nf.func).name.clone())],
            );
        }
        *stack.last_mut().expect("frame") = TFrame::N(nf);
        Ok(true)
    }

    /// On-stack replacement, JIT → native, at the `block` boundary a
    /// back-edge just landed on. A class mismatch leaves the translated
    /// frame running (correct either way; machine code is an
    /// optimization, never a semantic requirement).
    fn native_osr_from_jit(&mut self, stack: &mut [TFrame], block: u32) -> Result<(), ExecError> {
        let top = stack.last_mut().expect("frame");
        let TFrame::J(fr) = top else {
            return Ok(());
        };
        let nf = match self.native_frame_from_jit(fr, block) {
            Ok(Some(nf)) => nf,
            Ok(None) | Err(_) => return Ok(()),
        };
        let mut old_regs = std::mem::take(&mut fr.regs);
        old_regs.clear();
        self.jit_reg_pool.push(old_regs);
        self.tier_stats.native_osr += 1;
        if trace::enabled() {
            trace::instant_args(
                "vm",
                "tier-osr-native",
                vec![("function", self.module().func(nf.func).name.clone())],
            );
        }
        *stack.last_mut().expect("frame") = TFrame::N(nf);
        Ok(())
    }

    /// On-stack replacement: the top frame must be interpreted, sitting
    /// at a block boundary (`idx == 0`, right after a `transfer`), and
    /// its function must have translated code. The frame is rebuilt in
    /// translated form at the same block: φs were already executed by the
    /// transfer, so entering at the block's first non-φ pc with the
    /// registers copied over is state-identical.
    fn osr_enter(&mut self, stack: &mut [TFrame]) -> Result<(), ExecError> {
        let top = stack.last_mut().expect("frame");
        let TFrame::I(fr) = top else {
            return Ok(());
        };
        debug_assert_eq!(fr.idx, 0, "OSR only at a block boundary");
        let Some(lf) = self.jit_cache[fr.func.index()].clone() else {
            return Ok(());
        };
        let slab = self.jit_reg_pool.pop().unwrap_or_default();
        let regs = FrameMap::to_dense(&fr.regs, slab, lf.n_regs);
        let pc = lf.block_pc[fr.block.index()];
        let jfr = JitFrame {
            func: fr.func,
            lf,
            regs,
            args: std::mem::take(&mut fr.args),
            varargs: std::mem::take(&mut fr.varargs),
            va_next: fr.va_next,
            pc,
            allocas: std::mem::take(&mut fr.allocas),
            pending: None,
        };
        let mut old_regs = std::mem::take(&mut fr.regs);
        old_regs.clear();
        self.interp_reg_pool.push(old_regs);
        self.tier_stats.osr += 1;
        if trace::enabled() {
            trace::instant_args(
                "vm",
                "tier-osr",
                vec![("function", self.module().func(jfr.func).name.clone())],
            );
        }
        *stack.last_mut().expect("frame") = TFrame::J(jfr);
        Ok(())
    }

    /// Deoptimization: the exact inverse of [`Vm::osr_enter`]. The top
    /// frame must be translated and sitting at a block boundary (a guard's
    /// fail edge was just taken, so φs are done and `pc` is at the block's
    /// first instruction). The frame is rebuilt in interpreted form at
    /// that block through the shared [`FrameMap`].
    ///
    /// The `tier.deopt` fault site fires inside the register
    /// reconstruction; a panic there (injected or real) must not kill a
    /// running program whose translated frame is still perfectly valid —
    /// the function is demoted for future calls and the current
    /// activation keeps executing translated code (the slow path is
    /// ordinary code, so semantics are preserved either way).
    fn deopt_enter(&mut self, stack: &mut [TFrame], block: u32) {
        let top = stack.last_mut().expect("frame");
        let TFrame::J(fr) = top else {
            return;
        };
        let n_slots = self.m_num_inst_slots(fr.func);
        let slab = self.interp_reg_pool.pop().unwrap_or_default();
        let dense = &fr.regs;
        let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(a) = lpat_core::faultpoint!("tier.deopt") {
                match a {
                    lpat_core::FaultAction::Delay(d) => std::thread::sleep(d),
                    other => panic!("injected {other:?} fault at site 'tier.deopt'"),
                }
            }
            FrameMap::to_sparse(dense, slab, n_slots)
        }));
        match rebuilt {
            Ok(regs) => {
                let ifr = Frame {
                    func: fr.func,
                    args: std::mem::take(&mut fr.args),
                    varargs: std::mem::take(&mut fr.varargs),
                    va_next: fr.va_next,
                    regs,
                    block: BlockId::from_index(block as usize),
                    idx: 0,
                    allocas: std::mem::take(&mut fr.allocas),
                    pending: None,
                };
                let mut old = std::mem::take(&mut fr.regs);
                old.clear();
                self.jit_reg_pool.push(old);
                self.spec_stats.deopts += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "deopt",
                        vec![
                            ("function", self.module().func(ifr.func).name.clone()),
                            ("block", format!("bb{block}")),
                        ],
                    );
                }
                *stack.last_mut().expect("frame") = TFrame::I(ifr);
            }
            Err(_) => {
                let f = fr.func;
                self.tier[f.index()] = TierCell::Demoted;
                self.tier_stats.demoted += 1;
                if trace::enabled() {
                    trace::instant_args(
                        "vm",
                        "tier-demote",
                        vec![("function", self.module().func(f).name.clone())],
                    );
                }
            }
        }
    }

    /// Register-slot count of `f` (helper so `deopt_enter`'s closure
    /// borrows no part of `self`).
    fn m_num_inst_slots(&self, f: FuncId) -> usize {
        self.module().func(f).num_inst_slots()
    }
}

impl TierStats {
    /// Human-readable tier table for `--stats`.
    pub fn render(&self) -> String {
        let total = self.interp_insts + self.jit_insts + self.native_insts;
        let pct = |n: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            }
        };
        let mut s = String::new();
        s.push_str(&format!(
            "  interp insts    {:>12}  ({:.1}%)\n",
            self.interp_insts,
            pct(self.interp_insts)
        ));
        s.push_str(&format!(
            "  jit insts       {:>12}  ({:.1}%)\n",
            self.jit_insts,
            pct(self.jit_insts)
        ));
        s.push_str(&format!(
            "  native insts    {:>12}  ({:.1}%)\n",
            self.native_insts,
            pct(self.native_insts)
        ));
        s.push_str(&format!(
            "  promoted        {:>12}  (warm-start {}, osr {})\n",
            self.promoted, self.warmed, self.osr
        ));
        s.push_str(&format!("  demoted         {:>12}\n", self.demoted));
        s.push_str(&format!(
            "  translated      {:>12}  ({} us)\n",
            self.translated,
            self.translate_ns / 1_000
        ));
        s.push_str(&format!(
            "  native promoted {:>12}  (osr {})\n",
            self.native_promoted, self.native_osr
        ));
        s.push_str(&format!("  native demoted  {:>12}\n", self.native_demoted));
        s.push_str(&format!(
            "  native compiled {:>12}  ({} us)\n",
            self.native_translated,
            self.native_translate_ns / 1_000
        ));
        s
    }
}
