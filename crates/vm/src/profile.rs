//! Runtime path profiling (paper §3.5).
//!
//! The engine's lightweight instrumentation counts block entries, CFG edge
//! traversals, and call activity — the data the paper's runtime optimizer
//! uses to identify frequently executed loop regions and then the hot
//! *paths* (traces) within them. [`ProfileData::hot_loops`] and
//! [`form_trace`] reproduce that region-then-trace strategy.
//!
//! Profiles are the unit the lifelong store persists across runs:
//! [`ProfileData::to_bytes`]/[`ProfileData::from_bytes`] give them a
//! deterministic binary form, and [`ProfileData::merge_saturating`] folds
//! one run's counts into the accumulated lifetime profile.

use std::collections::HashMap;

use lpat_analysis::{DomTree, LoopInfo};
use lpat_bytecode::format::{write_varint, DecodeError, Reader};
use lpat_core::{BlockId, FuncId, InstId, Module};

/// Execution counts collected by the engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileData {
    /// Times each block was entered.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
    /// Times each CFG edge was taken.
    pub edge_counts: HashMap<(FuncId, BlockId, BlockId), u64>,
    /// Times each function was called.
    pub call_counts: HashMap<FuncId, u64>,
    /// Times each call site executed (caller, site instruction).
    pub callsite_counts: HashMap<(FuncId, InstId), u64>,
    /// Times each speculation guard executed (guard id).
    pub guard_exec_counts: HashMap<u32, u64>,
    /// Times each speculation guard *failed* (misspeculated).
    pub guard_misspec_counts: HashMap<u32, u64>,
}

impl ProfileData {
    pub(crate) fn record_block(&mut self, f: FuncId, b: BlockId) {
        *self.block_counts.entry((f, b)).or_insert(0) += 1;
    }
    pub(crate) fn record_edge(&mut self, f: FuncId, from: BlockId, to: BlockId) {
        *self.edge_counts.entry((f, from, to)).or_insert(0) += 1;
    }
    pub(crate) fn record_call(&mut self, f: FuncId) {
        *self.call_counts.entry(f).or_insert(0) += 1;
    }
    pub(crate) fn record_callsite(&mut self, caller: FuncId, site: InstId) {
        *self.callsite_counts.entry((caller, site)).or_insert(0) += 1;
    }
    pub(crate) fn record_guard(&mut self, id: u32, failed: bool) {
        *self.guard_exec_counts.entry(id).or_insert(0) += 1;
        if failed {
            *self.guard_misspec_counts.entry(id).or_insert(0) += 1;
        }
    }

    /// Times one guard executed.
    pub fn guard_exec(&self, id: u32) -> u64 {
        self.guard_exec_counts.get(&id).copied().unwrap_or(0)
    }

    /// Times one guard misspeculated.
    pub fn guard_misspec(&self, id: u32) -> u64 {
        self.guard_misspec_counts.get(&id).copied().unwrap_or(0)
    }

    /// Project this profile into the view the speculative optimizer
    /// reads (`lpat_transform` cannot depend on this crate, so the
    /// planner takes its own profile type).
    pub fn to_spec_profile(&self) -> lpat_transform::SpecProfile {
        lpat_transform::SpecProfile {
            callsite_counts: self.callsite_counts.clone(),
            call_counts: self.call_counts.clone(),
            guard_exec: self.guard_exec_counts.clone(),
            guard_misspec: self.guard_misspec_counts.clone(),
        }
    }

    /// Count for one block.
    pub fn block_count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_counts.get(&(f, b)).copied().unwrap_or(0)
    }

    /// Count for one edge.
    pub fn edge_count(&self, f: FuncId, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(f, from, to)).copied().unwrap_or(0)
    }

    /// Hot loop regions: natural loops whose header count is at least
    /// `threshold`, hottest first. This models the offline
    /// instrumentation's "frequently executed loop region" detection.
    pub fn hot_loops(&self, m: &Module, threshold: u64) -> Vec<HotLoop> {
        let mut out = Vec::new();
        for (fid, f) in m.funcs() {
            if f.is_declaration() {
                continue;
            }
            let dt = DomTree::compute(f);
            let li = LoopInfo::compute(f, &dt);
            for l in &li.loops {
                let count = self.block_count(fid, l.header);
                if count >= threshold {
                    out.push(HotLoop {
                        func: fid,
                        header: l.header,
                        body: l.body.clone(),
                        header_count: count,
                    });
                }
            }
        }
        out.sort_by_key(|h| {
            (
                std::cmp::Reverse(h.header_count),
                h.func.index(),
                h.header.index(),
            )
        });
        out
    }

    /// Fold `other`'s counts into `self` with saturating addition: counters
    /// accumulated over a program's whole lifetime must sharpen hot-loop
    /// detection, never wrap back to cold.
    pub fn merge_saturating(&mut self, other: &ProfileData) {
        for (k, &v) in &other.block_counts {
            let c = self.block_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.edge_counts {
            let c = self.edge_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.call_counts {
            let c = self.call_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.callsite_counts {
            let c = self.callsite_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.guard_exec_counts {
            let c = self.guard_exec_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.guard_misspec_counts {
            let c = self.guard_misspec_counts.entry(*k).or_insert(0);
            *c = c.saturating_add(v);
        }
    }

    /// Whether any counter was recorded.
    pub fn is_empty(&self) -> bool {
        self.block_counts.is_empty()
            && self.edge_counts.is_empty()
            && self.call_counts.is_empty()
            && self.callsite_counts.is_empty()
            && self.guard_exec_counts.is_empty()
            && self.guard_misspec_counts.is_empty()
    }

    /// Deterministic binary form: each table is written as a varint count
    /// followed by key-sorted `(key..., count)` varint tuples, so equal
    /// profiles serialize to equal bytes regardless of hash-map iteration
    /// order (the store's merge tests compare files byte-for-byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut blocks: Vec<_> = self.block_counts.iter().collect();
        blocks.sort_by_key(|(k, _)| **k);
        write_varint(&mut out, blocks.len() as u64);
        for (&(f, b), &n) in blocks {
            write_varint(&mut out, f.index() as u64);
            write_varint(&mut out, b.index() as u64);
            write_varint(&mut out, n);
        }
        let mut edges: Vec<_> = self.edge_counts.iter().collect();
        edges.sort_by_key(|(k, _)| **k);
        write_varint(&mut out, edges.len() as u64);
        for (&(f, a, b), &n) in edges {
            write_varint(&mut out, f.index() as u64);
            write_varint(&mut out, a.index() as u64);
            write_varint(&mut out, b.index() as u64);
            write_varint(&mut out, n);
        }
        let mut calls: Vec<_> = self.call_counts.iter().collect();
        calls.sort_by_key(|(k, _)| **k);
        write_varint(&mut out, calls.len() as u64);
        for (&f, &n) in calls {
            write_varint(&mut out, f.index() as u64);
            write_varint(&mut out, n);
        }
        let mut sites: Vec<_> = self.callsite_counts.iter().collect();
        sites.sort_by_key(|(k, _)| **k);
        write_varint(&mut out, sites.len() as u64);
        for (&(f, i), &n) in sites {
            write_varint(&mut out, f.index() as u64);
            write_varint(&mut out, i.index() as u64);
            write_varint(&mut out, n);
        }
        for table in [&self.guard_exec_counts, &self.guard_misspec_counts] {
            let mut guards: Vec<_> = table.iter().collect();
            guards.sort_by_key(|(k, _)| **k);
            write_varint(&mut out, guards.len() as u64);
            for (&g, &n) in guards {
                write_varint(&mut out, g as u64);
                write_varint(&mut out, n);
            }
        }
        out
    }

    /// Decode [`ProfileData::to_bytes`] output. An ingestion boundary like
    /// the bytecode reader: hostile bytes produce an `Err`, never a panic
    /// or an unbounded allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<ProfileData, DecodeError> {
        let mut r = Reader::new(buf);
        let mut p = ProfileData::default();
        let n = r.bounded_count("block profile entry", 3)?;
        for _ in 0..n {
            let f = FuncId::from_index(r.vusize()?);
            let b = BlockId::from_index(r.vusize()?);
            p.block_counts.insert((f, b), r.varint()?);
        }
        let n = r.bounded_count("edge profile entry", 4)?;
        for _ in 0..n {
            let f = FuncId::from_index(r.vusize()?);
            let a = BlockId::from_index(r.vusize()?);
            let b = BlockId::from_index(r.vusize()?);
            p.edge_counts.insert((f, a, b), r.varint()?);
        }
        let n = r.bounded_count("call profile entry", 2)?;
        for _ in 0..n {
            let f = FuncId::from_index(r.vusize()?);
            p.call_counts.insert(f, r.varint()?);
        }
        let n = r.bounded_count("call-site profile entry", 3)?;
        for _ in 0..n {
            let f = FuncId::from_index(r.vusize()?);
            let i = InstId::from_index(r.vusize()?);
            p.callsite_counts.insert((f, i), r.varint()?);
        }
        for table in [&mut p.guard_exec_counts, &mut p.guard_misspec_counts] {
            let n = r.bounded_count("guard profile entry", 2)?;
            for _ in 0..n {
                let id = r.varint()?;
                if id > u32::MAX as u64 {
                    return Err(DecodeError("guard id out of range".into()));
                }
                table.insert(id as u32, r.varint()?);
            }
        }
        if !r.at_end() {
            return Err(DecodeError("trailing bytes after profile".into()));
        }
        Ok(p)
    }

    /// Hot call sites (count ≥ threshold), hottest first.
    pub fn hot_callsites(&self, threshold: u64) -> Vec<(FuncId, InstId, u64)> {
        let mut v: Vec<(FuncId, InstId, u64)> = self
            .callsite_counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&(f, i), &c)| (f, i, c))
            .collect();
        // Ties broken by position, not by map iteration order: the
        // reoptimizer inlines in this order, and lifelong persistence
        // promises byte-identical output for equal profiles.
        v.sort_by_key(|&(f, i, c)| (std::cmp::Reverse(c), f.index(), i.index()));
        v
    }
}

/// A frequently executed loop region.
#[derive(Clone, Debug)]
pub struct HotLoop {
    /// Enclosing function.
    pub func: FuncId,
    /// Loop header.
    pub header: BlockId,
    /// Loop body blocks.
    pub body: Vec<BlockId>,
    /// Times the header executed.
    pub header_count: u64,
}

/// Form the hot trace through a loop: starting at the header, repeatedly
/// follow the most frequently taken successor edge that stays in the loop
/// body, stopping when the trace would revisit a block.
///
/// Returns the block sequence, plus the fraction of the loop's block
/// executions the trace covers (a proxy for trace-cache hit rate).
pub fn form_trace(m: &Module, profile: &ProfileData, hot: &HotLoop) -> (Vec<BlockId>, f64) {
    let f = m.func(hot.func);
    let mut trace = vec![hot.header];
    let mut cur = hot.header;
    loop {
        let succs = f.successors(cur);
        let next = succs
            .iter()
            .filter(|s| hot.body.contains(s))
            .max_by_key(|&&s| profile.edge_count(hot.func, cur, s));
        match next {
            Some(&n) if !trace.contains(&n) => {
                trace.push(n);
                cur = n;
            }
            _ => break,
        }
    }
    let total: u64 = hot
        .body
        .iter()
        .map(|&b| profile.block_count(hot.func, b))
        .sum();
    let covered: u64 = trace
        .iter()
        .map(|&b| profile.block_count(hot.func, b))
        .sum();
    let coverage = if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    };
    (trace, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileData {
        let mut p = ProfileData::default();
        let f = FuncId::from_index(0);
        let g = FuncId::from_index(3);
        p.record_block(f, BlockId::from_index(1));
        p.record_block(f, BlockId::from_index(1));
        p.record_block(g, BlockId::from_index(0));
        p.record_edge(f, BlockId::from_index(0), BlockId::from_index(1));
        p.record_call(g);
        p.record_callsite(f, InstId::from_index(7));
        p.record_guard(11, false);
        p.record_guard(11, true);
        p.record_guard(42, false);
        p
    }

    #[test]
    fn bytes_roundtrip_and_are_deterministic() {
        let p = sample();
        let b1 = p.to_bytes();
        let q = ProfileData::from_bytes(&b1).unwrap();
        assert_eq!(p.block_counts, q.block_counts);
        assert_eq!(p.edge_counts, q.edge_counts);
        assert_eq!(p.call_counts, q.call_counts);
        assert_eq!(p.callsite_counts, q.callsite_counts);
        assert_eq!(p.guard_exec_counts, q.guard_exec_counts);
        assert_eq!(p.guard_misspec_counts, q.guard_misspec_counts);
        assert_eq!(b1, q.to_bytes(), "serialization must be canonical");
    }

    #[test]
    fn hostile_profile_bytes_error_out() {
        assert!(ProfileData::from_bytes(&[0xFF; 3]).is_err());
        // A declared count far past the input must be rejected, not
        // allocated.
        let mut buf = Vec::new();
        lpat_bytecode::format::write_varint(&mut buf, u32::MAX as u64);
        assert!(ProfileData::from_bytes(&buf).is_err());
        // Trailing garbage after a valid profile is rejected.
        let mut ok = sample().to_bytes();
        ok.push(9);
        assert!(ProfileData::from_bytes(&ok).is_err());
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = sample();
        let f = FuncId::from_index(0);
        a.block_counts
            .insert((f, BlockId::from_index(9)), u64::MAX - 1);
        let mut b = ProfileData::default();
        b.block_counts.insert((f, BlockId::from_index(9)), 5);
        a.merge_saturating(&b);
        assert_eq!(a.block_count(f, BlockId::from_index(9)), u64::MAX);
        // Disjoint keys are unioned; shared keys add.
        let mut two = sample();
        two.merge_saturating(&sample());
        assert_eq!(two.block_count(f, BlockId::from_index(1)), 4);
        assert_eq!(two.call_counts[&FuncId::from_index(3)], 2);
        assert_eq!(two.guard_exec(11), 4);
        assert_eq!(two.guard_misspec(11), 2);
    }

    #[test]
    fn guard_merge_saturates() {
        let mut a = ProfileData::default();
        a.guard_misspec_counts.insert(7, u64::MAX - 1);
        a.guard_exec_counts.insert(7, u64::MAX);
        let mut b = ProfileData::default();
        b.record_guard(7, true);
        b.record_guard(7, true);
        a.merge_saturating(&b);
        assert_eq!(a.guard_misspec(7), u64::MAX);
        assert_eq!(a.guard_exec(7), u64::MAX);
    }
}
