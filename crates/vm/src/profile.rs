//! Runtime path profiling (paper §3.5).
//!
//! The engine's lightweight instrumentation counts block entries, CFG edge
//! traversals, and call activity — the data the paper's runtime optimizer
//! uses to identify frequently executed loop regions and then the hot
//! *paths* (traces) within them. [`ProfileData::hot_loops`] and
//! [`form_trace`] reproduce that region-then-trace strategy.

use std::collections::HashMap;

use lpat_analysis::{DomTree, LoopInfo};
use lpat_core::{BlockId, FuncId, InstId, Module};

/// Execution counts collected by the engine.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Times each block was entered.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
    /// Times each CFG edge was taken.
    pub edge_counts: HashMap<(FuncId, BlockId, BlockId), u64>,
    /// Times each function was called.
    pub call_counts: HashMap<FuncId, u64>,
    /// Times each call site executed (caller, site instruction).
    pub callsite_counts: HashMap<(FuncId, InstId), u64>,
}

impl ProfileData {
    pub(crate) fn record_block(&mut self, f: FuncId, b: BlockId) {
        *self.block_counts.entry((f, b)).or_insert(0) += 1;
    }
    pub(crate) fn record_edge(&mut self, f: FuncId, from: BlockId, to: BlockId) {
        *self.edge_counts.entry((f, from, to)).or_insert(0) += 1;
    }
    pub(crate) fn record_call(&mut self, f: FuncId) {
        *self.call_counts.entry(f).or_insert(0) += 1;
    }
    pub(crate) fn record_callsite(&mut self, caller: FuncId, site: InstId) {
        *self.callsite_counts.entry((caller, site)).or_insert(0) += 1;
    }

    /// Count for one block.
    pub fn block_count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_counts.get(&(f, b)).copied().unwrap_or(0)
    }

    /// Count for one edge.
    pub fn edge_count(&self, f: FuncId, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(f, from, to)).copied().unwrap_or(0)
    }

    /// Hot loop regions: natural loops whose header count is at least
    /// `threshold`, hottest first. This models the offline
    /// instrumentation's "frequently executed loop region" detection.
    pub fn hot_loops(&self, m: &Module, threshold: u64) -> Vec<HotLoop> {
        let mut out = Vec::new();
        for (fid, f) in m.funcs() {
            if f.is_declaration() {
                continue;
            }
            let dt = DomTree::compute(f);
            let li = LoopInfo::compute(f, &dt);
            for l in &li.loops {
                let count = self.block_count(fid, l.header);
                if count >= threshold {
                    out.push(HotLoop {
                        func: fid,
                        header: l.header,
                        body: l.body.clone(),
                        header_count: count,
                    });
                }
            }
        }
        out.sort_by_key(|h| std::cmp::Reverse(h.header_count));
        out
    }

    /// Hot call sites (count ≥ threshold), hottest first.
    pub fn hot_callsites(&self, threshold: u64) -> Vec<(FuncId, InstId, u64)> {
        let mut v: Vec<(FuncId, InstId, u64)> = self
            .callsite_counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&(f, i), &c)| (f, i, c))
            .collect();
        v.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
        v
    }
}

/// A frequently executed loop region.
#[derive(Clone, Debug)]
pub struct HotLoop {
    /// Enclosing function.
    pub func: FuncId,
    /// Loop header.
    pub header: BlockId,
    /// Loop body blocks.
    pub body: Vec<BlockId>,
    /// Times the header executed.
    pub header_count: u64,
}

/// Form the hot trace through a loop: starting at the header, repeatedly
/// follow the most frequently taken successor edge that stays in the loop
/// body, stopping when the trace would revisit a block.
///
/// Returns the block sequence, plus the fraction of the loop's block
/// executions the trace covers (a proxy for trace-cache hit rate).
pub fn form_trace(m: &Module, profile: &ProfileData, hot: &HotLoop) -> (Vec<BlockId>, f64) {
    let f = m.func(hot.func);
    let mut trace = vec![hot.header];
    let mut cur = hot.header;
    loop {
        let succs = f.successors(cur);
        let next = succs
            .iter()
            .filter(|s| hot.body.contains(s))
            .max_by_key(|&&s| profile.edge_count(hot.func, cur, s));
        match next {
            Some(&n) if !trace.contains(&n) => {
                trace.push(n);
                cur = n;
            }
            _ => break,
        }
    }
    let total: u64 = hot
        .body
        .iter()
        .map(|&b| profile.block_count(hot.func, b))
        .sum();
    let covered: u64 = trace
        .iter()
        .map(|&b| profile.block_count(hot.func, b))
        .sum();
    let coverage = if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    };
    (trace, coverage)
}
