//! # lpat-vm — the execution engine
//!
//! The runtime half of the framework (paper §3.4–§3.6): a portable
//! interpreter over the representation with a simulated 32-bit memory, the
//! `invoke`/`unwind` exception runtime, lightweight execution profiling
//! (block/edge/call counts and hot-loop trace formation), and an offline
//! profile-guided reoptimizer.
//!
//! # Examples
//!
//! ```
//! use lpat_vm::{Vm, VmOptions};
//!
//! let m = lpat_asm::parse_module("t", "
//! define int @main() {
//! e:
//!   %x = add int 40, 2
//!   ret int %x
//! }").unwrap();
//! let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
//! assert_eq!(vm.run_main().unwrap(), 42);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod interp;
pub mod jit;
pub mod mem;
pub mod native;
pub mod pgo;
pub mod profile;
pub mod store;
pub mod tier;
pub mod value;

pub use error::{ExecError, TrapKind};
pub use interp::{SpecStats, Vm, VmOptions};
pub use pgo::{reoptimize, PgoOptions, PgoReport};
pub use profile::{form_trace, HotLoop, ProfileData};
pub use store::{
    module_hash, DenyRecord, FlushGuard, FlushOutcome, RecoveryReport, Store, StoreError,
    StoredProfile,
};
pub use tier::TierStats;
pub use value::VmValue;

/// The VM's error type. `VmError::Trap { kind: TrapKind::StackOverflow }`
/// is what deep recursion produces instead of a host stack overflow.
pub type VmError = ExecError;

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_core::Module;

    fn run(src: &str) -> i64 {
        run_opts(src, VmOptions::default()).0
    }

    fn run_opts(src: &str, opts: VmOptions) -> (i64, String) {
        let m = lpat_asm::parse_module("t", src).unwrap();
        m.verify().unwrap_or_else(|e| panic!("{e:?}"));
        let mut vm = Vm::new(&m, opts).unwrap();
        let r = vm
            .run_main()
            .unwrap_or_else(|e| panic!("{e}\n{}", m.display()));
        (r, vm.output.clone())
    }

    fn run_err(src: &str) -> ExecError {
        let m = lpat_asm::parse_module("t", src).unwrap();
        m.verify().unwrap();
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        vm.run_main().unwrap_err()
    }

    #[test]
    fn arithmetic_and_branches() {
        assert_eq!(
            run("
define int @main() {
e:
  %a = mul int 6, 7
  %c = setgt int %a, 40
  br bool %c, label %y, label %n
y:
  ret int %a
n:
  ret int 0
}"),
            42
        );
    }

    #[test]
    fn loop_sums() {
        assert_eq!(
            run("
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 10
  br bool %c, label %b, label %x
b:
  %s2 = add int %s, %i
  %i2 = add int %i, 1
  br label %h
x:
  ret int %s
}"),
            45
        );
    }

    #[test]
    fn memory_structs_and_geps() {
        assert_eq!(
            run("
%pt = type { int, [3 x int] }
define int @main() {
e:
  %p = malloc %pt
  %f0 = getelementptr %pt* %p, long 0, ubyte 0
  store int 5, int* %f0
  %a1 = getelementptr %pt* %p, long 0, ubyte 1, long 2
  store int 37, int* %a1
  %x = load int* %f0
  %y = load int* %a1
  %s = add int %x, %y
  free %pt* %p
  ret int %s
}"),
            42
        );
    }

    #[test]
    fn recursion_factorial() {
        assert_eq!(
            run("
define int @fact(int %n) {
e:
  %c = setle int %n, 1
  br bool %c, label %base, label %rec
base:
  ret int 1
rec:
  %n1 = sub int %n, 1
  %r = call int @fact(int %n1)
  %v = mul int %n, %r
  ret int %v
}
define int @main() {
e:
  %v = call int @fact(int 6)
  ret int %v
}"),
            720
        );
    }

    #[test]
    fn function_pointers() {
        assert_eq!(
            run("
define int @dbl(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @main() {
e:
  %p = alloca int (int)*
  store int (int)* @dbl, int (int)** %p
  %fp = load int (int)** %p
  %v = call int %fp(int 21)
  ret int %v
}"),
            42
        );
    }

    #[test]
    fn invoke_unwind_catches() {
        assert_eq!(
            run("
define void @thrower(int %x) {
e:
  %c = setgt int %x, 5
  br bool %c, label %t, label %ok
t:
  unwind
ok:
  ret void
}
define int @main() {
e:
  invoke void @thrower(int 10) to label %fine unwind label %handler
fine:
  ret int 0
handler:
  ret int 99
}"),
            99
        );
    }

    #[test]
    fn unwind_skips_plain_call_frames() {
        // main -invoke-> mid -call-> thrower: the unwind pops through mid.
        assert_eq!(
            run("
define void @thrower() {
e:
  unwind
}
define void @mid() {
e:
  call void @thrower()
  ret void
}
define int @main() {
e:
  invoke void @mid() to label %fine unwind label %handler
fine:
  ret int 1
handler:
  ret int 2
}"),
            2
        );
    }

    #[test]
    fn uncaught_unwind_traps() {
        match run_err("define int @main() {\ne:\n  unwind\n}") {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::UncaughtUnwind),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn div_by_zero_and_null_trap() {
        match run_err("define int @main() {\ne:\n  %x = div int 1, 0\n  ret int %x\n}") {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::DivByZero),
            other => panic!("{other:?}"),
        }
        match run_err("define int @main() {\ne:\n  %v = load int* null\n  ret int %v\n}") {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::NullAccess),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn globals_and_io() {
        let (r, out) = run_opts(
            "
@counter = global int 0
@msg = constant [3 x sbyte] c\"hi\\00\"
declare int @puts(sbyte*)
declare void @print_int(int)
define int @main() {
e:
  %p = getelementptr [3 x sbyte]* @msg, long 0, long 0
  %r = call int @puts(sbyte* %p)
  store int 41, int* @counter
  %v = load int* @counter
  %v2 = add int %v, 1
  call void @print_int(int %v2)
  ret int %v2
}",
            VmOptions::default(),
        );
        assert_eq!(r, 42);
        assert_eq!(out, "hi\n42\n");
    }

    #[test]
    fn scripted_input_and_exit() {
        let mut opts = VmOptions::default();
        opts.input.push_back(7);
        let (r, _) = run_opts(
            "
declare int @read_int()
declare void @exit(int)
define int @main() {
e:
  %v = call int @read_int()
  %c = seteq int %v, 7
  br bool %c, label %good, label %bad
good:
  call void @exit(int 3)
  unreachable
bad:
  ret int 1
}",
            opts,
        );
        assert_eq!(r, 3);
    }

    #[test]
    fn varargs_and_vaarg() {
        assert_eq!(
            run("
define int @sum2(int %n, ...) {
e:
  %a = vaarg int
  %b = vaarg int
  %s = add int %a, %b
  ret int %s
}
define int @main() {
e:
  %v = call int @sum2(int 2, int 40, int 2)
  ret int %v
}"),
            42
        );
    }

    #[test]
    fn fuel_limits_runaway() {
        let m = lpat_asm::parse_module(
            "t",
            "define int @main() {\ne:\n  br label %l\nl:\n  br label %l\n}",
        )
        .unwrap();
        let opts = VmOptions {
            fuel: Some(1000),
            ..VmOptions::default()
        };
        let mut vm = Vm::new(&m, opts).unwrap();
        match vm.run_main().unwrap_err() {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::OutOfFuel),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsigned_semantics() {
        assert_eq!(
            run("
define int @main() {
e:
  %x = cast int -1 to uint
  %y = div uint %x, 2
  %big = setgt uint %y, 1000000000
  %r = cast bool %big to int
  ret int %r
}"),
            1
        );
    }

    #[test]
    fn profiling_counts_loop_blocks() {
        let m = lpat_asm::parse_module(
            "t",
            "
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %c = setlt int %i, 100
  br bool %c, label %b, label %x
b:
  %i2 = add int %i, 1
  br label %h
x:
  ret int %i
}",
        )
        .unwrap();
        let opts = VmOptions {
            profile: true,
            ..VmOptions::default()
        };
        let mut vm = Vm::new(&m, opts).unwrap();
        assert_eq!(vm.run_main().unwrap(), 100);
        let main = m.func_by_name("main").unwrap();
        let h = lpat_core::BlockId::from_index(1);
        let b = lpat_core::BlockId::from_index(2);
        assert_eq!(vm.profile.block_count(main, h), 101);
        assert_eq!(vm.profile.block_count(main, b), 100);
        assert_eq!(vm.profile.edge_count(main, b, h), 100);
        let hot = vm.profile.hot_loops(&m, 50);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].header, h);
        let (trace, coverage) = form_trace(&m, &vm.profile, &hot[0]);
        assert_eq!(trace, vec![h, b]);
        assert!(coverage > 0.99);
    }

    #[test]
    fn pgo_inlines_hot_site_and_preserves_behavior() {
        let src = "
define int @helper(int %x) {
e:
  %r = mul int %x, 3
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %h ]
  %s = phi int [ 0, %e ], [ %s2, %h ]
  %v = call int @helper(int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  %c = setlt int %i2, 200
  br bool %c, label %h, label %x
x:
  ret int %s2
}";
        let mut m: Module = lpat_asm::parse_module("t", src).unwrap();
        let opts = VmOptions {
            profile: true,
            ..VmOptions::default()
        };
        let (before, profile) = {
            let mut vm = Vm::new(&m, opts.clone()).unwrap();
            let r = vm.run_main().unwrap();
            (r, vm.profile.clone())
        };
        let report = reoptimize(&mut m, &profile, &PgoOptions::default());
        assert!(report.inlined >= 1, "{report:?}");
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm.run_main().unwrap(), before);
        assert!(!m.display().contains("call int @helper"));
    }

    #[test]
    fn pgo_layout_puts_hot_successor_next() {
        let src = "
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i3, %latch ]
  %c = setlt int %i, 100
  br bool %c, label %cold_check, label %x
cold_check:
  %odd = rem int %i, 2
  %is0 = seteq int %odd, 0
  br bool %is0, label %hot, label %cold
hot:
  %i1 = add int %i, 1
  br label %latch
cold:
  %i2 = add int %i, 1
  br label %latch
latch:
  %i3 = phi int [ %i1, %hot ], [ %i2, %cold ]
  br label %h
x:
  ret int %i
}";
        let mut m: Module = lpat_asm::parse_module("t", src).unwrap();
        let opts = VmOptions {
            profile: true,
            ..VmOptions::default()
        };
        let profile = {
            let mut vm = Vm::new(&m, opts).unwrap();
            vm.run_main().unwrap();
            vm.profile.clone()
        };
        let relaid = pgo::layout_by_profile(&mut m, &profile);
        assert_eq!(relaid, 1);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        // Behavior preserved.
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm.run_main().unwrap(), 100);
    }
}

#[cfg(test)]
mod trap_tests {
    use super::*;

    #[test]
    fn stack_overflow_traps_cleanly() {
        let m = lpat_asm::parse_module(
            "t",
            "
define int @inf(int %n) {
e:
  %r = call int @inf(int %n)
  ret int %r
}
define int @main() {
e:
  %v = call int @inf(int 0)
  ret int %v
}",
        )
        .unwrap();
        let opts = VmOptions {
            max_stack: 64,
            ..VmOptions::default()
        };
        let mut vm = Vm::new(&m, opts).unwrap();
        match vm.run_main().unwrap_err() {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::StackOverflow),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_free_traps() {
        let m = lpat_asm::parse_module(
            "t",
            "
define int @main() {
e:
  %p = malloc int
  free int* %p
  free int* %p
  ret int 0
}",
        )
        .unwrap();
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        match vm.run_main().unwrap_err() {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::BadFree),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn global_initializers_materialize_pointers() {
        // A global struct holding a pointer to another global and a
        // function pointer: both must resolve through memory.
        let m = lpat_asm::parse_module(
            "t",
            "
@target = global int 42
define int @getter() {
e:
  ret int 7
}
%holder = type { int*, int ()* }
@h = global %holder { int* @target, int ()* @getter }
define int @main() {
e:
  %pp = getelementptr %holder* @h, long 0, ubyte 0
  %p = load int** %pp
  %v = load int* %p
  %fp0 = getelementptr %holder* @h, long 0, ubyte 1
  %fp = load int ()** %fp0
  %w = call int %fp()
  %s = add int %v, %w
  ret int %s
}",
        )
        .unwrap();
        m.verify().unwrap();
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm.run_main().unwrap(), 49);
        // And identically under the JIT.
        let mut vm2 = Vm::new(&m, VmOptions::default()).unwrap();
        assert_eq!(vm2.run_main_jit().unwrap(), 49);
    }
}
