//! Offline reoptimization with end-user profile information (paper §3.6).
//!
//! Because the representation is preserved alongside the native code, an
//! idle-time optimizer can rerun interprocedural transformations with the
//! profiles gathered from the user's actual runs. This module implements
//! two such profile-guided transformations:
//!
//! * **hot call-site inlining** — call sites whose execution count clears a
//!   threshold are integrated regardless of the static inliner's size
//!   policy;
//! * **profile-guided code layout** — blocks are reordered so the hottest
//!   successor of each block is its fall-through, improving the locality of
//!   the native code a backend would emit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use lpat_core::fault::FaultAction;
use lpat_core::trace;
use lpat_core::{BlockId, Const, FuncId, Inst, Module, Value};
use lpat_transform::gvn::Gvn;
use lpat_transform::inline::inline_site;
use lpat_transform::scalar::{Dce, InstSimplify};
use lpat_transform::simplifycfg::SimplifyCfg;
use lpat_transform::{FaultCause, FunctionPassAdapter, PassFault, PassManager, PipelineReport};

use crate::profile::ProfileData;

/// Thresholds for the reoptimizer.
#[derive(Clone, Debug)]
pub struct PgoOptions {
    /// Minimum call-site count for profile-guided inlining.
    pub hot_call_threshold: u64,
    /// Ceiling on callee size for hot inlining (instructions).
    pub max_callee_size: usize,
    /// Ceiling on caller growth (instructions).
    pub caller_cap: usize,
    /// Worker threads for the cleanup pipeline run after hot inlining
    /// (`None` = the pass manager's default).
    pub jobs: Option<usize>,
    /// When set, compute the speculation plan against the reoptimized
    /// module: which guards the accumulated profile justifies emitting,
    /// and which prior speculations it retracts (misspeculation rate over
    /// the threshold). The plan is *reported*, not baked into the stored
    /// module — guards are re-applied in memory at run time, so the store
    /// keeps the unspeculated module the profile is attributed to.
    pub spec: Option<lpat_transform::SpecOptions>,
}

impl Default for PgoOptions {
    fn default() -> Self {
        PgoOptions {
            hot_call_threshold: 64,
            max_callee_size: 2000,
            caller_cap: 50_000,
            jobs: None,
            spec: None,
        }
    }
}

/// What the reoptimizer did.
#[derive(Clone, Debug, Default)]
pub struct PgoReport {
    /// Hot call sites inlined.
    pub inlined: usize,
    /// Functions whose block layout changed.
    pub relaid: usize,
    /// Per-pass timings and analysis-cache traffic of the cleanup pipeline
    /// run after hot inlining (empty when nothing was inlined) — the same
    /// structured report the static pipelines and `lpatc --time-passes`
    /// produce.
    pub cleanup: PipelineReport,
    /// Faults isolated during reoptimization: the hot-inlining stage's own
    /// rollback plus anything the cleanup pipeline degraded on. The
    /// reoptimizer runs against a *live* program, so a fault here must
    /// leave the module untouched, never take the process down.
    pub faults: Vec<PassFault>,
    /// The speculation plan computed against the final module (when
    /// [`PgoOptions::spec`] is set). Its canonical rendering is pure in
    /// `(module, profile, options)`, so offline reopt at any `--jobs`
    /// produces byte-identical plan text to the in-memory decision.
    pub spec_plan: Option<lpat_transform::SpecPlan>,
}

impl PgoReport {
    /// Whether any reoptimization stage was rolled back.
    pub fn degraded(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Apply profile-guided reoptimization to `m` using `profile`.
///
/// The hot-inlining stage is fault-isolated exactly like a module pass:
/// it runs under `catch_unwind` against a snapshot (fault site
/// `pgo-inline`), and on a panic the snapshot is restored and the fault is
/// recorded in [`PgoReport::faults`] — layout still runs on the
/// un-inlined module.
pub fn reoptimize(m: &mut Module, profile: &ProfileData, opts: &PgoOptions) -> PgoReport {
    let mut report = PgoReport::default();
    let snapshot = m.clone();
    let injected = lpat_core::faultpoint!("pgo-inline");
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        match injected {
            Some(FaultAction::Panic) | Some(FaultAction::Abort) => {
                panic!("injected fault at site 'pgo-inline'")
            }
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Corrupt) | Some(FaultAction::Io) | None => {}
        }
        inline_hot_sites(m, profile, opts)
    }));
    match outcome {
        Ok(n) => report.inlined = n,
        Err(payload) => {
            *m = snapshot;
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            report.faults.push(PassFault {
                pass: "pgo-inline".to_string(),
                function: None,
                cause: FaultCause::Panic(msg),
                elapsed: t0.elapsed(),
            });
        }
    }
    if report.inlined > 0 {
        // Clean up what hot inlining exposed before choosing a layout,
        // through the instrumented pass framework.
        let mut pm = PassManager::new();
        pm.jobs = opts.jobs;
        pm.add(
            FunctionPassAdapter::new("pgo-cleanup")
                .add(InstSimplify::default())
                .add(Gvn::default())
                .add(SimplifyCfg::default())
                .add(Dce::default()),
        );
        report.cleanup = pm.run(m);
        report.faults.extend(report.cleanup.faults.iter().cloned());
    }
    report.relaid = layout_by_profile(m, profile);
    if let Some(sopts) = &opts.spec {
        // Plan only — `compute_plan` takes `&Module` and never interns
        // constants, so the stored module's bytes are unaffected.
        report.spec_plan = Some(lpat_transform::speculate::compute_plan(
            m,
            &profile.to_spec_profile(),
            sopts,
        ));
    }
    report
}

/// Inline call sites hotter than the threshold. Returns sites inlined.
pub fn inline_hot_sites(m: &mut Module, profile: &ProfileData, opts: &PgoOptions) -> usize {
    let mut sp = trace::span("pgo", "inline-hot-sites");
    let mut inlined = 0;
    for (caller, site, count) in profile.hot_callsites(opts.hot_call_threshold) {
        if caller.index() >= m.num_funcs() {
            continue;
        }
        let f = m.func(caller);
        if f.is_declaration() || f.num_insts() >= opts.caller_cap {
            continue;
        }
        // The site must still exist (earlier inlining may have rewritten
        // the caller) and be a direct call to a small-enough definition.
        let inst_blocks = f.inst_blocks();
        let b = match inst_blocks.get(site.index()).copied().flatten() {
            Some(b) => b,
            None => continue,
        };
        let callee = match f.inst(site) {
            Inst::Call {
                callee: Value::Const(c),
                ..
            } => match m.consts.get(*c) {
                Const::FuncAddr(t) => *t,
                _ => continue,
            },
            _ => continue, // invoke sites are left to the static inliner
        };
        if callee == caller {
            continue;
        }
        let target = m.func(callee);
        if target.is_declaration()
            || target.is_varargs()
            || target.num_insts() > opts.max_callee_size
        {
            continue;
        }
        inline_site(m, caller, b, site, callee);
        inlined += 1;
        if trace::enabled() {
            trace::instant_args(
                "pgo",
                "hot-callsite",
                vec![
                    ("caller", m.func(caller).name.clone()),
                    ("site", site.index().to_string()),
                    ("count", count.to_string()),
                ],
            );
        }
    }
    sp.arg("inlined", inlined.to_string());
    inlined
}

/// Reorder every profiled function's blocks so hot successors fall
/// through. Returns the number of functions re-laid.
pub fn layout_by_profile(m: &mut Module, profile: &ProfileData) -> usize {
    let mut sp = trace::span("pgo", "layout");
    let mut relaid = 0;
    for fid in m.func_ids().collect::<Vec<_>>() {
        if m.func(fid).is_declaration() {
            continue;
        }
        let order = hot_layout_order(m, fid, profile);
        let identity: Vec<BlockId> = m.func(fid).block_ids().collect();
        if order != identity {
            m.func_mut(fid).permute_blocks(&order);
            relaid += 1;
            if trace::enabled() {
                trace::instant_args(
                    "pgo",
                    "relaid",
                    vec![("function", m.func(fid).name.clone())],
                );
            }
        }
    }
    sp.arg("relaid", relaid.to_string());
    relaid
}

/// Compute a block order: greedy chains following the hottest outgoing
/// edge, seeded from the entry, then remaining blocks by hotness.
fn hot_layout_order(m: &Module, fid: FuncId, profile: &ProfileData) -> Vec<BlockId> {
    let f = m.func(fid);
    let n = f.num_blocks();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut seeds: Vec<BlockId> = f.block_ids().collect();
    // Hottest seeds first, but the entry block must lead.
    seeds.sort_by_key(|&b| {
        (
            b != f.entry(),
            std::cmp::Reverse(profile.block_count(fid, b)),
        )
    });
    for seed in seeds {
        let mut cur = seed;
        while !placed[cur.index()] {
            placed[cur.index()] = true;
            order.push(cur);
            // Follow the hottest not-yet-placed successor.
            let next = f
                .successors(cur)
                .into_iter()
                .filter(|s| !placed[s.index()])
                .max_by_key(|&s| profile.edge_count(fid, cur, s));
            match next {
                Some(s) => cur = s,
                None => break,
            }
        }
    }
    order
}
