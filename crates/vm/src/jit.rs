//! The just-in-time execution engine (paper §3.4).
//!
//! The paper's second code-generation option: "a just-in-time Execution
//! Engine can be used which invokes the appropriate code generator at
//! runtime, **translating one function at a time** for execution". This
//! module is that translator for the VM: on a function's first call it is
//! lowered to a dense, pre-resolved form — constants pre-evaluated,
//! `getelementptr` type walks pre-compiled to scale/offset arithmetic,
//! φ-moves attached to edges, direct callees pre-bound — and the flat code
//! is then executed by a tight dispatch loop. Later calls hit the
//! translation cache (a dense `Vec` indexed by `FuncId`).
//!
//! Two dispatch-level optimizations ride on the translated form:
//!
//! * **Superinstructions**: the dominant dispatch pairs — a compare
//!   feeding a conditional branch, and a binary op followed by an
//!   unconditional branch (the classic loop-latch `i += 1; br header`
//!   shape) — are fused into single `LowOp`s after translation. Fusion
//!   uses a *dead-slot* scheme: the fused op replaces the first
//!   instruction and the second stays in place (sequentially unreachable,
//!   but still a valid jump target), so no pc needs rewriting. Fused ops
//!   charge fuel and the opcode histogram per *micro-op*, keeping
//!   accounting identical to the interpreter.
//! * **Inline caches**: each indirect call site carries a monomorphic
//!   cache mapping the last callee address to its `FuncId`, skipping the
//!   address decode on a hit (function addresses are static for the
//!   engine's lifetime, so a hit can never go stale).
//!
//! Semantics are identical to the reference interpreter (differential
//! tests in `tests/` run all engines on the whole workload suite) —
//! including, since the tiered engine landed, the profile counters and
//! the per-opcode histogram: translated code records the same
//! block/edge/call/callsite counts and opcode counts the interpreter
//! would, so profiles and `--stats` are engine-independent.

use std::cell::Cell;
use std::rc::Rc;

use lpat_core::trace;
use lpat_core::{
    BinOp, BlockId, CmpPred, Const, FuncId, Inst, InstId, IntKind, Module, Type, TypeId, Value,
};

use crate::error::{ExecError, TrapKind};
use crate::interp::Vm;
use crate::mem::Memory;
use crate::value::VmValue;

/// A pre-resolved operand.
#[derive(Clone, Debug)]
pub(crate) enum Slot {
    /// A virtual register (instruction result).
    Reg(u32),
    /// A formal argument.
    Arg(u32),
    /// A pre-evaluated constant.
    Imm(VmValue),
}

/// What a load/store moves.
#[derive(Copy, Clone, Debug)]
pub(crate) enum MemKind {
    Bool,
    Int(IntKind),
    F32,
    F64,
    Ptr,
}

/// A CFG edge: φ-moves then a jump target. `from`/`to` are the source
/// block indices, kept so translated dispatch can record the same edge
/// profile the interpreter would.
#[derive(Clone, Debug)]
pub(crate) struct Edge {
    pub(crate) copies: Vec<(u32, Slot)>,
    pub(crate) target: usize,
    pub(crate) from: u32,
    pub(crate) to: u32,
}

/// One translated instruction.
#[derive(Clone, Debug)]
pub(crate) enum LowOp {
    Bin {
        op: BinOp,
        dst: u32,
        a: Slot,
        b: Slot,
    },
    Cmp {
        pred: CmpPred,
        dst: u32,
        a: Slot,
        b: Slot,
    },
    Cast {
        dst: u32,
        src: Slot,
        to: TypeId,
    },
    Load {
        dst: u32,
        ptr: Slot,
        kind: MemKind,
    },
    Store {
        val: Slot,
        ptr: Slot,
    },
    /// addr = base + const_off + Σ index·scale — the type walk is gone.
    Gep {
        dst: u32,
        base: Slot,
        const_off: i64,
        scaled: Vec<(Slot, i64)>,
    },
    Alloc {
        dst: u32,
        elem_size: u32,
        count: Option<Slot>,
        stack: bool,
    },
    Free(Slot),
    Call {
        dst: Option<u32>,
        callee: Callee,
        args: Vec<Slot>,
        /// `Some((normal, unwind))` for invokes.
        eh: Option<(usize, usize)>,
        /// Source `InstId` index, for callsite profiling.
        site: u32,
    },
    Br(usize),
    CondBr {
        c: Slot,
        t: usize,
        f: usize,
    },
    Switch {
        v: Slot,
        cases: Vec<(i64, usize)>,
        default: usize,
    },
    Ret(Option<Slot>),
    Unwind,
    Unreachable,
    VaArg {
        dst: u32,
    },
    /// A speculation guard: a conditional branch whose `then` edge is the
    /// speculated fast path. Identical to [`LowOp::CondBr`] in fuel and
    /// histogram accounting, plus guard bookkeeping; a failed guard
    /// reports [`Flow::Deopt`] after taking the fail edge.
    Guard {
        gid: u32,
        c: Slot,
        t: usize,
        f: usize,
    },
    /// Superinstruction: compare + conditional branch on the result.
    CmpBr {
        pred: CmpPred,
        dst: u32,
        a: Slot,
        b: Slot,
        t: usize,
        f: usize,
    },
    /// Superinstruction: compare + speculation guard on the result.
    GuardCmpBr {
        gid: u32,
        pred: CmpPred,
        dst: u32,
        a: Slot,
        b: Slot,
        t: usize,
        f: usize,
    },
    /// Superinstruction: binary op + unconditional branch (loop latch).
    BinBr {
        op: BinOp,
        dst: u32,
        a: Slot,
        b: Slot,
        e: usize,
    },
}

#[derive(Clone, Debug)]
pub(crate) enum Callee {
    Direct(FuncId),
    /// Indirect call with a monomorphic inline cache:
    /// `(addr, func_index + 1)`, `(_, 0)` = empty. Function addresses are
    /// a fixed arithmetic range for the engine's lifetime, so a cached
    /// mapping can never go stale. `Cell` is sound here: translated code
    /// is only shared within one (single-threaded) engine.
    Indirect {
        s: Slot,
        ic: Cell<(u32, u32)>,
    },
}

/// A translated function.
pub struct LowFunc {
    pub(crate) n_regs: usize,
    pub(crate) code: Vec<LowOp>,
    pub(crate) edges: Vec<Edge>,
    /// pc of each block's first instruction, indexed by block. Used by
    /// the tiered engine for on-stack replacement at loop headers.
    pub(crate) block_pc: Vec<usize>,
    /// Function name (for diagnostics and listings).
    pub name: String,
}

/// Translate `fid` (the per-function "code generation" step).
pub fn translate(m: &Module, fid: FuncId) -> Result<LowFunc, ExecError> {
    translate_spec(m, fid, None)
}

/// Translate `fid` with an optional speculation overlay: conditional
/// branches registered in `spec` lower to [`LowOp::Guard`] instead of
/// [`LowOp::CondBr`], so guard failures can report [`Flow::Deopt`] with
/// their guard id. With `spec = None` this is exactly [`translate`].
pub(crate) fn translate_spec(
    m: &Module,
    fid: FuncId,
    spec: Option<&lpat_transform::SpecMap>,
) -> Result<LowFunc, ExecError> {
    let f = m.func(fid);
    if f.is_declaration() {
        return Err(ExecError::trap(
            TrapKind::Invalid,
            format!("cannot translate declaration @{}", f.name),
        ));
    }
    // Pass 1: pc of each block (φs emit no code).
    let mut block_pc: Vec<usize> = Vec::with_capacity(f.num_blocks());
    let mut pc = 0usize;
    for b in f.block_ids() {
        block_pc.push(pc);
        pc += f
            .block_insts(b)
            .iter()
            .filter(|&&i| !matches!(f.inst(i), Inst::Phi { .. }))
            .count();
    }
    let slot_of = |v: Value| -> Result<Slot, ExecError> {
        Ok(match v {
            Value::Inst(i) => Slot::Reg(i.index() as u32),
            Value::Arg(n) => Slot::Arg(n),
            Value::Const(c) => Slot::Imm(const_value(m, c)?),
        })
    };
    // Pass 2: emit.
    let mut code: Vec<LowOp> = Vec::with_capacity(pc);
    let mut edges: Vec<Edge> = Vec::new();
    let make_edge = |m: &Module,
                     edges: &mut Vec<Edge>,
                     from: BlockId,
                     to: BlockId|
     -> Result<usize, ExecError> {
        let f = m.func(fid);
        let mut copies = Vec::new();
        for &iid in f.block_insts(to) {
            if let Inst::Phi { incoming } = f.inst(iid) {
                let (v, _) = incoming
                    .iter()
                    .find(|(_, b)| *b == from)
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "phi missing edge"))?;
                copies.push((iid.index() as u32, slot_of(*v)?));
            }
        }
        edges.push(Edge {
            copies,
            target: block_pc[to.index()],
            from: from.index() as u32,
            to: to.index() as u32,
        });
        Ok(edges.len() - 1)
    };
    for b in f.block_ids() {
        for &iid in f.block_insts(b) {
            let dst = iid.index() as u32;
            let op = match f.inst(iid).clone() {
                Inst::Phi { .. } => continue,
                Inst::Bin { op, lhs, rhs } => LowOp::Bin {
                    op,
                    dst,
                    a: slot_of(lhs)?,
                    b: slot_of(rhs)?,
                },
                Inst::Cmp { pred, lhs, rhs } => LowOp::Cmp {
                    pred,
                    dst,
                    a: slot_of(lhs)?,
                    b: slot_of(rhs)?,
                },
                Inst::Cast { val, to } => LowOp::Cast {
                    dst,
                    src: slot_of(val)?,
                    to,
                },
                Inst::Load { ptr } => LowOp::Load {
                    dst,
                    ptr: slot_of(ptr)?,
                    kind: mem_kind(m, f.inst_ty(iid))?,
                },
                Inst::Store { val, ptr } => LowOp::Store {
                    val: slot_of(val)?,
                    ptr: slot_of(ptr)?,
                },
                Inst::Gep { ptr, indices } => {
                    let (const_off, scaled) = compile_gep(m, fid, ptr, &indices, &slot_of)?;
                    LowOp::Gep {
                        dst,
                        base: slot_of(ptr)?,
                        const_off,
                        scaled,
                    }
                }
                Inst::Malloc { elem_ty, count } | Inst::Alloca { elem_ty, count } => {
                    let stack = matches!(f.inst(iid), Inst::Alloca { .. });
                    LowOp::Alloc {
                        dst,
                        elem_size: m
                            .types
                            .try_size_of(elem_ty)
                            .ok_or_else(|| {
                                ExecError::trap(TrapKind::Invalid, "allocation of unsized type")
                            })?
                            .min(u32::MAX as u64) as u32,
                        count: match count {
                            Some(c) => Some(slot_of(c)?),
                            None => None,
                        },
                        stack,
                    }
                }
                Inst::Free(p) => LowOp::Free(slot_of(p)?),
                Inst::Call { callee, args } => LowOp::Call {
                    dst: producing(m, f, iid),
                    callee: compile_callee(m, callee, &slot_of)?,
                    args: args.iter().map(|&a| slot_of(a)).collect::<Result<_, _>>()?,
                    eh: None,
                    site: iid.index() as u32,
                },
                Inst::Invoke {
                    callee,
                    args,
                    normal,
                    unwind,
                } => {
                    let n = make_edge(m, &mut edges, b, normal)?;
                    let u = make_edge(m, &mut edges, b, unwind)?;
                    LowOp::Call {
                        dst: producing(m, f, iid),
                        callee: compile_callee(m, callee, &slot_of)?,
                        args: args.iter().map(|&a| slot_of(a)).collect::<Result<_, _>>()?,
                        eh: Some((n, u)),
                        site: iid.index() as u32,
                    }
                }
                Inst::Br(t) => LowOp::Br(make_edge(m, &mut edges, b, t)?),
                Inst::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let t = make_edge(m, &mut edges, b, then_bb)?;
                    let fe = make_edge(m, &mut edges, b, else_bb)?;
                    match spec.and_then(|s| s.guard_at(fid, iid)) {
                        Some(g) => LowOp::Guard {
                            gid: g.id,
                            c: slot_of(cond)?,
                            t,
                            f: fe,
                        },
                        None => LowOp::CondBr {
                            c: slot_of(cond)?,
                            t,
                            f: fe,
                        },
                    }
                }
                Inst::Switch {
                    val,
                    default,
                    cases,
                } => {
                    let mut lc = Vec::with_capacity(cases.len());
                    for (c, blk) in &cases {
                        let (_, v) = m
                            .consts
                            .as_int(*c)
                            .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "switch case"))?;
                        lc.push((v, make_edge(m, &mut edges, b, *blk)?));
                    }
                    LowOp::Switch {
                        v: slot_of(val)?,
                        cases: lc,
                        default: make_edge(m, &mut edges, b, default)?,
                    }
                }
                Inst::Ret(v) => LowOp::Ret(match v {
                    Some(v) => Some(slot_of(v)?),
                    None => None,
                }),
                Inst::Unwind => LowOp::Unwind,
                Inst::Unreachable => LowOp::Unreachable,
                Inst::VaArg { .. } => LowOp::VaArg { dst },
            };
            code.push(op);
        }
    }
    fuse(&mut code);
    Ok(LowFunc {
        n_regs: f.num_inst_slots(),
        code,
        edges,
        block_pc,
        name: f.name.clone(),
    })
}

/// Fuse dominant dispatch pairs into superinstructions.
///
/// The fused op replaces `code[i]`; `code[i+1]` is left untouched — it
/// becomes sequentially dead (the fused op always jumps) but remains a
/// valid jump target, so no pc in `block_pc`/`edges` needs rewriting and
/// a jump *into* the second slot behaves exactly as before fusion.
fn fuse(code: &mut [LowOp]) {
    for i in 0..code.len().saturating_sub(1) {
        let fused = match (&code[i], &code[i + 1]) {
            (
                LowOp::Cmp { pred, dst, a, b },
                LowOp::CondBr {
                    c: Slot::Reg(r),
                    t,
                    f,
                },
            ) if *r == *dst => Some(LowOp::CmpBr {
                pred: *pred,
                dst: *dst,
                a: a.clone(),
                b: b.clone(),
                t: *t,
                f: *f,
            }),
            (
                LowOp::Cmp { pred, dst, a, b },
                LowOp::Guard {
                    gid,
                    c: Slot::Reg(r),
                    t,
                    f,
                },
            ) if *r == *dst => Some(LowOp::GuardCmpBr {
                gid: *gid,
                pred: *pred,
                dst: *dst,
                a: a.clone(),
                b: b.clone(),
                t: *t,
                f: *f,
            }),
            (LowOp::Bin { op, dst, a, b }, LowOp::Br(e)) => Some(LowOp::BinBr {
                op: *op,
                dst: *dst,
                a: a.clone(),
                b: b.clone(),
                e: *e,
            }),
            _ => None,
        };
        if let Some(op) = fused {
            code[i] = op;
        }
    }
}

fn producing(m: &Module, f: &lpat_core::Function, iid: lpat_core::InstId) -> Option<u32> {
    if f.inst_ty(iid) == m.types.void() {
        None
    } else {
        Some(iid.index() as u32)
    }
}

fn mem_kind(m: &Module, ty: TypeId) -> Result<MemKind, ExecError> {
    Ok(match m.types.ty(ty) {
        Type::Bool => MemKind::Bool,
        Type::Int(k) => MemKind::Int(*k),
        Type::F32 => MemKind::F32,
        Type::F64 => MemKind::F64,
        Type::Ptr(_) => MemKind::Ptr,
        other => {
            return Err(ExecError::trap(
                TrapKind::Invalid,
                format!("non-first-class memory access {other:?}"),
            ))
        }
    })
}

fn compile_callee(
    m: &Module,
    callee: Value,
    slot_of: &dyn Fn(Value) -> Result<Slot, ExecError>,
) -> Result<Callee, ExecError> {
    if let Value::Const(c) = callee {
        if let Const::FuncAddr(f) = m.consts.get(c) {
            return Ok(Callee::Direct(*f));
        }
    }
    Ok(Callee::Indirect {
        s: slot_of(callee)?,
        ic: Cell::new((0, 0)),
    })
}

/// Pre-compile a GEP's type walk into `const_off + Σ slot·scale`.
fn compile_gep(
    m: &Module,
    fid: FuncId,
    ptr: Value,
    indices: &[Value],
    slot_of: &dyn Fn(Value) -> Result<Slot, ExecError>,
) -> Result<(i64, Vec<(Slot, i64)>), ExecError> {
    let f = m.func(fid);
    let tys = &m.types;
    let mut cur = tys
        .pointee(m.value_type(f, ptr))
        .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep base"))?;
    let mut const_off: i64 = 0;
    let mut scaled = Vec::new();
    for (k, &idx) in indices.iter().enumerate() {
        let const_v = match idx {
            Value::Const(c) => m.consts.as_int(c).map(|(_, v)| v),
            _ => None,
        };
        if k == 0 {
            let scale = tys
                .try_size_of(cur)
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep through unsized type"))?
                as i64;
            match const_v {
                Some(v) => const_off = const_off.wrapping_add(v.wrapping_mul(scale)),
                None => scaled.push((slot_of(idx)?, scale)),
            }
            continue;
        }
        match tys.ty(cur).clone() {
            Type::Struct { fields, .. } => {
                let fi = const_v
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "struct index"))?
                    as usize;
                // Decoded-but-unverified modules can carry an index past
                // the struct's arity; trap instead of indexing.
                if fi >= fields.len() || tys.try_size_of(cur).is_none() {
                    return Err(ExecError::trap(
                        TrapKind::Invalid,
                        format!("struct index {fi} out of range"),
                    ));
                }
                const_off = const_off.wrapping_add(tys.field_offset(cur, fi) as i64);
                cur = fields[fi];
            }
            Type::Array { elem, .. } => {
                let scale = tys
                    .try_size_of(elem)
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep through unsized type"))?
                    as i64;
                match const_v {
                    Some(v) => const_off = const_off.wrapping_add(v.wrapping_mul(scale)),
                    None => scaled.push((slot_of(idx)?, scale)),
                }
                cur = elem;
            }
            _ => return Err(ExecError::trap(TrapKind::Invalid, "gep into scalar")),
        }
    }
    Ok((const_off, scaled))
}

fn const_value(m: &Module, c: lpat_core::ConstId) -> Result<VmValue, ExecError> {
    Ok(match m.consts.get(c) {
        Const::Bool(b) => VmValue::Bool(*b),
        Const::Int { kind, value } => VmValue::Int {
            kind: *kind,
            v: *value,
        },
        Const::F32(bits) => VmValue::F32(f32::from_bits(*bits)),
        Const::F64(bits) => VmValue::F64(f64::from_bits(*bits)),
        Const::Null(_) => VmValue::Ptr(0),
        Const::Undef(t) if m.types.is_first_class(*t) => VmValue::zero_of(&m.types, *t),
        Const::Zero(t) if m.types.is_first_class(*t) => VmValue::zero_of(&m.types, *t),
        Const::FuncAddr(f) => VmValue::Ptr(Memory::func_addr(f.index())),
        // Global addresses depend on the engine's memory layout; the
        // engine publishes it through a thread-local before translating.
        Const::GlobalAddr(g) => match resolve_global(g.index()) {
            Some(addr) => VmValue::Ptr(addr),
            None => {
                return Err(ExecError::trap(
                    TrapKind::Invalid,
                    "global address used outside an engine translation",
                ))
            }
        },
        other => {
            return Err(ExecError::trap(
                TrapKind::Invalid,
                format!("aggregate constant {other:?} used as scalar"),
            ))
        }
    })
}

// ----------------------------------------------------------------------
// Execution
// ----------------------------------------------------------------------

pub(crate) struct JitFrame {
    pub(crate) func: FuncId,
    /// The frame's translated code, resolved once at push so the hot
    /// dispatch loop never touches the translation cache.
    pub(crate) lf: Rc<LowFunc>,
    pub(crate) regs: Vec<VmValue>,
    pub(crate) args: Vec<VmValue>,
    pub(crate) varargs: Vec<VmValue>,
    pub(crate) va_next: usize,
    pub(crate) pc: usize,
    pub(crate) allocas: Vec<u32>,
    /// Pending call's (dst, eh-edges), restored on return/unwind.
    pub(crate) pending: PendingCall,
}

/// A suspended call site: destination register (if any) and the invoke's
/// (normal, unwind) edge indices (if the call was an invoke).
pub(crate) type PendingCall = Option<(Option<u32>, Option<(usize, usize)>)>;

impl<'m> Vm<'m> {
    /// Run `main` under the JIT engine (translate-on-first-call +
    /// translation cache). Produces the same results as [`Vm::run_main`],
    /// including profile counters when `opts.profile` is set: translated
    /// dispatch records the same block/edge/call/callsite counts the
    /// interpreter would.
    pub fn run_main_jit(&mut self) -> Result<i64, ExecError> {
        let mut sp = trace::span("jit", "jit @main");
        let result = (|| {
            let main = self
                .module()
                .func_by_name("main")
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "no @main in module"))?;
            match self.run_function_jit(main, vec![]) {
                Ok(Some(v)) => v
                    .as_i64()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "main returned non-integer")),
                Ok(None) => Ok(0),
                Err(ExecError::Exited(c)) => Ok(c as i64),
                Err(e) => Err(e),
            }
        })();
        if trace::enabled() {
            match &result {
                Ok(code) => sp.arg("exit", code.to_string()),
                Err(e) => {
                    sp.arg("error", e.to_string());
                    trace::instant_args("jit", "trap", vec![("error", e.to_string())]);
                }
            }
        }
        result
    }

    /// Call `f` with `args` under the JIT engine. Every function is
    /// translated on first call; a translation failure is fatal (the
    /// tiered engine, by contrast, demotes and keeps interpreting).
    pub fn run_function_jit(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
    ) -> Result<Option<VmValue>, ExecError> {
        self.run_function_mixed(f, args, crate::tier::MixedMode::JitOnly)
    }

    /// The translated form of `f`, translating (and caching) on first
    /// use. The `jit.translate` fault site fires here; any injected
    /// non-delay action surfaces as a translation error (pure-JIT treats
    /// it as fatal, the tiered engine demotes the function).
    pub(crate) fn ensure_translated(&mut self, f: FuncId) -> Result<Rc<LowFunc>, ExecError> {
        if let Some(lf) = &self.jit_cache[f.index()] {
            return Ok(lf.clone());
        }
        let mut sp = if trace::enabled() {
            Some(trace::span(
                "jit",
                format!("translate @{}", self.module().func(f).name),
            ))
        } else {
            None
        };
        let t0 = std::time::Instant::now();
        let result = match lpat_core::faultpoint!("jit.translate") {
            Some(lpat_core::fault::FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                translate_with_globals(self, f)
            }
            Some(action) => Err(ExecError::trap(
                TrapKind::Invalid,
                format!("injected {action:?} fault at site 'jit.translate'"),
            )),
            None => translate_with_globals(self, f),
        };
        self.tier_stats.translate_ns += t0.elapsed().as_nanos() as u64;
        match result {
            Ok(lf) => {
                self.tier_stats.translated += 1;
                let rc = Rc::new(lf);
                self.jit_cache[f.index()] = Some(rc.clone());
                Ok(rc)
            }
            Err(e) => {
                if let Some(sp) = &mut sp {
                    sp.arg("error", e.to_string());
                    trace::instant_args(
                        "jit",
                        "bail-to-interp",
                        vec![
                            ("function", self.module().func(f).name.clone()),
                            ("error", e.to_string()),
                        ],
                    );
                }
                Err(e)
            }
        }
    }

    /// Build a JIT activation record for a call to `f`, translating on
    /// first use, recording the call in the profile, and drawing the
    /// register slab from the free-list arena. Stack-depth policy is the
    /// caller's job.
    pub(crate) fn make_jit_frame(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
        varargs: Vec<VmValue>,
    ) -> Result<JitFrame, ExecError> {
        let lf = self.ensure_translated(f)?;
        if self.opts.profile {
            self.profile.record_call(f);
            self.profile.record_block(f, self.module().func(f).entry());
        }
        let mut regs = self.jit_reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(lf.n_regs, VmValue::Ptr(0));
        Ok(JitFrame {
            func: f,
            lf,
            regs,
            args,
            varargs,
            va_next: 0,
            pc: 0,
            allocas: Vec::new(),
            pending: None,
        })
    }

    /// Release a popped frame's allocas and return its register slab to
    /// the arena.
    pub(crate) fn recycle_jit_frame(&mut self, mut fr: JitFrame) -> Result<(), ExecError> {
        let mut regs = std::mem::take(&mut fr.regs);
        regs.clear();
        self.jit_reg_pool.push(regs);
        for a in fr.allocas {
            self.mem.release(a)?;
        }
        Ok(())
    }

    /// Transfer control along translated edge `e`, executing φ-copies and
    /// recording the edge/block profile (matching the interpreter's
    /// `transfer`).
    #[inline]
    pub(crate) fn take_edge(
        &mut self,
        fr: &mut JitFrame,
        lf: &LowFunc,
        e: usize,
    ) -> Result<(), ExecError> {
        let edge = &lf.edges[e];
        // Simultaneous φ assignment: read all, then write all.
        match edge.copies.len() {
            0 => {}
            1 => {
                let (d, s) = &edge.copies[0];
                fr.regs[*d as usize] = read(fr, s)?;
            }
            _ => {
                let vals = edge
                    .copies
                    .iter()
                    .map(|(_, s)| read(fr, s))
                    .collect::<Result<Vec<_>, _>>()?;
                for ((d, _), v) in edge.copies.iter().zip(vals) {
                    fr.regs[*d as usize] = v;
                }
            }
        }
        fr.pc = edge.target;
        if self.opts.profile {
            let from = BlockId::from_index(edge.from as usize);
            let to = BlockId::from_index(edge.to as usize);
            self.profile.record_edge(fr.func, from, to);
            self.profile.record_block(fr.func, to);
        }
        if self.tier_native_on && edge.to <= edge.from {
            // A loop back-edge on the JIT tier is a tier-3 hotness event.
            self.native_backedge_bump(fr.func, edge.to);
        }
        Ok(())
    }
}

/// Translate with the engine's global addresses published to the
/// constant resolver (they become plain pointer immediates in the
/// translated code).
fn translate_with_globals(vm: &Vm<'_>, fid: FuncId) -> Result<LowFunc, ExecError> {
    GLOBAL_ADDRS.with(|g| {
        *g.borrow_mut() = Some(
            (0..vm.module().num_globals())
                .map(|i| vm.global_addr(lpat_core::GlobalId::from_index(i)))
                .collect(),
        );
    });
    let r = translate_spec(vm.module(), fid, vm.spec_map());
    GLOBAL_ADDRS.with(|g| *g.borrow_mut() = None);
    r
}

thread_local! {
    static GLOBAL_ADDRS: std::cell::RefCell<Option<Vec<u32>>> =
        const { std::cell::RefCell::new(None) };
}

/// Engine-context constant resolution hook used by [`translate`].
fn resolve_global(idx: usize) -> Option<u32> {
    GLOBAL_ADDRS.with(|g| g.borrow().as_ref().map(|v| v[idx]))
}

pub(crate) enum Flow {
    Next,
    Call {
        target: FuncId,
        args: Vec<VmValue>,
        varargs: Vec<VmValue>,
        dst: Option<u32>,
        eh: Option<(usize, usize)>,
    },
    Ret(Option<VmValue>),
    Unwinding,
    /// A speculation guard failed. The fail edge has already been taken
    /// (φ-copies done, pc at the start of `block`, profile recorded), so
    /// the frame is at a clean block boundary: the tiered engine rebuilds
    /// an interpreter frame there (deoptimization), while pure JIT simply
    /// keeps executing — the slow path is ordinary translated code.
    Deopt {
        block: u32,
    },
}

#[inline]
fn read(fr: &JitFrame, s: &Slot) -> Result<VmValue, ExecError> {
    match s {
        Slot::Reg(r) => Ok(fr.regs[*r as usize]),
        // An indirect call through a mistyped function pointer can supply
        // fewer actuals than the callee's formals; like the interpreter,
        // the missing argument traps at its first *read*, not at entry.
        Slot::Arg(a) => fr
            .args
            .get(*a as usize)
            .copied()
            .ok_or_else(|| ExecError::trap(TrapKind::Invalid, format!("missing argument {a}"))),
        Slot::Imm(v) => Ok(*v),
    }
}

// Dense opcode-histogram indices (see `Inst::opcode_index`); fused
// superinstructions charge both of their micro-ops so the histogram and
// the fuel budget stay engine-independent. A test in `tests/tiered.rs`
// pins the cross-engine alignment end-to-end.
const OP_RET: usize = 0;
const OP_BR: usize = 1;
const OP_SWITCH: usize = 2;
const OP_INVOKE: usize = 3;
const OP_UNWIND: usize = 4;
const OP_UNREACHABLE: usize = 5;
const OP_MALLOC: usize = 6;
const OP_FREE: usize = 7;
const OP_ALLOCA: usize = 8;
const OP_LOAD: usize = 9;
const OP_STORE: usize = 10;
const OP_GEP: usize = 11;
const OP_CALL: usize = 13;
const OP_CAST: usize = 14;
const OP_VAARG: usize = 15;
const OP_BIN_BASE: usize = 16;
const OP_CMP_BASE: usize = 26;

/// Execute one translated instruction, charging fuel and the opcode
/// histogram exactly as the interpreter would for the source
/// instruction(s).
pub(crate) fn exec_low(
    vm: &mut Vm<'_>,
    fr: &mut JitFrame,
    lf: &LowFunc,
    op: &LowOp,
) -> Result<Flow, ExecError> {
    match op {
        LowOp::Bin { op, dst, a, b } => {
            vm.charge_jit(OP_BIN_BASE + *op as usize)?;
            let r = crate::interp::exec_bin(*op, read(fr, a)?, read(fr, b)?)?;
            fr.regs[*dst as usize] = r;
            Ok(Flow::Next)
        }
        LowOp::Cmp { pred, dst, a, b } => {
            vm.charge_jit(OP_CMP_BASE + *pred as usize)?;
            let r = crate::interp::exec_cmp(*pred, read(fr, a)?, read(fr, b)?)?;
            fr.regs[*dst as usize] = VmValue::Bool(r);
            Ok(Flow::Next)
        }
        LowOp::CmpBr {
            pred,
            dst,
            a,
            b,
            t,
            f,
        } => {
            // Micro-op 1: the compare (result written like the unfused op,
            // so later reads of the register still see it).
            vm.charge_jit(OP_CMP_BASE + *pred as usize)?;
            let r = crate::interp::exec_cmp(*pred, read(fr, a)?, read(fr, b)?)?;
            fr.regs[*dst as usize] = VmValue::Bool(r);
            // Micro-op 2: the branch — charged separately so an exhausted
            // fuel budget traps at the same instruction as the interpreter.
            vm.charge_jit(OP_BR)?;
            vm.take_edge(fr, lf, if r { *t } else { *f })?;
            Ok(Flow::Next)
        }
        LowOp::BinBr { op, dst, a, b, e } => {
            vm.charge_jit(OP_BIN_BASE + *op as usize)?;
            let r = crate::interp::exec_bin(*op, read(fr, a)?, read(fr, b)?)?;
            fr.regs[*dst as usize] = r;
            vm.charge_jit(OP_BR)?;
            vm.take_edge(fr, lf, *e)?;
            Ok(Flow::Next)
        }
        LowOp::Cast { dst, src, to } => {
            vm.charge_jit(OP_CAST)?;
            let r = crate::interp::exec_cast(&vm.module().types, read(fr, src)?, *to)?;
            fr.regs[*dst as usize] = r;
            Ok(Flow::Next)
        }
        LowOp::Load { dst, ptr, kind } => {
            vm.charge_jit(OP_LOAD)?;
            let a = read(fr, ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "load"))?;
            let v = match kind {
                MemKind::Bool => vm.mem.load_bool(a)?,
                MemKind::Int(k) => vm.mem.load_int(a, *k)?,
                MemKind::F32 => vm.mem.load_f32(a)?,
                MemKind::F64 => vm.mem.load_f64(a)?,
                MemKind::Ptr => vm.mem.load_ptr(a)?,
            };
            fr.regs[*dst as usize] = v;
            Ok(Flow::Next)
        }
        LowOp::Store { val, ptr } => {
            vm.charge_jit(OP_STORE)?;
            let a = read(fr, ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "store"))?;
            vm.mem.store(a, read(fr, val)?)?;
            Ok(Flow::Next)
        }
        LowOp::Gep {
            dst,
            base,
            const_off,
            scaled,
        } => {
            vm.charge_jit(OP_GEP)?;
            let b = read(fr, base)?
                .as_ptr()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep"))?;
            let mut off = *const_off;
            for (s, scale) in scaled {
                let i = read(fr, s)?
                    .as_i64()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep index"))?;
                off = off.wrapping_add(i.wrapping_mul(*scale));
            }
            fr.regs[*dst as usize] = VmValue::Ptr(b.wrapping_add(off as u32));
            Ok(Flow::Next)
        }
        LowOp::Alloc {
            dst,
            elem_size,
            count,
            stack,
        } => {
            vm.charge_jit(if *stack { OP_ALLOCA } else { OP_MALLOC })?;
            let n = match count {
                None => 1u64,
                Some(c) => read(fr, c)?.as_i64().unwrap_or(0).max(0) as u64,
            };
            let size = (*elem_size as u64).saturating_mul(n);
            let size: u32 = size
                .try_into()
                .map_err(|_| ExecError::trap(TrapKind::OutOfMemory, "allocation too large"))?;
            let addr = vm.mem.alloc(size.max(1))?;
            if *stack {
                fr.allocas.push(addr);
            }
            fr.regs[*dst as usize] = VmValue::Ptr(addr);
            Ok(Flow::Next)
        }
        LowOp::Free(p) => {
            vm.charge_jit(OP_FREE)?;
            let a = read(fr, p)?
                .as_ptr()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "free"))?;
            if a != 0 {
                vm.mem.release(a)?;
            }
            Ok(Flow::Next)
        }
        LowOp::Call {
            dst,
            callee,
            args,
            eh,
            site,
        } => {
            vm.charge_jit(if eh.is_some() { OP_INVOKE } else { OP_CALL })?;
            if vm.opts.profile {
                // Before callee resolution, like the interpreter: a failed
                // resolution still counts the site.
                vm.profile
                    .record_callsite(fr.func, InstId::from_index(*site as usize));
            }
            let target = match callee {
                Callee::Direct(f) => *f,
                Callee::Indirect { s, ic } => {
                    let addr = read(fr, s)?
                        .as_ptr()
                        .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "callee"))?;
                    let (hit_addr, hit_func) = ic.get();
                    if hit_func != 0 && hit_addr == addr {
                        FuncId::from_index((hit_func - 1) as usize)
                    } else {
                        let f = vm
                            .mem
                            .addr_to_func(addr)
                            .map(FuncId::from_index)
                            .ok_or_else(|| {
                                ExecError::trap(TrapKind::Invalid, "call through data pointer")
                            })?;
                        ic.set((addr, f.index() as u32 + 1));
                        f
                    }
                }
            };
            let argv: Vec<VmValue> = args.iter().map(|s| read(fr, s)).collect::<Result<_, _>>()?;
            let tf = vm.module().func(target);
            if tf.is_declaration() {
                let ret = vm.call_external_by_id(target, &argv)?;
                if let (Some(d), Some(v)) = (dst, ret) {
                    fr.regs[*d as usize] = v;
                }
                if let Some((normal, _)) = eh {
                    vm.take_edge(fr, lf, *normal)?;
                }
                return Ok(Flow::Next);
            }
            let nfixed = tf.num_params();
            let (fixed, extra) = if argv.len() > nfixed {
                let (a, b) = argv.split_at(nfixed);
                (a.to_vec(), b.to_vec())
            } else {
                (argv, Vec::new())
            };
            Ok(Flow::Call {
                target,
                args: fixed,
                varargs: extra,
                dst: *dst,
                eh: *eh,
            })
        }
        LowOp::Br(e) => {
            vm.charge_jit(OP_BR)?;
            vm.take_edge(fr, lf, *e)?;
            Ok(Flow::Next)
        }
        LowOp::CondBr { c, t, f } => {
            vm.charge_jit(OP_BR)?;
            let v = read(fr, c)?
                .as_bool()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "condbr"))?;
            vm.take_edge(fr, lf, if v { *t } else { *f })?;
            Ok(Flow::Next)
        }
        LowOp::Guard { gid, c, t, f } => {
            // Fuel/histogram accounting is identical to CondBr: the guard
            // IS a conditional branch; only the bookkeeping differs.
            vm.charge_jit(OP_BR)?;
            let v = read(fr, c)?
                .as_bool()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "guard"))?;
            if vm.guard_check(*gid, v) {
                vm.take_edge(fr, lf, *t)?;
                Ok(Flow::Next)
            } else {
                let block = lf.edges[*f].to;
                vm.take_edge(fr, lf, *f)?;
                Ok(Flow::Deopt { block })
            }
        }
        LowOp::GuardCmpBr {
            gid,
            pred,
            dst,
            a,
            b,
            t,
            f,
        } => {
            // Micro-ops exactly as CmpBr: compare (register written, so a
            // forced guard failure never alters the dataflow value), then
            // the branch.
            vm.charge_jit(OP_CMP_BASE + *pred as usize)?;
            let r = crate::interp::exec_cmp(*pred, read(fr, a)?, read(fr, b)?)?;
            fr.regs[*dst as usize] = VmValue::Bool(r);
            vm.charge_jit(OP_BR)?;
            if vm.guard_check(*gid, r) {
                vm.take_edge(fr, lf, *t)?;
                Ok(Flow::Next)
            } else {
                let block = lf.edges[*f].to;
                vm.take_edge(fr, lf, *f)?;
                Ok(Flow::Deopt { block })
            }
        }
        LowOp::Switch { v, cases, default } => {
            vm.charge_jit(OP_SWITCH)?;
            let x = read(fr, v)?
                .as_i64()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "switch"))?;
            let e = cases
                .iter()
                .find(|(c, _)| *c == x)
                .map(|(_, e)| *e)
                .unwrap_or(*default);
            vm.take_edge(fr, lf, e)?;
            Ok(Flow::Next)
        }
        LowOp::Ret(v) => {
            vm.charge_jit(OP_RET)?;
            Ok(Flow::Ret(match v {
                Some(s) => Some(read(fr, s)?),
                None => None,
            }))
        }
        LowOp::Unwind => {
            vm.charge_jit(OP_UNWIND)?;
            Ok(Flow::Unwinding)
        }
        LowOp::Unreachable => {
            vm.charge_jit(OP_UNREACHABLE)?;
            Err(ExecError::trap(TrapKind::Unreachable, "unreachable"))
        }
        LowOp::VaArg { dst } => {
            vm.charge_jit(OP_VAARG)?;
            let v = fr
                .varargs
                .get(fr.va_next)
                .copied()
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "vaarg"))?;
            fr.va_next += 1;
            fr.regs[*dst as usize] = v;
            Ok(Flow::Next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Vm, VmOptions};

    fn both(src: &str) -> (i64, i64) {
        let m = lpat_asm::parse_module("t", src).unwrap();
        m.verify().unwrap();
        let mut a = Vm::new(&m, VmOptions::default()).unwrap();
        let ra = a.run_main().unwrap_or_else(|e| panic!("interp: {e}"));
        let mut b = Vm::new(&m, VmOptions::default()).unwrap();
        let rb = b.run_main_jit().unwrap_or_else(|e| panic!("jit: {e}"));
        assert_eq!(a.output, b.output, "output must match");
        (ra, rb)
    }

    #[test]
    fn jit_matches_interp_on_loops_and_calls() {
        let (a, b) = both(
            "
define int @fact(int %n) {
e:
  %c = setle int %n, 1
  br bool %c, label %base, label %rec
base:
  ret int 1
rec:
  %n1 = sub int %n, 1
  %r = call int @fact(int %n1)
  %v = mul int %n, %r
  ret int %v
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 1, %e ], [ %i2, %h ]
  %s = phi int [ 0, %e ], [ %s2, %h ]
  %f = call int @fact(int %i)
  %s2 = add int %s, %f
  %i2 = add int %i, 1
  %c = setle int %i2, 6
  br bool %c, label %h, label %x
x:
  ret int %s2
}",
        );
        assert_eq!(a, b);
        assert_eq!(a, 873); // 1!+2!+...+6!
    }

    #[test]
    fn jit_memory_globals_and_gep() {
        let (a, b) = both(
            "
%s = type { int, [4 x int] }
@tab = global %s zeroinitializer
declare void @print_int(int)
define int @main() {
e:
  %f0 = getelementptr %s* @tab, long 0, ubyte 0
  store int 7, int* %f0
  br label %h
h:
  %i = phi long [ 0, %e ], [ %i2, %h ]
  %p = getelementptr %s* @tab, long 0, ubyte 1, long %i
  %iv = cast long %i to int
  %v = mul int %iv, 3
  store int %v, int* %p
  %i2 = add long %i, 1
  %c = setlt long %i2, 4
  br bool %c, label %h, label %x
x:
  %last = getelementptr %s* @tab, long 0, ubyte 1, long 3
  %lv = load int* %last
  %base = load int* %f0
  %r = add int %lv, %base
  call void @print_int(int %r)
  ret int %r
}",
        );
        assert_eq!(a, b);
        assert_eq!(a, 16);
    }

    #[test]
    fn jit_eh_unwinds() {
        let (a, b) = both(
            "
define void @thrower() {
e:
  unwind
}
define void @mid() {
e:
  call void @thrower()
  ret void
}
define int @main() {
e:
  invoke void @mid() to label %fine unwind label %handler
fine:
  ret int 1
handler:
  ret int 2
}",
        );
        assert_eq!((a, b), (2, 2));
    }

    #[test]
    fn jit_indirect_calls_and_switch() {
        let (a, b) = both(
            "
define int @one(int %x) {
e:
  ret int 1
}
define int @two(int %x) {
e:
  ret int 2
}
@vt = constant [2 x int (int)*] [ int (int)* @one, int (int)* @two ]
define int @main() {
e:
  %slot = getelementptr [2 x int (int)*]* @vt, long 0, long 1
  %fp = load int (int)** %slot
  %v = call int %fp(int 0)
  switch int %v, label %d [ int 2, label %good ]
good:
  ret int 42
d:
  ret int 0
}",
        );
        assert_eq!((a, b), (42, 42));
    }

    #[test]
    fn jit_is_faster_than_interp_per_instruction() {
        // Not a wall-clock assertion (too flaky); instead verify the
        // translation cache is exercised and results agree on a heavy
        // workload.
        let w = &lpat_workloads::suite(0)[0];
        let m = lpat_minic::compile(w.name, &w.source).unwrap();
        let mut a = Vm::new(&m, VmOptions::default()).unwrap();
        let ra = a.run_main().unwrap();
        let mut b = Vm::new(&m, VmOptions::default()).unwrap();
        let rb = b.run_main_jit().unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn fusion_produces_superinstructions_and_preserves_semantics() {
        let src = "
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 10
  br bool %c, label %b, label %x
b:
  %s2 = add int %s, %i
  %i2 = add int %i, 1
  br label %h
x:
  ret int %s
}";
        let m = lpat_asm::parse_module("t", src).unwrap();
        m.verify().unwrap();
        let main = m.func_by_name("main").unwrap();
        let vm = Vm::new(&m, VmOptions::default()).unwrap();
        // Translate directly (globals not needed here).
        let _ = vm;
        let lf = translate(&m, main).unwrap();
        let n_cmpbr = lf
            .code
            .iter()
            .filter(|op| matches!(op, LowOp::CmpBr { .. }))
            .count();
        let n_binbr = lf
            .code
            .iter()
            .filter(|op| matches!(op, LowOp::BinBr { .. }))
            .count();
        assert_eq!(n_cmpbr, 1, "setlt+br must fuse");
        assert_eq!(n_binbr, 1, "latch add+br must fuse");
        let (a, b) = both(src);
        assert_eq!((a, b), (45, 45));
    }

    #[test]
    fn jit_histogram_and_fuel_match_interp() {
        let w = &lpat_workloads::suite(0)[1];
        let m = lpat_minic::compile(w.name, &w.source).unwrap();
        let opts = VmOptions {
            fuel: Some(20_000_000),
            ..VmOptions::default()
        };
        let mut a = Vm::new(&m, opts.clone()).unwrap();
        let ra = a.run_main().unwrap();
        let mut b = Vm::new(&m, opts).unwrap();
        let rb = b.run_main_jit().unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.insts_executed, b.insts_executed);
        assert_eq!(a.opcode_counts, b.opcode_counts);
        assert_eq!(a.opts.fuel, b.opts.fuel);
    }
}
