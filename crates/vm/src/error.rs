//! Execution errors and traps.

use std::fmt;

/// Classification of runtime traps.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TrapKind {
    /// Null pointer dereference.
    NullAccess,
    /// Invalid memory access (function window, wraparound).
    BadAccess,
    /// Division or remainder by zero.
    DivByZero,
    /// `free` of a pointer that is not a live allocation.
    BadFree,
    /// Address space exhausted.
    OutOfMemory,
    /// Call stack depth limit exceeded.
    StackOverflow,
    /// Instruction budget ("fuel") exhausted.
    OutOfFuel,
    /// An `unwind` reached the bottom of the stack without an `invoke`.
    UncaughtUnwind,
    /// Executed `unreachable`.
    Unreachable,
    /// Malformed runtime situation (bad callee, wrong arity, ...).
    Invalid,
}

/// An execution failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A runtime trap.
    Trap {
        /// Kind of trap.
        kind: TrapKind,
        /// Detail message.
        message: String,
    },
    /// The program called `exit(code)`.
    Exited(i32),
}

impl ExecError {
    /// Construct a trap.
    pub fn trap(kind: TrapKind, message: impl Into<String>) -> ExecError {
        ExecError::Trap {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Trap { kind, message } => write!(f, "trap ({kind:?}): {message}"),
            ExecError::Exited(c) => write!(f, "program exited with code {c}"),
        }
    }
}

impl std::error::Error for ExecError {}
